//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! Provides [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`],
//! [`rngs::StdRng`] and [`seq::SliceRandom`] on top of a SplitMix64
//! core. Deterministic for a given seed; not cryptographic.

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator seeded from `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can produce a uniform sample (`rng.gen_range(range)`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let f = <$t as Standard>::sample(rng);
                self.start + f * (self.end - self.start)
            }
        }
    )*};
}
range_float!(f32, f64);

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample over the whole domain of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    ///
    /// Fast, full 64-bit state, passes the statistical checks the
    /// workspace's tests assert (Zipf skew, uniformity within 10%).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

/// Slice adaptors.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniformity_is_reasonable() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
        assert!(v.as_slice().choose(&mut rng).is_some());
    }
}
