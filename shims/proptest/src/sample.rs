//! `prop::sample` — selection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An index drawn independently of any particular collection length;
/// project it onto a collection with [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Wraps raw randomness.
    pub fn new(raw: u64) -> Self {
        Index(raw)
    }

    /// Projects onto `0..size`. Panics when `size` is zero, like the
    /// real crate.
    pub fn index(&self, size: usize) -> usize {
        assert!(size > 0, "Index::index on empty collection");
        (self.0 % size as u64) as usize
    }
}

/// Uniform choice of one element from a vector.
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len() as u64) as usize].clone()
    }
}

/// `prop::sample::select(options)` — picks one of `options` uniformly.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select from empty options");
    Select { options }
}
