//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Random property testing without shrinking: the [`proptest!`] macro
//! samples each declared strategy `Config::cases` times and runs the
//! body; `prop_assert*` failures panic with the usual assert message.
//! The RNG seed is derived from the test name, so failures are
//! reproducible run to run. Swapping the real `proptest` back in (it
//! adds shrinking and persistence) requires no source changes.

pub mod arbitrary;
pub mod collection;
pub mod num;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The `prop::` namespace as the real crate's prelude exposes it.
pub mod prop {
    pub use crate::collection;
    pub use crate::num;
    pub use crate::sample;
}

/// What `use proptest::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Deterministic runner machinery.
pub mod runner {
    pub use crate::test_runner::*;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_sample_within_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("bounds");
        for _ in 0..1000 {
            let v = Strategy::sample(&(3..10u32), &mut rng);
            assert!((3..10).contains(&v));
            let f = Strategy::sample(&(-1.0f64..1.0), &mut rng);
            assert!((-1.0..1.0).contains(&f));
            let (a, b) = Strategy::sample(&((0..5u8), (0..5u8)), &mut rng);
            assert!(a < 5 && b < 5);
            let xs = Strategy::sample(&prop::collection::vec(0..3u8, 2..=4), &mut rng);
            assert!((2..=4).contains(&xs.len()));
            let just = Strategy::sample(&Just(42), &mut rng);
            assert_eq!(just, 42);
            let sel = Strategy::sample(&prop::sample::select(vec![1, 2, 3]), &mut rng);
            assert!((1..=3).contains(&sel));
            let n = Strategy::sample(&prop::num::f64::NORMAL, &mut rng);
            assert!(n.is_normal());
        }
    }

    #[test]
    fn map_and_oneof_compose() {
        let mut rng = crate::test_runner::TestRng::from_name("compose");
        let s = prop_oneof![
            prop::collection::vec(any::<u8>(), 0..4).prop_map(Some),
            Just(None),
        ];
        let mut seen_some = false;
        let mut seen_none = false;
        for _ in 0..200 {
            match Strategy::sample(&s, &mut rng) {
                Some(v) => {
                    assert!(v.len() < 4);
                    seen_some = true;
                }
                None => seen_none = true,
            }
        }
        assert!(seen_some && seen_none);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro itself: multiple args, patterns, trailing comma.
        #[test]
        fn macro_smoke(
            x in 0..100u32,
            (a, b) in (0..10u8, 0..10u8),
            v in prop::collection::vec(any::<bool>(), 3),
        ) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), 3);
            prop_assert_ne!(a as u16 + b as u16, 200);
        }
    }

    proptest! {
        #[test]
        fn macro_default_config(idx in any::<prop::sample::Index>()) {
            prop_assert!(idx.index(7) < 7);
        }
    }
}
