//! `prop::num` — numeric class strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// `f64` strategies.
pub mod f64 {
    use super::*;

    /// Strategy for *normal* `f64`s: finite, non-zero, not subnormal,
    /// uniform over bit patterns of that class (both signs, the full
    /// exponent range).
    #[derive(Debug, Clone, Copy)]
    pub struct Normal;

    /// Normal (finite, non-subnormal, non-zero) `f64`s.
    pub const NORMAL: Normal = Normal;

    impl Strategy for Normal {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            loop {
                let f = f64::from_bits(rng.next_u64());
                if f.is_normal() {
                    return f;
                }
            }
        }
    }
}

/// `f32` strategies.
pub mod f32 {
    use super::*;

    /// Strategy for normal `f32`s (see [`super::f64::NORMAL`]).
    #[derive(Debug, Clone, Copy)]
    pub struct Normal;

    /// Normal (finite, non-subnormal, non-zero) `f32`s.
    pub const NORMAL: Normal = Normal;

    impl Strategy for Normal {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            loop {
                let f = f32::from_bits(rng.next_u64() as u32);
                if f.is_normal() {
                    return f;
                }
            }
        }
    }
}
