//! The [`Strategy`] trait and core combinators.

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
///
/// Unlike the real proptest there is no value tree / shrinking: a
/// strategy just samples.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `f` (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 samples in a row",
            self.whence
        );
    }
}

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Builds from at least one alternative.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// `proptest!` — runs each `#[test]` body over `Config::cases` samples
/// of its argument strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = (<$crate::test_runner::Config as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__cfg.cases {
                let ($($arg,)+) = (
                    $($crate::strategy::Strategy::sample(&($strat), &mut __rng),)+
                );
                // The body runs in a Result-returning closure so that
                // `prop_assert*` (and explicit `return Ok(())`) work
                // exactly as they do under the real proptest.
                let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    panic!("case {} failed: {}", __case, __msg);
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// `prop_assert!` — fails the current case (usable only inside a
/// [`proptest!`] body, which provides the `Result` context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// `prop_assert_eq!` — equality check inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` == `{:?}`",
                __l, __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                __l, __r, format!($($fmt)+)
            ));
        }
    }};
}

/// `prop_assert_ne!` — inequality check inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l, __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                __l, __r, format!($($fmt)+)
            ));
        }
    }};
}

/// `prop_oneof!` — uniform choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}
