//! Config and RNG for the shim runner.

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Config {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    /// 256 cases, overridable with the `PROPTEST_CASES` env var.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        Config { cases }
    }
}

/// Deterministic test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary name (e.g. the test function name), so
    /// every test gets a distinct but stable stream.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
