//! `any::<T>()` — whole-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Uniform over bit patterns, with NaN mapped to 0.0 so arithmetic
    /// comparisons in tests stay meaningful.
    fn arbitrary(rng: &mut TestRng) -> Self {
        let f = f64::from_bits(rng.next_u64());
        if f.is_nan() {
            0.0
        } else {
            f
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let f = f32::from_bits(rng.next_u64() as u32);
        if f.is_nan() {
            0.0
        } else {
            f
        }
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        crate::sample::Index::new(rng.next_u64())
    }
}

/// Strategy form of [`Arbitrary`], as returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
