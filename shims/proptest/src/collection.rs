//! `prop::collection` — collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Admissible element-count specifications for [`vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s of `element` samples.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// `prop::collection::vec(element, size)` — vectors whose length is
/// drawn from `size` (a `usize`, `a..b`, or `a..=b`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
