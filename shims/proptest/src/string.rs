//! String strategies from regex-like patterns.
//!
//! The real proptest interprets `&str` strategies as full regexes;
//! this shim supports the subset the workspace's tests use — literal
//! characters, `.`, character classes like `[a-z0-9]`, groups, and
//! the quantifiers `{n}`, `{m,n}`, `*`, `+`, `?` — and panics on
//! anything else so an unsupported pattern fails loudly.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

impl Strategy for str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let nodes = parse(self);
        let mut out = String::new();
        for node in &nodes {
            node.generate(rng, &mut out);
        }
        out
    }
}

const UNBOUNDED_MAX: u32 = 8;

#[derive(Debug)]
struct Quantified {
    atom: Atom,
    min: u32,
    max: u32,
}

#[derive(Debug)]
enum Atom {
    Literal(char),
    /// `.` — any scalar except newline.
    Any,
    /// `[a-z...]` — inclusive ranges and singletons.
    Class(Vec<(char, char)>),
    /// `( ... )`.
    Group(Vec<Quantified>),
}

impl Quantified {
    fn generate(&self, rng: &mut TestRng, out: &mut String) {
        let span = (self.max - self.min + 1) as u64;
        let n = self.min + rng.below(span) as u32;
        for _ in 0..n {
            self.atom.generate(rng, out);
        }
    }
}

impl Atom {
    fn generate(&self, rng: &mut TestRng, out: &mut String) {
        match self {
            Atom::Literal(c) => out.push(*c),
            Atom::Any => out.push(arbitrary_char(rng)),
            Atom::Class(ranges) => {
                let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
                let span = (hi as u32 - lo as u32 + 1) as u64;
                let c = char::from_u32(lo as u32 + rng.below(span) as u32)
                    .expect("class range stays in scalar space");
                out.push(c);
            }
            Atom::Group(nodes) => {
                for node in nodes {
                    node.generate(rng, out);
                }
            }
        }
    }
}

/// `.`: mostly printable ASCII, sometimes arbitrary Unicode scalars
/// (mirroring proptest's any-char behaviour closely enough to catch
/// non-English edge cases).
fn arbitrary_char(rng: &mut TestRng) -> char {
    loop {
        let c = if rng.below(10) < 7 {
            char::from_u32(0x20 + rng.below(0x5f) as u32)
        } else {
            char::from_u32(rng.below(0x11_0000) as u32)
        };
        match c {
            Some('\n') | None => continue,
            Some(c) => return c,
        }
    }
}

fn parse(pattern: &str) -> Vec<Quantified> {
    let mut chars: std::iter::Peekable<std::str::Chars<'_>> = pattern.chars().peekable();
    let nodes = parse_seq(&mut chars, pattern);
    assert!(
        chars.next().is_none(),
        "unbalanced `)` in pattern `{pattern}`"
    );
    nodes
}

fn parse_seq(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> Vec<Quantified> {
    let mut out = Vec::new();
    while let Some(&c) = chars.peek() {
        if c == ')' {
            break;
        }
        chars.next();
        let atom = match c {
            '.' => Atom::Any,
            '[' => Atom::Class(parse_class(chars, pattern)),
            '(' => {
                let inner = parse_seq(chars, pattern);
                assert_eq!(
                    chars.next(),
                    Some(')'),
                    "unterminated group in pattern `{pattern}`"
                );
                Atom::Group(inner)
            }
            '\\' => Atom::Literal(
                chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern `{pattern}`")),
            ),
            '*' | '+' | '?' | '{' | '}' | ']' | '|' | '^' | '$' => {
                panic!("unsupported pattern construct `{c}` in `{pattern}`")
            }
            c => Atom::Literal(c),
        };
        let (min, max) = parse_quantifier(chars, pattern);
        out.push(Quantified { atom, min, max });
    }
    out
}

fn parse_class(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("unterminated class in pattern `{pattern}`"));
        if c == ']' {
            assert!(!ranges.is_empty(), "empty class in pattern `{pattern}`");
            return ranges;
        }
        assert!(c != '^', "negated classes unsupported in `{pattern}`");
        if chars.peek() == Some(&'-') {
            chars.next();
            let hi = chars
                .next()
                .unwrap_or_else(|| panic!("unterminated range in pattern `{pattern}`"));
            assert!(c <= hi, "inverted range in pattern `{pattern}`");
            ranges.push((c, hi));
        } else {
            ranges.push((c, c));
        }
    }
}

fn parse_quantifier(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> (u32, u32) {
    match chars.peek() {
        Some('*') => {
            chars.next();
            (0, UNBOUNDED_MAX)
        }
        Some('+') => {
            chars.next();
            (1, UNBOUNDED_MAX)
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            loop {
                match chars.next() {
                    Some('}') => break,
                    Some(c) => spec.push(c),
                    None => panic!("unterminated quantifier in pattern `{pattern}`"),
                }
            }
            let parts: Vec<&str> = spec.split(',').collect();
            let parse_n = |s: &str| -> u32 {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad quantifier `{{{spec}}}` in `{pattern}`"))
            };
            match parts.as_slice() {
                [n] => {
                    let n = parse_n(n);
                    (n, n)
                }
                [m, n] => {
                    let (m, n) = (parse_n(m), parse_n(n));
                    assert!(m <= n, "inverted quantifier in `{pattern}`");
                    (m, n)
                }
                _ => panic!("bad quantifier `{{{spec}}}` in `{pattern}`"),
            }
        }
        _ => (1, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_name("string-tests")
    }

    #[test]
    fn class_with_repetition() {
        let mut rng = rng();
        for _ in 0..500 {
            let s = Strategy::sample("[a-z]{2,8}", &mut rng);
            assert!((2..=8).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn dot_generates_varied_chars_without_newlines() {
        let mut rng = rng();
        let mut non_ascii = false;
        for _ in 0..300 {
            let s = Strategy::sample(".{0,200}", &mut rng);
            assert!(s.chars().count() <= 200);
            assert!(!s.contains('\n'));
            non_ascii |= !s.is_ascii();
        }
        assert!(non_ascii, "dot never produced unicode");
    }

    #[test]
    fn groups_and_literals() {
        let mut rng = rng();
        for _ in 0..300 {
            let s = Strategy::sample("[a-c]{2,3}( [a-c]{2,3}){0,4}", &mut rng);
            let words: Vec<&str> = s.split(' ').collect();
            assert!((1..=5).contains(&words.len()), "{s:?}");
            for w in words {
                assert!((2..=3).contains(&w.len()), "{s:?}");
                assert!(w.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
            }
        }
    }

    #[test]
    fn exact_and_open_quantifiers() {
        let mut rng = rng();
        for _ in 0..100 {
            assert_eq!(Strategy::sample("x{3}", &mut rng), "xxx");
            let star = Strategy::sample("a*b+c?", &mut rng);
            assert!(star.contains('b'), "{star:?}");
            let escaped = Strategy::sample(r"\.\[", &mut rng);
            assert_eq!(escaped, ".[");
        }
    }

    #[test]
    #[should_panic(expected = "unsupported pattern construct")]
    fn unsupported_constructs_fail_loudly() {
        let _ = Strategy::sample("a|b", &mut rng());
    }
}
