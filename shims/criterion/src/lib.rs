//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Real wall-clock measurement (warm-up, then `sample_size` samples of
//! an adaptively-batched closure) with mean/min/max reporting to
//! stdout — but none of criterion's statistics, HTML reports, or
//! baseline comparison. Benches keep the exact criterion source shape,
//! so swapping the real crate back in is a manifest-only change.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Measurement parameters shared by [`Criterion`] and groups.
#[derive(Debug, Clone, Copy)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

/// Entry point handed to `criterion_group!` target functions.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Builder: samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Builder: target total measurement time.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.settings.measurement_time = d;
        self
    }

    /// Builder: warm-up time before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into().label(), self.settings, &mut f);
        self
    }
}

/// A named set of benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Warm-up time before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label());
        run_bench(&label, self.settings, &mut f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label());
        run_bench(&label, self.settings, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// Identifier of one benchmark: function name plus parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// `name` with a displayed parameter.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Parameter-only id (criterion's `from_parameter`).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) if self.name.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.name, p),
            None => self.name.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_owned(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// Timing harness passed to benchmark closures.
pub struct Bencher {
    settings: Settings,
    /// Mean per-iteration nanoseconds of each recorded sample.
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measures `f`, batching iterations so that one sample lasts long
    /// enough for the clock to resolve.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget is spent, and estimate
        // the per-iteration cost while doing so.
        let warm_start = Instant::now();
        let mut iters_done: u64 = 0;
        while warm_start.elapsed() < self.settings.warm_up_time || iters_done == 0 {
            black_box(f());
            iters_done += 1;
            if iters_done >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters_done as f64;

        // Size batches so all samples fit the measurement budget.
        let budget = self.settings.measurement_time.as_secs_f64();
        let total_iters = (budget / per_iter.max(1e-9)) as u64;
        let batch = (total_iters / self.settings.sample_size as u64).clamp(1, 1_000_000);

        self.samples_ns.clear();
        for _ in 0..self.settings.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples_ns
                .push(t0.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, settings: Settings, f: &mut F) {
    let mut b = Bencher {
        settings,
        samples_ns: Vec::new(),
    };
    f(&mut b);
    if b.samples_ns.is_empty() {
        println!("{label:<60} (no samples)");
        return;
    }
    let n = b.samples_ns.len() as f64;
    let mean = b.samples_ns.iter().sum::<f64>() / n;
    let min = b.samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = b.samples_ns.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{label:<60} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a benchmark group: either `criterion_group!(name, fn…)` or
/// the `name = …; config = …; targets = …` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs() {
        let mut c = quick();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(4));
        let mut hits = 0;
        for k in [1u64, 2] {
            group.bench_with_input(BenchmarkId::new("pow", k), &k, |b, &k| {
                b.iter(|| black_box(k * k));
            });
            hits += 1;
        }
        group.finish();
        assert_eq!(hits, 2);
    }

    #[test]
    fn id_labels() {
        assert_eq!(BenchmarkId::new("f", 3).label(), "f/3");
        assert_eq!(BenchmarkId::from("plain").label(), "plain");
        assert_eq!(BenchmarkId::from_parameter(9).label(), "9");
    }
}
