//! Offline stand-in for the subset of `parking_lot` this workspace
//! uses: non-poisoning [`Mutex`] and [`RwLock`] wrappers over
//! `std::sync`, plus a matching [`Condvar`]. A poisoned std lock (a
//! panic while held) is simply entered anyway, matching `parking_lot`
//! semantics.
//!
//! Unlike the original type-aliased version of this shim, the guards
//! are real newtypes ([`MutexGuard`], [`RwLockReadGuard`],
//! [`RwLockWriteGuard`]) with `Deref`/`DerefMut`/`Drop` — which is
//! what lets every acquisition and release flow through the dynamic
//! lock-order checker in [`order`]: when `ATSQ_LOCK_ORDER=1` (or by
//! default under `debug_assertions`) each lock gets a stable id, a
//! global graph records which locks were held when which others were
//! acquired, and an acquisition that closes a cycle — the AB/BA
//! inversion that *could* deadlock — panics deterministically with
//! both sides' lock names instead. Release builds without the env var
//! pay one atomic load and a branch per acquisition.

mod order;

pub use order::{checking_enabled, held_locks};

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock()` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    meta: order::LockMeta,
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. Releases the lock — and pops the
/// lock-order checker's held stack — on drop.
#[must_use = "if unused the Mutex will immediately unlock"]
pub struct MutexGuard<'a, T: ?Sized> {
    /// `None` only transiently inside [`Condvar::wait`], which takes
    /// the std guard out to block and puts it back on wake.
    inner: Option<std::sync::MutexGuard<'a, T>>,
    tracker: ReleaseOnDrop,
}

/// Pops one held-lock record when dropped (after the std guard field
/// has released the lock — field order in the guard structs puts the
/// std guard first).
struct ReleaseOnDrop {
    id: usize,
    tracked: bool,
}

impl ReleaseOnDrop {
    fn acquire(meta: &order::LockMeta) -> ReleaseOnDrop {
        if !order::checking_enabled() {
            return ReleaseOnDrop {
                id: 0,
                tracked: false,
            };
        }
        let id = meta.id();
        order::on_acquire(id);
        ReleaseOnDrop { id, tracked: true }
    }
}

impl Drop for ReleaseOnDrop {
    fn drop(&mut self) {
        if self.tracked {
            order::on_release(self.id);
        }
    }
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            meta: order::LockMeta::new(),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Names this lock for lock-order diagnostics (panic messages name
    /// the locks of a detected inversion). Idempotent; call once after
    /// construction.
    pub fn set_name(&self, name: &str) {
        if order::checking_enabled() {
            order::set_name(self.meta.id(), name);
        }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        // Record the acquisition first: if this would deadlock on an
        // inverted order, the checker panics instead of blocking.
        let tracker = ReleaseOnDrop::acquire(&self.meta);
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
            tracker,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("invariant: guard holds the lock outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("invariant: guard holds the lock outside Condvar::wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable for use with [`Mutex`], `parking_lot`-style:
/// `wait` takes the guard by `&mut` instead of by value.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically releases the guard's mutex and blocks until
    /// notified; the mutex is reacquired before returning. The
    /// lock-order checker sees the release and the reacquisition, so a
    /// wait never leaves a stale held-lock record.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard
            .inner
            .take()
            .expect("invariant: guard holds the lock entering wait");
        if guard.tracker.tracked {
            order::on_release(guard.tracker.id);
        }
        let reacquired = self
            .0
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        if guard.tracker.tracked {
            order::on_acquire(guard.tracker.id);
        }
        guard.inner = Some(reacquired);
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A reader-writer lock whose accessors never return a `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    meta: order::LockMeta,
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
#[must_use = "if unused the RwLock will immediately unlock"]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
    _tracker: ReleaseOnDrop,
}

/// Exclusive-write guard for [`RwLock`].
#[must_use = "if unused the RwLock will immediately unlock"]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
    _tracker: ReleaseOnDrop,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            meta: order::LockMeta::new(),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Names this lock for lock-order diagnostics. See
    /// [`Mutex::set_name`].
    pub fn set_name(&self, name: &str) {
        if order::checking_enabled() {
            order::set_name(self.meta.id(), name);
        }
    }

    /// Acquires a shared read lock. Read and write acquisitions feed
    /// the lock-order checker identically — a read-then-write
    /// inversion deadlocks just as surely as write-then-write.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let tracker = ReleaseOnDrop::acquire(&self.meta);
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
            _tracker: tracker,
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let tracker = ReleaseOnDrop::acquire(&self.meta);
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
            _tracker: tracker,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn poisoned_mutex_is_entered() {
        let m = std::sync::Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = std::sync::Arc::new((Mutex::new(false), Condvar::new()));
        let signaller = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*signaller;
            *lock.lock() = true;
            cvar.notify_one();
        });
        let (lock, cvar) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            cvar.wait(&mut ready);
        }
        assert!(*ready);
        drop(ready);
        t.join().unwrap();
    }

    #[test]
    fn held_stack_balances_across_guards() {
        if !checking_enabled() {
            return; // release-mode run without ATSQ_LOCK_ORDER
        }
        let a = Mutex::new(());
        let b = Mutex::new(());
        assert_eq!(held_locks(), 0);
        {
            let _ga = a.lock();
            assert_eq!(held_locks(), 1);
            let _gb = b.lock();
            assert_eq!(held_locks(), 2);
        }
        assert_eq!(held_locks(), 0);
    }

    /// The detector's core promise: consistent nesting is silent, the
    /// first observed inversion panics and names both locks.
    #[test]
    fn inversion_panics_with_lock_names() {
        if !checking_enabled() {
            return;
        }
        let outer = std::sync::Arc::new(Mutex::new(()));
        let inner = std::sync::Arc::new(Mutex::new(()));
        outer.set_name("test.outer");
        inner.set_name("test.inner");
        {
            let _o = outer.lock();
            let _i = inner.lock(); // records outer -> inner
        }
        let (o2, i2) = (outer.clone(), inner.clone());
        let err = std::thread::Builder::new()
            .name("inverter".into())
            .spawn(move || {
                let _i = i2.lock();
                let _o = o2.lock(); // inner -> outer: cycle
            })
            .expect("spawn")
            .join()
            .expect_err("inverted order must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("lock-order inversion"), "{msg}");
        assert!(
            msg.contains("test.outer") && msg.contains("test.inner"),
            "{msg}"
        );
    }
}
