//! Offline stand-in for the subset of `parking_lot` this workspace
//! uses: non-poisoning [`Mutex`] and [`RwLock`] wrappers over
//! `std::sync`. A poisoned std lock (a panic while held) is simply
//! entered anyway, matching `parking_lot` semantics.

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock()` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose accessors never return a `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn poisoned_mutex_is_entered() {
        let m = std::sync::Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
