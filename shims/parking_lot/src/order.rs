//! Opt-in dynamic lock-order (cycle) checking.
//!
//! Every [`crate::Mutex`] / [`crate::RwLock`] gets a stable numeric id
//! on first acquisition and may carry a human-readable name
//! ([`crate::Mutex::set_name`]). While checking is enabled, each
//! thread tracks the stack of lock ids it currently holds, and every
//! acquisition records `held → acquired` edges into one global
//! acquisition graph. An acquisition that would close a cycle in that
//! graph — the classic AB/BA inversion, in any number of hops —
//! panics *before blocking*, naming both sides: the lock chain this
//! thread holds, and the chain the conflicting edge was first recorded
//! under. A would-be deadlock becomes a deterministic, debuggable
//! panic the first time the two orders are ever observed, even when
//! the timing never actually deadlocks.
//!
//! Enablement: `ATSQ_LOCK_ORDER=1` forces checking on, `=0` forces it
//! off, and unset defaults to `debug_assertions` (on in `cargo test`,
//! off in release benches). Disabled, an acquisition costs one atomic
//! load and a branch.
//!
//! The checker's own state lives behind `std::sync` primitives (never
//! the wrappers in this crate), so it cannot recurse into itself.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex as StdMutex, OnceLock, PoisonError};

/// Whether lock-order checking is active for this process.
pub fn checking_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| match std::env::var("ATSQ_LOCK_ORDER") {
        Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") || v.eq_ignore_ascii_case("on") => true,
        Ok(v) if v == "0" || v.eq_ignore_ascii_case("false") || v.eq_ignore_ascii_case("off") => {
            false
        }
        _ => cfg!(debug_assertions),
    })
}

/// Per-lock bookkeeping embedded in each wrapper: a lazily assigned
/// stable id (0 = unassigned). Names live in the global registry so
/// the wrapper stays `const`-constructible.
#[derive(Debug, Default)]
pub(crate) struct LockMeta {
    id: AtomicUsize,
}

impl LockMeta {
    pub(crate) const fn new() -> LockMeta {
        LockMeta {
            id: AtomicUsize::new(0),
        }
    }

    /// The lock's stable id, assigned on first use.
    pub(crate) fn id(&self) -> usize {
        // ordering: relaxed — the id value itself is the entire
        // payload; the CAS only needs atomicity, not ordering with any
        // other memory, and a racing loser simply re-reads the winner.
        let id = self.id.load(Ordering::Relaxed);
        if id != 0 {
            return id;
        }
        static NEXT: AtomicUsize = AtomicUsize::new(1);
        // ordering: relaxed — a pure unique-id counter.
        let fresh = NEXT.fetch_add(1, Ordering::Relaxed);
        match self
            .id
            // ordering: relaxed — see above; only the winning value
            // matters, and both arms re-read it.
            .compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => fresh,
            Err(existing) => existing,
        }
    }
}

struct Registry {
    /// Human-readable lock names, keyed by lock id.
    names: HashMap<usize, String>,
    /// The acquisition graph: `edges[a]` contains `b` when some thread
    /// acquired `b` while holding `a`.
    edges: HashMap<usize, HashSet<usize>>,
    /// For each recorded edge, the lock-name chain the acquiring
    /// thread held when the edge was first seen (its "stack"), for the
    /// cycle panic message.
    contexts: HashMap<(usize, usize), EdgeContext>,
}

struct EdgeContext {
    thread: String,
    held_chain: Vec<String>,
}

fn registry() -> &'static StdMutex<Registry> {
    static REGISTRY: OnceLock<StdMutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        StdMutex::new(Registry {
            names: HashMap::new(),
            edges: HashMap::new(),
            contexts: HashMap::new(),
        })
    })
}

fn lock_registry() -> std::sync::MutexGuard<'static, Registry> {
    // The registry is only ever poisoned by a cycle panic unwinding
    // through it; its data stays consistent, so enter anyway.
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

impl Registry {
    fn name_of(&self, id: usize) -> String {
        self.names
            .get(&id)
            .cloned()
            .unwrap_or_else(|| format!("lock#{id}"))
    }

    /// Is `to` reachable from `from` through recorded edges?
    fn reachable(&self, from: usize, to: usize) -> bool {
        let mut stack = vec![from];
        let mut seen = HashSet::new();
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = self.edges.get(&n) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }
}

/// Registers a human-readable name for a lock id.
pub(crate) fn set_name(id: usize, name: &str) {
    lock_registry().names.insert(id, name.to_owned());
}

thread_local! {
    /// Ids of the locks this thread currently holds, oldest first.
    static HELD: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

/// Records an acquisition of `id`, panicking if it closes a cycle in
/// the global acquisition graph. Called *before* blocking on the
/// underlying lock, so an actual deadlock is reported instead of hung.
pub(crate) fn on_acquire(id: usize) {
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        for &prior in held.iter() {
            if prior == id {
                // Re-acquiring a lock this thread already holds (e.g.
                // a second read lock) is a self-deadlock hazard of its
                // own but not an ordering inversion; skip the edge.
                continue;
            }
            let mut reg = lock_registry();
            let known = reg.edges.get(&prior).is_some_and(|next| next.contains(&id));
            if known {
                continue;
            }
            if reg.reachable(id, prior) {
                let this_chain: Vec<String> = held.iter().map(|&h| reg.name_of(h)).collect();
                // Prefer the direct reverse edge's context; fall back
                // to any edge out of `id` for longer cycles.
                let conflicting = reg
                    .contexts
                    .get_key_value(&(id, prior))
                    .or_else(|| reg.contexts.iter().find(|((from, _), _)| *from == id))
                    .map(|((from, to), ctx)| {
                        format!(
                            "conflicting order `{}` -> `{}` first recorded on thread `{}` \
                             holding [{}]",
                            reg.name_of(*from),
                            reg.name_of(*to),
                            ctx.thread,
                            ctx.held_chain.join(" -> "),
                        )
                    })
                    .unwrap_or_else(|| "conflicting order recorded earlier".to_owned());
                panic!(
                    "lock-order inversion: thread `{}` holding [{}] tried to acquire `{}`, \
                     but `{}` already precedes `{}` in the acquisition graph; {}",
                    thread_name(),
                    this_chain.join(" -> "),
                    reg.name_of(id),
                    reg.name_of(id),
                    reg.name_of(prior),
                    conflicting,
                );
            }
            let chain: Vec<String> = held.iter().map(|&h| reg.name_of(h)).collect();
            reg.edges.entry(prior).or_default().insert(id);
            reg.contexts.entry((prior, id)).or_insert(EdgeContext {
                thread: thread_name(),
                held_chain: chain,
            });
        }
        held.push(id);
    });
}

/// Records the release of `id` (guard drop, or a `Condvar` wait
/// unlocking its mutex). Removes the most recent occurrence, so
/// out-of-order guard drops stay balanced.
pub(crate) fn on_release(id: usize) {
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(pos) = held.iter().rposition(|&h| h == id) {
            held.remove(pos);
        }
    });
}

/// Number of tracked locks the current thread holds (test hook).
pub fn held_locks() -> usize {
    if !checking_enabled() {
        return 0;
    }
    HELD.with(|held| held.borrow().len())
}

fn thread_name() -> String {
    std::thread::current()
        .name()
        .map_or_else(|| "<unnamed>".to_owned(), str::to_owned)
}
