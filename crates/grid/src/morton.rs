//! Z-order (Morton) space-filling curve.
//!
//! Interleaves the bits of a 2-D cell coordinate into a single integer,
//! giving the "unique numerical ID" per cell the paper's §IV asks a
//! space-filling curve to provide. The Z-order curve additionally makes
//! quad-tree parent/child moves trivial: the parent code is the child
//! code shifted right by two bits.

/// Spreads the low 32 bits of `v` so that bit `i` lands at bit `2i`.
#[inline]
fn spread(v: u32) -> u64 {
    let mut x = v as u64;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Inverse of [`spread`]: collects every second bit back together.
#[inline]
fn squash(v: u64) -> u32 {
    let mut x = v & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
    x as u32
}

/// Encodes grid coordinates `(x, y)` into their Morton code.
///
/// Bit `i` of `x` lands at bit `2i`, bit `i` of `y` at bit `2i+1`, so
/// codes sort in Z order and `code >> 2` is the parent cell's code.
#[inline]
pub fn morton_encode(x: u32, y: u32) -> u64 {
    spread(x) | (spread(y) << 1)
}

/// Decodes a Morton code back into `(x, y)` grid coordinates.
#[inline]
pub fn morton_decode(code: u64) -> (u32, u32) {
    (squash(code), squash(code >> 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_known_values() {
        assert_eq!(morton_encode(0, 0), 0);
        assert_eq!(morton_encode(1, 0), 1);
        assert_eq!(morton_encode(0, 1), 2);
        assert_eq!(morton_encode(1, 1), 3);
        assert_eq!(morton_encode(2, 0), 4);
        assert_eq!(morton_encode(2, 2), 12);
        assert_eq!(morton_encode(3, 3), 15);
    }

    #[test]
    fn roundtrip_exhaustive_small() {
        for x in 0..32 {
            for y in 0..32 {
                assert_eq!(morton_decode(morton_encode(x, y)), (x, y));
            }
        }
    }

    #[test]
    fn roundtrip_large_values() {
        for &(x, y) in &[
            (u32::MAX, 0),
            (0, u32::MAX),
            (u32::MAX, u32::MAX),
            (0xDEAD_BEEF, 0x1234_5678),
        ] {
            assert_eq!(morton_decode(morton_encode(x, y)), (x, y));
        }
    }

    #[test]
    fn parent_is_shift_by_two() {
        // A cell (x, y) at level l has parent (x/2, y/2) at level l-1.
        for x in 0..16u32 {
            for y in 0..16u32 {
                let child = morton_encode(x, y);
                let parent = morton_encode(x / 2, y / 2);
                assert_eq!(child >> 2, parent);
            }
        }
    }

    #[test]
    fn codes_are_unique_per_level() {
        use std::collections::HashSet;
        let codes: HashSet<u64> = (0..64u32)
            .flat_map(|x| (0..64u32).map(move |y| morton_encode(x, y)))
            .collect();
        assert_eq!(codes.len(), 64 * 64);
    }
}
