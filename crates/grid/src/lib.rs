//! Hierarchical grid partitioning of space (§IV of the paper).
//!
//! The paper's GAT index divides the whole spatial region into
//! `2^d × 2^d` quad cells (the *d-Grid*), then coarsens to the
//! `(d−1)`-Grid, …, down to the 1-Grid, forming a hierarchy in which
//! every cell at level `l` has exactly four children at level `l+1`.
//! Each cell gets a unique numerical id via a space-filling curve; this
//! crate uses the Z-order (Morton) curve, which makes parent/child
//! navigation two bit-shifts.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod morton;

use atsq_types::{Point, Rect};
pub use morton::{morton_decode, morton_encode};
use std::fmt;

/// Identifier of one grid cell: its level in the hierarchy plus its
/// Morton code within that level.
///
/// Level 0 is the single root cell covering the whole region; level `d`
/// is the finest (leaf) grid of `2^d × 2^d` cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId {
    /// Hierarchy level, `0 ..= Grid::max_level`.
    pub level: u8,
    /// Morton code of the cell within its level, `< 4^level`.
    pub code: u64,
}

impl CellId {
    /// The root cell (level 0) covering the whole region.
    pub const ROOT: CellId = CellId { level: 0, code: 0 };

    /// The parent cell one level up. Returns `None` for the root.
    #[inline]
    pub fn parent(self) -> Option<CellId> {
        if self.level == 0 {
            None
        } else {
            Some(CellId {
                level: self.level - 1,
                code: self.code >> 2,
            })
        }
    }

    /// The four child cells one level down (caller must ensure the
    /// result level does not exceed the grid's maximum).
    #[inline]
    pub fn children(self) -> [CellId; 4] {
        let base = self.code << 2;
        let level = self.level + 1;
        [
            CellId { level, code: base },
            CellId {
                level,
                code: base + 1,
            },
            CellId {
                level,
                code: base + 2,
            },
            CellId {
                level,
                code: base + 3,
            },
        ]
    }

    /// Whether `self` is an ancestor of (or equal to) `other`.
    pub fn is_ancestor_of(self, other: CellId) -> bool {
        other.level >= self.level
            && (other.code >> (2 * (other.level - self.level) as u64)) == self.code
    }

    /// The ancestor of this cell at `level` (which must be ≤ this
    /// cell's level).
    pub fn ancestor_at(self, level: u8) -> CellId {
        assert!(level <= self.level, "ancestor level above cell level");
        CellId {
            level,
            code: self.code >> (2 * (self.level - level) as u64),
        }
    }

    /// Column/row of this cell within its level's grid.
    #[inline]
    pub fn xy(self) -> (u32, u32) {
        morton_decode(self.code)
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}#{}", self.level, self.code)
    }
}

/// The hierarchical grid over a rectangular region.
///
/// `max_level` is the paper's `d`: the finest partition has
/// `2^d × 2^d` cells. The paper's default is `d = 8` (256×256).
#[derive(Debug, Clone)]
pub struct Grid {
    region: Rect,
    max_level: u8,
}

impl Grid {
    /// Maximum supported depth (Morton codes fit u64 comfortably).
    pub const MAX_SUPPORTED_LEVEL: u8 = 30;

    /// Creates a grid over `region` with finest level `max_level` (`d`).
    ///
    /// # Panics
    /// Panics if the region is empty/degenerate or `max_level` is 0 or
    /// above [`Grid::MAX_SUPPORTED_LEVEL`].
    pub fn new(region: Rect, max_level: u8) -> Self {
        assert!(
            (1..=Self::MAX_SUPPORTED_LEVEL).contains(&max_level),
            "grid level must be in 1..={}",
            Self::MAX_SUPPORTED_LEVEL
        );
        assert!(
            !region.is_empty() && region.width() > 0.0 && region.height() > 0.0,
            "grid region must have positive area"
        );
        Grid { region, max_level }
    }

    /// The covered region.
    #[inline]
    pub fn region(&self) -> Rect {
        self.region
    }

    /// The finest level `d`.
    #[inline]
    pub fn max_level(&self) -> u8 {
        self.max_level
    }

    /// Cells per axis at `level` (`2^level`).
    #[inline]
    pub fn cells_per_axis(&self, level: u8) -> u32 {
        1u32 << level
    }

    /// Total number of cells at `level` (`4^level`).
    #[inline]
    pub fn cell_count(&self, level: u8) -> u64 {
        1u64 << (2 * level as u64)
    }

    /// The leaf cell (level `d`) containing `p`. Points outside the
    /// region are clamped to the border cells, so every point maps to a
    /// valid cell.
    pub fn leaf_cell_of(&self, p: &Point) -> CellId {
        self.cell_of(p, self.max_level)
    }

    /// The cell at `level` containing `p` (clamped to the region).
    pub fn cell_of(&self, p: &Point, level: u8) -> CellId {
        assert!(level <= self.max_level, "level beyond grid depth");
        let n = self.cells_per_axis(level) as f64;
        let fx = ((p.x - self.region.min.x) / self.region.width()) * n;
        let fy = ((p.y - self.region.min.y) / self.region.height()) * n;
        let ix = (fx.floor().max(0.0) as u64).min(n as u64 - 1) as u32;
        let iy = (fy.floor().max(0.0) as u64).min(n as u64 - 1) as u32;
        CellId {
            level,
            code: morton_encode(ix, iy),
        }
    }

    /// The rectangle covered by `cell`.
    pub fn cell_rect(&self, cell: CellId) -> Rect {
        let n = self.cells_per_axis(cell.level) as f64;
        let (ix, iy) = cell.xy();
        let w = self.region.width() / n;
        let h = self.region.height() / n;
        let min_x = self.region.min.x + ix as f64 * w;
        let min_y = self.region.min.y + iy as f64 * h;
        Rect::from_bounds(min_x, min_y, min_x + w, min_y + h)
    }

    /// Minimum distance from `p` to `cell` (zero when inside) — the
    /// `mdist` key of the paper's best-first priority queue.
    #[inline]
    pub fn min_dist(&self, cell: CellId, p: &Point) -> f64 {
        self.cell_rect(cell).min_dist(p)
    }

    /// Maximum distance from `p` to any point of `cell`.
    #[inline]
    pub fn max_dist(&self, cell: CellId, p: &Point) -> f64 {
        self.cell_rect(cell).max_dist(p)
    }

    /// Iterates over all leaf cells intersecting `rect` (clipped to the
    /// region), in Morton order.
    pub fn leaf_cells_in_rect(&self, rect: &Rect) -> Vec<CellId> {
        let level = self.max_level;
        let n = self.cells_per_axis(level);
        if rect.is_empty() || !rect.intersects(&self.region) {
            return Vec::new();
        }
        let to_idx = |v: f64, min: f64, extent: f64| {
            (((v - min) / extent * n as f64).floor().max(0.0) as u64).min(n as u64 - 1) as u32
        };
        let x0 = to_idx(rect.min.x, self.region.min.x, self.region.width());
        let x1 = to_idx(rect.max.x, self.region.min.x, self.region.width());
        let y0 = to_idx(rect.min.y, self.region.min.y, self.region.height());
        let y1 = to_idx(rect.max.y, self.region.min.y, self.region.height());
        let mut out = Vec::with_capacity(((x1 - x0 + 1) * (y1 - y0 + 1)) as usize);
        for iy in y0..=y1 {
            for ix in x0..=x1 {
                out.push(CellId {
                    level,
                    code: morton_encode(ix, iy),
                });
            }
        }
        out.sort_unstable_by_key(|c| c.code);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(d: u8) -> Grid {
        Grid::new(Rect::from_bounds(0.0, 0.0, 64.0, 64.0), d)
    }

    #[test]
    fn cell_of_maps_quadrants() {
        let g = grid(1);
        assert_eq!(g.cell_of(&Point::new(1.0, 1.0), 1).xy(), (0, 0));
        assert_eq!(g.cell_of(&Point::new(63.0, 1.0), 1).xy(), (1, 0));
        assert_eq!(g.cell_of(&Point::new(1.0, 63.0), 1).xy(), (0, 1));
        assert_eq!(g.cell_of(&Point::new(63.0, 63.0), 1).xy(), (1, 1));
    }

    #[test]
    fn out_of_region_points_clamp() {
        let g = grid(3);
        let c = g.leaf_cell_of(&Point::new(-100.0, 1000.0));
        assert_eq!(c.xy(), (0, 7));
        // Exactly on the max border clamps to the last cell.
        let c = g.leaf_cell_of(&Point::new(64.0, 64.0));
        assert_eq!(c.xy(), (7, 7));
    }

    #[test]
    fn cell_rect_roundtrip() {
        let g = grid(4);
        for &(x, y) in &[(0.5, 0.5), (10.0, 50.0), (63.9, 0.1), (32.0, 32.0)] {
            let p = Point::new(x, y);
            let c = g.leaf_cell_of(&p);
            let r = g.cell_rect(c);
            assert!(r.contains_point(&p), "cell {c} rect {r:?} misses {p}");
            assert!((r.width() - 4.0).abs() < 1e-9);
        }
    }

    #[test]
    fn parent_child_consistency() {
        let g = grid(5);
        let p = Point::new(17.3, 42.8);
        let leaf = g.leaf_cell_of(&p);
        let parent = leaf.parent().unwrap();
        assert_eq!(parent, g.cell_of(&p, 4));
        assert!(leaf.children().iter().all(|ch| ch.parent() == Some(leaf)));
        assert!(parent.children().contains(&leaf));
        assert!(parent.is_ancestor_of(leaf));
        assert!(CellId::ROOT.is_ancestor_of(leaf));
        assert!(!leaf.is_ancestor_of(parent));
        assert_eq!(leaf.ancestor_at(0), CellId::ROOT);
        assert_eq!(leaf.ancestor_at(4), parent);
    }

    #[test]
    fn child_rects_tile_parent() {
        let g = grid(3);
        let parent = g.cell_of(&Point::new(20.0, 20.0), 2);
        let pr = g.cell_rect(parent);
        let mut area = 0.0;
        for ch in parent.children() {
            let cr = g.cell_rect(ch);
            assert!(pr.contains_rect(&cr));
            area += cr.area();
        }
        assert!((area - pr.area()).abs() < 1e-9);
    }

    #[test]
    fn min_dist_zero_inside_positive_outside() {
        let g = grid(3);
        let c = g.cell_of(&Point::new(4.0, 4.0), 3); // cell [0,8)x[0,8)
        assert_eq!(g.min_dist(c, &Point::new(4.0, 4.0)), 0.0);
        let d = g.min_dist(c, &Point::new(16.0, 4.0));
        assert!((d - 8.0).abs() < 1e-9);
        assert!(g.max_dist(c, &Point::new(16.0, 4.0)) >= d);
    }

    #[test]
    fn leaf_cells_in_rect_cover_query() {
        let g = grid(3); // 8x8 cells of 8km.
        let cells = g.leaf_cells_in_rect(&Rect::from_bounds(7.0, 7.0, 9.0, 9.0));
        assert_eq!(cells.len(), 4);
        let all = g.leaf_cells_in_rect(&Rect::from_bounds(-10.0, -10.0, 100.0, 100.0));
        assert_eq!(all.len(), 64);
        assert!(g.leaf_cells_in_rect(&Rect::empty()).is_empty());
    }

    #[test]
    fn cell_counts() {
        let g = grid(8);
        assert_eq!(g.cells_per_axis(8), 256);
        assert_eq!(g.cell_count(8), 65536);
        assert_eq!(g.cell_count(1), 4);
        assert_eq!(g.cell_count(0), 1);
    }

    #[test]
    #[should_panic(expected = "grid level")]
    fn zero_level_rejected() {
        let _ = grid(0);
    }

    #[test]
    #[should_panic(expected = "positive area")]
    fn degenerate_region_rejected() {
        let _ = Grid::new(Rect::from_bounds(0.0, 0.0, 0.0, 10.0), 4);
    }
}
