//! Property tests for the hierarchical grid and the Morton curve.

use atsq_grid::{morton_decode, morton_encode, Grid};
use atsq_types::{Point, Rect};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn morton_roundtrip(x in any::<u32>(), y in any::<u32>()) {
        prop_assert_eq!(morton_decode(morton_encode(x, y)), (x, y));
    }

    #[test]
    fn morton_parent_relation(x in 0u32..1 << 15, y in 0u32..1 << 15) {
        prop_assert_eq!(morton_encode(x, y) >> 2, morton_encode(x / 2, y / 2));
    }

    /// Every point maps to a cell whose rect contains it, at every level.
    #[test]
    fn cell_of_contains_point(
        x in 0.0f64..100.0,
        y in 0.0f64..100.0,
        level in 1u8..10,
    ) {
        let g = Grid::new(Rect::from_bounds(0.0, 0.0, 100.0, 100.0), 10);
        let p = Point::new(x, y);
        let c = g.cell_of(&p, level);
        prop_assert!(g.cell_rect(c).contains_point(&p));
        prop_assert_eq!(g.min_dist(c, &p), 0.0);
    }

    /// The ancestor chain is geometrically nested.
    #[test]
    fn ancestors_nest(x in 0.0f64..100.0, y in 0.0f64..100.0) {
        let g = Grid::new(Rect::from_bounds(0.0, 0.0, 100.0, 100.0), 8);
        let leaf = g.leaf_cell_of(&Point::new(x, y));
        let mut cell = leaf;
        while let Some(parent) = cell.parent() {
            if parent.level == 0 {
                break;
            }
            prop_assert!(g.cell_rect(parent).contains_rect(&g.cell_rect(cell)));
            prop_assert!(parent.is_ancestor_of(leaf));
            cell = parent;
        }
    }

    /// mindist to a cell lower-bounds the distance to any point inside it.
    #[test]
    fn min_dist_is_a_lower_bound(
        px in -50.0f64..150.0,
        py in -50.0f64..150.0,
        ix in 0.0f64..100.0,
        iy in 0.0f64..100.0,
        level in 1u8..8,
    ) {
        let g = Grid::new(Rect::from_bounds(0.0, 0.0, 100.0, 100.0), 8);
        let q = Point::new(px, py);
        let inner = Point::new(ix, iy);
        let cell = g.cell_of(&inner, level);
        prop_assert!(g.min_dist(cell, &q) <= q.dist(&inner) + 1e-9);
        prop_assert!(g.max_dist(cell, &q) + 1e-9 >= q.dist(&inner));
    }

    /// leaf_cells_in_rect returns exactly the cells whose rects
    /// intersect the query.
    #[test]
    fn cells_in_rect_complete(
        x0 in 0.0f64..100.0,
        y0 in 0.0f64..100.0,
        w in 0.0f64..40.0,
        h in 0.0f64..40.0,
    ) {
        let g = Grid::new(Rect::from_bounds(0.0, 0.0, 100.0, 100.0), 5);
        let q = Rect::from_bounds(x0, y0, (x0 + w).min(100.0), (y0 + h).min(100.0));
        let cells = g.leaf_cells_in_rect(&q);
        // Sorted and unique.
        prop_assert!(cells.windows(2).all(|p| p[0].code < p[1].code));
        // Sampled interior points all land in a returned cell.
        for fx in [0.1, 0.5, 0.9] {
            for fy in [0.1, 0.5, 0.9] {
                let p = Point::new(
                    q.min.x + fx * q.width(),
                    q.min.y + fy * q.height(),
                );
                let c = g.leaf_cell_of(&p);
                prop_assert!(cells.contains(&c), "missing cell {c} for {p}");
            }
        }
    }
}
