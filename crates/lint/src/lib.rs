//! Repo-specific concurrency/correctness lints for the ATSQ workspace.
//!
//! `cargo run -p atsq-lint` scans every `crates/*/src/**/*.rs` file
//! (except this crate's own sources) with a line-oriented,
//! brace-tracking scanner — no syn, no external deps — and enforces
//! six rules this codebase has been bitten by or is structured
//! around:
//!
//! 1. **`lock-hold`** — a `let`-bound lock guard (`.lock()` /
//!    `.read()` / `.write()` with empty argument lists) whose scope
//!    acquires a *second* lock or performs blocking I/O before the
//!    guard drops. Nested acquisition is how lock-order inversions are
//!    born (the runtime checker in `shims/parking_lot` catches the
//!    dynamic cycle; this catches the static shape), and I/O under a
//!    lock turns a cheap critical section into a convoy.
//! 2. **`atomics-ordering`** — every `Ordering::…` use must carry an
//!    `// ordering:` justification comment on the same line or in the
//!    lines just above (one comment covers a contiguous cluster).
//!    `Ordering::SeqCst` is denied outright: a justified SeqCst goes
//!    in the allowlist, so each one is a recorded decision.
//! 3. **`panic-hot-path`** — `unwrap()` / `expect(…)` / `panic!` are
//!    denied in the request hot path (server, service, wire, queue,
//!    sharded engine, batch executor). An `.expect(…)` whose message
//!    contains `invariant` is allowed — it documents a structurally
//!    impossible failure rather than an error path.
//! 4. **`atomic-snapshot-coherence`** — a function that loads two or
//!    more distinct atomics is publishing a multi-value snapshot that
//!    can tear; it must say why that is sound in a `coherence:`
//!    comment (inside the function or immediately above it).
//! 5. **`condvar-wait-must-loop`** — every blocking
//!    `Condvar::wait(&mut guard)` must sit inside a `while`/`loop`
//!    that re-checks its predicate. A wakeup is a hint, not a proof:
//!    `notify_all` wakes every waiter, the mutex is re-acquired only
//!    after rivals may have consumed the state, and spurious wakeups
//!    are legal (`atsq-model` injects them deliberately to break
//!    wait-once callers).
//! 6. **`unsafe-needs-safety-comment`** — every `unsafe` keyword
//!    (block, fn, impl) needs a `// SAFETY:` comment on the same line
//!    or just above it, recording the proof obligation at the point
//!    where it is incurred.
//!
//! Findings can be waived in a committed `lint.allow` file at the scan
//! root, one entry per line: `rule|file|needle|reason`. `file` is a
//! suffix of the repo-relative path, `needle` must appear verbatim in
//! the flagged line, and `reason` is the recorded justification.
//! Entries that match nothing are **stale** and fail the run — the
//! allowlist can only shrink ahead of the code, never trail it.

use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation at a specific line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (`lock-hold`, `atomics-ordering`, …).
    pub rule: &'static str,
    /// Path relative to the scan root, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}: {}",
            self.rule, self.file, self.line, self.message
        )
    }
}

/// One `rule|file|needle|reason` waiver.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule the waiver applies to.
    pub rule: String,
    /// Path suffix the waiver applies to.
    pub file: String,
    /// Substring that must appear in the flagged source line.
    pub needle: String,
    /// Recorded justification (required, never empty).
    pub reason: String,
    /// Line in `lint.allow`, for stale-entry reporting.
    pub line: usize,
}

/// Parsed allowlist plus per-entry usage tracking.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses `lint.allow` text. Lines starting with `#` and blank
    /// lines are ignored; anything else must have exactly four
    /// `|`-separated fields with a non-empty reason.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parts: Vec<&str> = line.splitn(4, '|').collect();
            if parts.len() != 4 || parts[3].trim().is_empty() {
                return Err(format!(
                    "lint.allow:{}: expected `rule|file|needle|reason` with a non-empty reason",
                    i + 1
                ));
            }
            entries.push(AllowEntry {
                rule: parts[0].trim().to_string(),
                file: parts[1].trim().to_string(),
                needle: parts[2].to_string(),
                reason: parts[3].trim().to_string(),
                line: i + 1,
            });
        }
        Ok(Allowlist { entries })
    }

    /// The parsed entries.
    pub fn entries(&self) -> &[AllowEntry] {
        &self.entries
    }
}

/// Outcome of one scan: surviving findings plus stale waivers.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings not covered by any allowlist entry.
    pub findings: Vec<Finding>,
    /// Allowlist entries that matched no finding.
    pub stale_allows: Vec<AllowEntry>,
    /// Files scanned (for `-v` style reporting and sanity tests).
    pub files_scanned: usize,
}

impl Report {
    /// Whether the scan should fail the build.
    pub fn is_failure(&self) -> bool {
        !self.findings.is_empty() || !self.stale_allows.is_empty()
    }
}

/// Hot-path files for the `panic-hot-path` rule, relative to the scan
/// root. The request path must degrade (error replies, skipped
/// entries) rather than take the whole worker down.
const HOT_PATHS: &[&str] = &[
    "crates/service/src/server.rs",
    "crates/service/src/service.rs",
    "crates/service/src/wire.rs",
    "crates/service/src/queue.rs",
    "crates/gat/src/sharded.rs",
    "crates/core/src/batch.rs",
];

/// Blocking-I/O markers for the `lock-hold` rule. Matched as plain
/// substrings against non-comment code.
const BLOCKING_IO: &[&str] = &[
    "std::fs::",
    "fs::write(",
    "fs::read(",
    "File::create(",
    "File::open(",
    ".write_all(",
    ".read_to_end(",
    ".read_exact(",
    ".flush()",
    "TcpStream::connect(",
    "thread::sleep(",
    ".join()",
];

const ORDERINGS: &[&str] = &[
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

/// How far up an `// ordering:` / `// coherence:` comment may sit from
/// the site it covers, in lines. The walk skips blank lines, other
/// comment lines, other atomic sites and expression-continuation lines
/// (anything not ending a statement), so one comment covers a
/// contiguous cluster such as a snapshot struct literal.
const COMMENT_WALK_CAP: usize = 40;

/// Scans `root` (a directory containing `crates/`) and returns all raw
/// findings, before allowlist filtering.
pub fn scan(root: &Path) -> Result<(Vec<Finding>, usize), String> {
    let mut findings = Vec::new();
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("readdir: {e}"))?;
        let path = entry.path();
        if !path.is_dir() || entry.file_name() == "lint" {
            continue; // the linter does not re-lint its own pattern tables
        }
        let src = path.join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }
    files.sort();
    let count = files.len();
    for file in &files {
        let text = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        scan_file(&rel, &text, &mut findings);
    }
    Ok((findings, count))
}

/// Scans and applies the allowlist; the complete front-end used by the
/// binary and the integration tests.
pub fn run(root: &Path) -> Result<Report, String> {
    let allow_path = root.join("lint.allow");
    let allow = if allow_path.is_file() {
        let text = std::fs::read_to_string(&allow_path)
            .map_err(|e| format!("cannot read {}: {e}", allow_path.display()))?;
        Allowlist::parse(&text)?
    } else {
        Allowlist::default()
    };
    let (raw, files_scanned) = scan(root)?;
    let mut used = vec![false; allow.entries.len()];
    let mut findings = Vec::new();
    for f in raw {
        let mut waived = false;
        for (i, e) in allow.entries.iter().enumerate() {
            if e.rule == f.rule && f.file.ends_with(&e.file) && f.message.contains(&e.needle) {
                used[i] = true;
                waived = true;
            }
        }
        if !waived {
            findings.push(f);
        }
    }
    let stale_allows = allow
        .entries
        .into_iter()
        .zip(used)
        .filter_map(|(e, u)| if u { None } else { Some(e) })
        .collect();
    Ok(Report {
        findings,
        stale_allows,
        files_scanned,
    })
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("readdir: {e}"))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The trimmed code part of a line: leading whitespace and any
/// trailing `//` comment removed. Not string-literal aware — good
/// enough for this codebase's conventions, and the rules only get
/// *more* strict from the occasional `//` inside a string.
fn code_of(line: &str) -> &str {
    let line = match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    };
    line.trim()
}

fn is_comment_line(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("//") || t.starts_with("/*") || t.starts_with('*')
}

fn is_atomic_site(line: &str) -> bool {
    let code = code_of(line);
    ORDERINGS.iter().any(|o| code.contains(o))
}

/// First line (0-based) of the file's `#[cfg(test)]` region, or
/// `usize::MAX` when the file has none. Test modules sit at the end of
/// files in this workspace.
fn test_region_start(lines: &[&str]) -> usize {
    lines
        .iter()
        .position(|l| l.trim_start().starts_with("#[cfg(test)]"))
        .unwrap_or(usize::MAX)
}

fn scan_file(rel: &str, text: &str, findings: &mut Vec<Finding>) {
    let lines: Vec<&str> = text.lines().collect();
    let test_start = test_region_start(&lines);
    rule_lock_hold(rel, &lines, findings);
    rule_atomics_ordering(rel, &lines, findings);
    rule_panic_hot_path(rel, &lines, test_start, findings);
    rule_snapshot_coherence(rel, &lines, findings);
    rule_condvar_wait_loop(rel, &lines, findings);
    rule_unsafe_safety(rel, &lines, findings);
}

/// Net brace balance of a line's code part.
fn brace_delta(code: &str) -> i64 {
    let mut d = 0i64;
    for c in code.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

/// A `let`-bound guard acquisition: `let [mut] name = ….lock()` /
/// `.read()` / `.write()` (empty argument lists, so `io::Read::read`
/// and friends don't match). Returns the binding name.
fn guard_binding(code: &str) -> Option<String> {
    if !code.starts_with("let ") {
        return None;
    }
    if !(code.contains(".lock()") || code.contains(".read()") || code.contains(".write()")) {
        return None;
    }
    let rest = code[4..].trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

fn is_second_acquisition(code: &str) -> bool {
    code.contains(".lock()") || code.contains(".read()") || code.contains(".write()")
}

fn rule_lock_hold(rel: &str, lines: &[&str], findings: &mut Vec<Finding>) {
    for (i, line) in lines.iter().enumerate() {
        let code = code_of(line);
        let Some(name) = guard_binding(code) else {
            continue;
        };
        // Walk the guard's scope: from the binding until the block it
        // lives in closes, or an explicit `drop(name)`.
        let mut depth = 0i64;
        let drop_marker = format!("drop({name})");
        for (j, body_line) in lines.iter().enumerate().skip(i + 1).take(200) {
            let body = code_of(body_line);
            depth += brace_delta(body);
            if depth < 0 || body.contains(&drop_marker) || body.starts_with("return") {
                break;
            }
            if is_second_acquisition(body) {
                findings.push(Finding {
                    rule: "lock-hold",
                    file: rel.to_string(),
                    line: j + 1,
                    message: format!(
                        "second lock acquired while guard `{name}` (line {}) is held: `{body}`",
                        i + 1
                    ),
                });
            } else if let Some(io) = BLOCKING_IO.iter().find(|p| body.contains(**p)) {
                findings.push(Finding {
                    rule: "lock-hold",
                    file: rel.to_string(),
                    line: j + 1,
                    message: format!(
                        "blocking call `{io}` while guard `{name}` (line {}) is held: `{body}`",
                        i + 1
                    ),
                });
            }
        }
    }
}

/// Whether the atomic site at `idx` is covered by an `// ordering:`
/// comment — on the same line, or found by walking upward through
/// blank lines, other comments, other atomic sites and
/// expression-continuation lines (lines whose code does not end a
/// statement with `;` or `}`), up to [`COMMENT_WALK_CAP`] lines.
fn covered_by(lines: &[&str], idx: usize, marker: &str) -> bool {
    if lines[idx].contains(marker) {
        return true;
    }
    let mut walked = 0;
    let mut j = idx;
    while j > 0 && walked < COMMENT_WALK_CAP {
        j -= 1;
        walked += 1;
        let line = lines[j];
        if is_comment_line(line) {
            if line.contains(marker) {
                return true;
            }
            continue;
        }
        let code = code_of(line);
        if code.is_empty() || is_atomic_site(line) {
            continue;
        }
        if code.ends_with(';') || code.ends_with('}') {
            return false; // statement boundary without a justification
        }
        // Continuation: struct field (`,`), opening brace, chained
        // call start, attribute, etc. — keep walking.
    }
    false
}

fn rule_atomics_ordering(rel: &str, lines: &[&str], findings: &mut Vec<Finding>) {
    for (i, line) in lines.iter().enumerate() {
        if !is_atomic_site(line) {
            continue;
        }
        let code = code_of(line);
        if code.contains("Ordering::SeqCst") {
            findings.push(Finding {
                rule: "atomics-ordering",
                file: rel.to_string(),
                line: i + 1,
                message: format!(
                    "Ordering::SeqCst is denied by default; justify via lint.allow or weaken: `{code}`"
                ),
            });
            continue;
        }
        if !covered_by(lines, i, "ordering:") {
            findings.push(Finding {
                rule: "atomics-ordering",
                file: rel.to_string(),
                line: i + 1,
                message: format!("atomic access lacks an `// ordering:` justification: `{code}`"),
            });
        }
    }
}

fn rule_panic_hot_path(rel: &str, lines: &[&str], test_start: usize, findings: &mut Vec<Finding>) {
    if !HOT_PATHS.iter().any(|p| rel == *p || rel.ends_with(p)) {
        return;
    }
    for (i, line) in lines.iter().enumerate() {
        if i >= test_start {
            break;
        }
        let code = code_of(line);
        let mut flag: Option<&str> = None;
        if code.contains(".unwrap()") {
            flag = Some(".unwrap()");
        } else if code.contains("panic!") {
            flag = Some("panic!");
        } else if code.contains(".expect(") || code.contains(".expect(\"") {
            // `.expect("invariant: …")` is the sanctioned form: it
            // asserts something structurally guaranteed. Messages may
            // start on the next line for long invariants.
            let here = code.contains("invariant");
            let next = lines.get(i + 1).is_some_and(|l| l.contains("invariant"));
            if !(here || next) {
                flag = Some(".expect(");
            }
        }
        if let Some(what) = flag {
            findings.push(Finding {
                rule: "panic-hot-path",
                file: rel.to_string(),
                line: i + 1,
                message: format!("`{what}` in hot-path file: `{code}`"),
            });
        }
    }
}

/// Receiver texts of every atomic `.load(` on this line — for each
/// occurrence, everything from the start of its expression to
/// `.load(`.
fn load_receivers(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = code[from..].find(".load(") {
        let at = from + rel;
        from = at + ".load(".len();
        if !code[at..].contains("Ordering::") {
            continue; // not an atomic load (e.g. Cell::get-alikes)
        }
        let head = &code[..at];
        let start = head
            .rfind(|c: char| !(c.is_alphanumeric() || "_.:[]()| &*".contains(c)))
            .map(|p| p + 1)
            .unwrap_or(0);
        let r = head[start..].trim().to_string();
        if !r.is_empty() {
            out.push(r);
        }
    }
    out
}

fn rule_snapshot_coherence(rel: &str, lines: &[&str], findings: &mut Vec<Finding>) {
    let mut i = 0;
    while i < lines.len() {
        let code = code_of(lines[i]);
        let is_fn = (code.starts_with("fn ")
            || code.starts_with("pub fn ")
            || code.starts_with("pub(crate) fn "))
            && code.contains('(');
        if !is_fn {
            i += 1;
            continue;
        }
        // Find the fn body: from the first `{` at or after the
        // signature line to its matching close.
        let mut depth = 0i64;
        let mut started = false;
        let mut end = i;
        for (j, line) in lines.iter().enumerate().skip(i) {
            let c = code_of(line);
            depth += brace_delta(c);
            if c.contains('{') {
                started = true;
            }
            if started && depth <= 0 {
                end = j;
                break;
            }
            end = j;
        }
        let mut receivers: Vec<String> = Vec::new();
        let mut first_load_line = 0usize;
        let mut has_comment = covered_by(lines, i, "coherence:");
        for (j, line) in lines.iter().enumerate().take(end + 1).skip(i) {
            if line.contains("coherence:") {
                has_comment = true;
            }
            for r in load_receivers(code_of(line)) {
                if !receivers.contains(&r) {
                    receivers.push(r);
                }
                if first_load_line == 0 {
                    first_load_line = j + 1;
                }
            }
        }
        if receivers.len() >= 2 && !has_comment {
            findings.push(Finding {
                rule: "atomic-snapshot-coherence",
                file: rel.to_string(),
                line: first_load_line,
                message: format!(
                    "function at line {} loads {} distinct atomics ({}) without a `coherence:` comment explaining why a torn cut is sound",
                    i + 1,
                    receivers.len(),
                    receivers.join(", ")
                ),
            });
        }
        i = end.max(i) + 1;
    }
}

/// A line whose code opens a loop body: `loop { … }`, `while pred {`,
/// `while let … {`, `for x in … {`.
fn is_loop_opener(code: &str) -> bool {
    code.starts_with("loop") || code.contains("while ") || code.contains("for ")
}

/// Whether the `.wait(&mut …)` at `idx` sits inside a loop. Climbs
/// upward tracking brace balance; every line that leaves the balance
/// positive opened a block still enclosing the wait site — a loop
/// opener there satisfies the rule, a `fn` signature means the walk
/// left the function without finding one. Intermediate non-loop
/// blocks (`match` arms, `if` guards) are climbed through, which is
/// exactly the shape of the real registry/queue wait sites.
fn wait_in_loop(lines: &[&str], idx: usize) -> bool {
    if is_loop_opener(code_of(lines[idx])) {
        return true; // single-line `while pred { cv.wait(&mut g); }`
    }
    let mut bal = 0i64;
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let code = code_of(lines[j]);
        bal += brace_delta(code);
        if bal > 0 {
            if is_loop_opener(code) {
                return true;
            }
            if code.contains("fn ") {
                return false; // reached the enclosing function header
            }
            bal = 0; // a non-loop enclosing block; keep climbing
        }
    }
    false
}

fn rule_condvar_wait_loop(rel: &str, lines: &[&str], findings: &mut Vec<Finding>) {
    for (i, line) in lines.iter().enumerate() {
        let code = code_of(line);
        // Blocking condvar waits only — `&mut guard` distinguishes
        // them from e.g. a ticket's consuming `wait()`.
        if !code.contains(".wait(&mut ") {
            continue;
        }
        if !wait_in_loop(lines, i) {
            findings.push(Finding {
                rule: "condvar-wait-must-loop",
                file: rel.to_string(),
                line: i + 1,
                message: format!(
                    "condvar wait is not inside a predicate-recheck loop (`while`/`loop`): `{code}`"
                ),
            });
        }
    }
}

/// Whether `code` contains `unsafe` as a standalone keyword token —
/// `unsafe_code` inside a `#![deny(…)]` attribute does not count.
fn has_unsafe_token(code: &str) -> bool {
    let b = code.as_bytes();
    let mut from = 0;
    while let Some(at) = code[from..].find("unsafe").map(|p| p + from) {
        let end = at + "unsafe".len();
        let pre = at == 0 || !(b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_');
        let post = end == code.len() || !(b[end].is_ascii_alphanumeric() || b[end] == b'_');
        if pre && post {
            return true;
        }
        from = end;
    }
    false
}

fn rule_unsafe_safety(rel: &str, lines: &[&str], findings: &mut Vec<Finding>) {
    for (i, line) in lines.iter().enumerate() {
        if !has_unsafe_token(code_of(line)) {
            continue;
        }
        if !covered_by(lines, i, "SAFETY:") {
            findings.push(Finding {
                rule: "unsafe-needs-safety-comment",
                file: rel.to_string(),
                line: i + 1,
                message: format!(
                    "`unsafe` without a `// SAFETY:` justification: `{}`",
                    code_of(line)
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_src(rel: &str, src: &str) -> Vec<Finding> {
        let mut f = Vec::new();
        scan_file(rel, src, &mut f);
        f
    }

    #[test]
    fn guard_binding_matches_lock_calls_only() {
        assert_eq!(
            guard_binding("let mut g = self.inner.lock();"),
            Some("g".to_string())
        );
        assert_eq!(
            guard_binding("let data = map.read();"),
            Some("data".to_string())
        );
        // io::Read::read takes a buffer — no empty parens, no match.
        assert_eq!(guard_binding("let n = stream.read(&mut buf)?;"), None);
        assert_eq!(guard_binding("let x = compute();"), None);
    }

    #[test]
    fn lock_hold_flags_nested_acquisition_and_io() {
        let src = "fn f(&self) {\n    let a = self.first.lock();\n    let b = self.second.lock();\n    std::fs::write(\"x\", b\"y\").ok();\n}\n";
        let f = scan_src("crates/x/src/a.rs", src);
        let locks: Vec<_> = f.iter().filter(|f| f.rule == "lock-hold").collect();
        // Guard `a` sees the second lock and the I/O; the nested
        // guard `b` sees the I/O too — three findings total.
        assert_eq!(locks.len(), 3, "{locks:?}");
        assert!(locks[0].message.contains("second lock"));
        assert!(locks[1].message.contains("blocking call"));
    }

    #[test]
    fn lock_hold_respects_drop_and_scope_end() {
        let src = "fn f(&self) {\n    {\n        let a = self.first.lock();\n    }\n    let b = self.second.lock();\n    drop(b);\n    let c = self.third.lock();\n}\n";
        let f = scan_src("crates/x/src/a.rs", src);
        assert!(
            f.iter().all(|f| f.rule != "lock-hold"),
            "sequential guards are fine: {f:?}"
        );
    }

    #[test]
    fn ordering_comment_walk_covers_clusters() {
        let src = "fn f(&self) -> S {\n    // ordering: Relaxed — monotone tallies.\n    S {\n        a: self.a.load(Ordering::Relaxed),\n        b: self.b.load(Ordering::Relaxed),\n    }\n}\n";
        let f = scan_src("crates/x/src/a.rs", src);
        assert!(
            f.iter().all(|f| f.rule != "atomics-ordering"),
            "cluster comment covers both: {f:?}"
        );
    }

    #[test]
    fn ordering_without_comment_is_flagged_and_seqcst_denied() {
        let src = "fn f(&self) {\n    self.x.store(1, Ordering::Relaxed);\n    self.y.store(1, Ordering::SeqCst); // ordering: because\n}\n";
        let f = scan_src("crates/x/src/a.rs", src);
        let ord: Vec<_> = f.iter().filter(|f| f.rule == "atomics-ordering").collect();
        assert_eq!(ord.len(), 2, "{ord:?}");
        assert!(ord[0].message.contains("lacks"));
        assert!(ord[1].message.contains("SeqCst"));
    }

    #[test]
    fn statement_boundary_stops_the_walk() {
        let src = "fn f(&self) {\n    // ordering: Relaxed — covers only the next cluster.\n    self.a.load(Ordering::Relaxed);\n    do_something_else();\n    self.b.load(Ordering::Relaxed);\n}\n";
        let f = scan_src("crates/x/src/a.rs", src);
        let ord: Vec<_> = f.iter().filter(|f| f.rule == "atomics-ordering").collect();
        assert_eq!(ord.len(), 1, "{ord:?}");
        assert_eq!(ord[0].line, 5);
    }

    #[test]
    fn panic_rule_applies_to_hot_paths_only() {
        let src = "fn f() {\n    x.unwrap();\n}\n";
        assert!(scan_src("crates/gat/src/build.rs", src)
            .iter()
            .all(|f| f.rule != "panic-hot-path"));
        let f = scan_src("crates/service/src/wire.rs", src);
        assert!(f.iter().any(|f| f.rule == "panic-hot-path"), "{f:?}");
    }

    #[test]
    fn invariant_expects_and_test_modules_are_exempt() {
        let src = "fn f() {\n    x.expect(\"invariant: always present\");\n}\n#[cfg(test)]\nmod tests {\n    fn g() {\n        y.unwrap();\n    }\n}\n";
        let f = scan_src("crates/service/src/wire.rs", src);
        assert!(
            f.iter().all(|f| f.rule != "panic-hot-path"),
            "invariant expect + test unwrap both exempt: {f:?}"
        );
    }

    #[test]
    fn snapshot_coherence_needs_two_distinct_receivers() {
        let one = "fn f(&self) -> u64 {\n    // ordering: Relaxed — tally.\n    self.a.load(Ordering::Relaxed) + self.a.load(Ordering::Relaxed)\n}\n";
        assert!(scan_src("crates/x/src/a.rs", one)
            .iter()
            .all(|f| f.rule != "atomic-snapshot-coherence"));
        let two = "fn f(&self) -> u64 {\n    // ordering: Relaxed — tallies.\n    self.a.load(Ordering::Relaxed) + self.b.load(Ordering::Relaxed)\n}\n";
        let f = scan_src("crates/x/src/a.rs", two);
        assert!(
            f.iter().any(|f| f.rule == "atomic-snapshot-coherence"),
            "{f:?}"
        );
        let documented = "fn f(&self) -> u64 {\n    // coherence: both tallies are advisory; a torn cut is fine.\n    // ordering: Relaxed — tallies.\n    self.a.load(Ordering::Relaxed) + self.b.load(Ordering::Relaxed)\n}\n";
        assert!(scan_src("crates/x/src/a.rs", documented)
            .iter()
            .all(|f| f.rule != "atomic-snapshot-coherence"));
    }

    #[test]
    fn condvar_wait_outside_loop_is_flagged() {
        let src = "fn f(&self) {\n    let mut g = self.inner.lock();\n    if g.n == 0 {\n        self.cond.wait(&mut g);\n    }\n}\n";
        let f = scan_src("crates/x/src/a.rs", src);
        let cv: Vec<_> = f
            .iter()
            .filter(|f| f.rule == "condvar-wait-must-loop")
            .collect();
        assert_eq!(cv.len(), 1, "{cv:?}");
        assert_eq!(cv[0].line, 4);
    }

    #[test]
    fn condvar_wait_in_while_and_in_match_in_loop_pass() {
        let looped = "fn f(&self) {\n    let mut g = self.inner.lock();\n    while g.n == 0 {\n        self.cond.wait(&mut g);\n    }\n}\n";
        assert!(scan_src("crates/x/src/a.rs", looped)
            .iter()
            .all(|f| f.rule != "condvar-wait-must-loop"));
        // The real registry shape: wait inside a match arm inside a
        // loop — the climb must pass through the non-loop levels.
        let nested = "fn f(&self) {\n    let mut g = self.inner.lock();\n    loop {\n        match g.state {\n            State::Ready => return,\n            State::Loading => {\n                self.cond.wait(&mut g);\n            }\n        }\n    }\n}\n";
        assert!(scan_src("crates/x/src/a.rs", nested)
            .iter()
            .all(|f| f.rule != "condvar-wait-must-loop"));
        // Non-blocking waits (no `&mut guard`) are out of scope.
        let ticket = "fn f(t: Ticket) {\n    t.wait();\n}\n";
        assert!(scan_src("crates/x/src/a.rs", ticket)
            .iter()
            .all(|f| f.rule != "condvar-wait-must-loop"));
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = "fn f() {\n    unsafe { do_it() }\n}\n";
        let f = scan_src("crates/x/src/a.rs", bad);
        assert!(
            f.iter().any(|f| f.rule == "unsafe-needs-safety-comment"),
            "{f:?}"
        );
        let good =
            "fn f() {\n    // SAFETY: caller holds the slot lock.\n    unsafe { do_it() }\n}\n";
        assert!(scan_src("crates/x/src/a.rs", good)
            .iter()
            .all(|f| f.rule != "unsafe-needs-safety-comment"));
        // `unsafe_code` in a lint attribute is not the keyword.
        let attr = "#![deny(unsafe_code)]\n";
        assert!(scan_src("crates/x/src/a.rs", attr)
            .iter()
            .all(|f| f.rule != "unsafe-needs-safety-comment"));
    }

    #[test]
    fn allowlist_rejects_malformed_and_empty_reasons() {
        assert!(Allowlist::parse("rule|file|needle|reason").is_ok());
        assert!(Allowlist::parse("# comment\n\n").is_ok());
        assert!(Allowlist::parse("rule|file|needle|").is_err());
        assert!(Allowlist::parse("rule|file").is_err());
    }
}
