//! `cargo run -p atsq-lint [-- ROOT]` — scan the workspace and exit
//! non-zero on any unwaived finding or stale allowlist entry.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            // crates/lint → workspace root.
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .canonicalize()
                .unwrap_or_else(|_| PathBuf::from("."))
        });
    let report = match atsq_lint::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("atsq-lint: {e}");
            return ExitCode::from(2);
        }
    };
    for f in &report.findings {
        println!("{f}");
    }
    for e in &report.stale_allows {
        println!(
            "stale-allow: lint.allow:{}: `{}|{}|{}` matched nothing — remove it",
            e.line, e.rule, e.file, e.needle
        );
    }
    if report.is_failure() {
        eprintln!(
            "atsq-lint: {} finding(s), {} stale allowlist entr(ies) across {} files",
            report.findings.len(),
            report.stale_allows.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    } else {
        println!("atsq-lint: clean — {} files scanned", report.files_scanned);
        ExitCode::SUCCESS
    }
}
