//! Integration tests driving `atsq_lint::run` (and the binary) over
//! the fixture trees in `tests/fixtures/` — one positive and one
//! negative case per rule, plus the allowlist round trip.

use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn rules_of(report: &atsq_lint::Report) -> Vec<&'static str> {
    report.findings.iter().map(|f| f.rule).collect()
}

#[test]
fn clean_fixture_has_no_findings() {
    let report = atsq_lint::run(&fixture("clean")).expect("scan");
    assert!(!report.is_failure(), "{:?}", report.findings);
    assert_eq!(report.files_scanned, 1);
}

#[test]
fn lock_hold_fixture_flags_nested_and_io_but_not_sequential() {
    let report = atsq_lint::run(&fixture("lock_hold")).expect("scan");
    let rules = rules_of(&report);
    assert_eq!(rules, ["lock-hold", "lock-hold"], "{:?}", report.findings);
    assert!(report.findings[0].message.contains("second lock"));
    assert!(report.findings[1].message.contains("blocking call"));
    // `fine_sequential` drops the first guard before taking the
    // second — nothing there may be flagged.
    assert!(report
        .findings
        .iter()
        .all(|f| !f.message.contains("fine_sequential")));
}

#[test]
fn ordering_fixture_flags_missing_comment_and_seqcst() {
    let report = atsq_lint::run(&fixture("ordering")).expect("scan");
    let rules = rules_of(&report);
    assert_eq!(
        rules,
        ["atomics-ordering", "atomics-ordering"],
        "{:?}",
        report.findings
    );
    assert!(report.findings[0].message.contains("lacks"));
    assert!(report.findings[1].message.contains("SeqCst"));
}

#[test]
fn panic_fixture_flags_unwrap_expect_panic_only() {
    let report = atsq_lint::run(&fixture("panic_hot")).expect("scan");
    let rules = rules_of(&report);
    assert_eq!(
        rules,
        ["panic-hot-path", "panic-hot-path", "panic-hot-path"],
        "{:?}",
        report.findings
    );
    // The invariant expect and the test-module unwrap pass.
    assert!(report
        .findings
        .iter()
        .all(|f| !f.message.contains("invariant")));
}

#[test]
fn coherence_fixture_flags_undocumented_multi_load() {
    let report = atsq_lint::run(&fixture("coherence")).expect("scan");
    let rules = rules_of(&report);
    assert_eq!(
        rules,
        ["atomic-snapshot-coherence"],
        "{:?}",
        report.findings
    );
    assert!(report.findings[0].message.contains("2 distinct atomics"));
}

#[test]
fn condvar_wait_fixture_flags_unlooped_wait_only() {
    let report = atsq_lint::run(&fixture("condvar_wait")).expect("scan");
    let rules = rules_of(&report);
    assert_eq!(rules, ["condvar-wait-must-loop"], "{:?}", report.findings);
    // Only `wait_once`'s if-guarded wait is flagged; the while-looped
    // and match-in-loop waits pass.
    assert_eq!(report.findings[0].line, 11, "{:?}", report.findings);
}

#[test]
fn unsafe_safety_fixture_flags_uncommented_sites_only() {
    let report = atsq_lint::run(&fixture("unsafe_safety")).expect("scan");
    let rules = rules_of(&report);
    assert_eq!(
        rules,
        ["unsafe-needs-safety-comment", "unsafe-needs-safety-comment"],
        "{:?}",
        report.findings
    );
    // The SAFETY-commented block and the `unsafe_code` attribute pass.
    assert!(report
        .findings
        .iter()
        .all(|f| !f.message.contains("deny") && !f.message.contains("SAFETY: callers")));
}

#[test]
fn allowlist_waives_findings() {
    let report = atsq_lint::run(&fixture("allowed")).expect("scan");
    assert!(
        !report.is_failure(),
        "waived finding resurfaced: {:?} / stale {:?}",
        report.findings,
        report.stale_allows
    );
}

#[test]
fn stale_allowlist_entry_fails_the_run() {
    let report = atsq_lint::run(&fixture("stale_allow")).expect("scan");
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.stale_allows.len(), 1);
    assert_eq!(report.stale_allows[0].rule, "panic-hot-path");
    assert!(report.is_failure());
}

#[test]
fn binary_exit_codes_match_report_status() {
    let bin = env!("CARGO_BIN_EXE_atsq-lint");
    let ok = std::process::Command::new(bin)
        .arg(fixture("clean"))
        .output()
        .expect("run atsq-lint");
    assert!(ok.status.success(), "{ok:?}");
    let bad = std::process::Command::new(bin)
        .arg(fixture("ordering"))
        .output()
        .expect("run atsq-lint");
    assert!(!bad.status.success());
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(stdout.contains("atomics-ordering"), "{stdout}");
    let stale = std::process::Command::new(bin)
        .arg(fixture("stale_allow"))
        .output()
        .expect("run atsq-lint");
    assert!(!stale.status.success());
    let stdout = String::from_utf8_lossy(&stale.stdout);
    assert!(stdout.contains("stale-allow"), "{stdout}");
}

/// The real workspace must scan clean with its committed allowlist —
/// the same invariant CI enforces, checked here so plain `cargo test`
/// catches regressions too.
#[test]
fn workspace_scans_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = atsq_lint::run(&root).expect("scan workspace");
    let msgs: Vec<String> = report
        .findings
        .iter()
        .map(|f| f.to_string())
        .chain(
            report
                .stale_allows
                .iter()
                .map(|e| format!("stale lint.allow:{}", e.line)),
        )
        .collect();
    assert!(!report.is_failure(), "{}", msgs.join("\n"));
}
