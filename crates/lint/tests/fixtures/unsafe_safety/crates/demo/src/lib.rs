//! Fixture for `unsafe-needs-safety-comment`: a commented block
//! (good), a bare block and a bare `unsafe impl` (both bad), and a
//! lint attribute whose `unsafe_code` token must not match.

#![deny(unsafe_code)]

pub fn read_slot(&self) -> u64 {
    // SAFETY: callers hold the slot's lock, so no write aliases this.
    unsafe { *self.cell.get() }
}

pub fn read_slot_bare(&self) -> u64 {
    unsafe { *self.cell.get() }
}

unsafe impl Send for Wrapper {}
