//! Positive fixture for `panic-hot-path`: this file's relative path
//! matches the hot-path list, so bare unwrap/expect/panic! are denied
//! while invariant-expects and test modules pass.

pub fn bad_unwrap(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn bad_expect(v: Option<u32>) -> u32 {
    v.expect("value present")
}

pub fn bad_panic(flag: bool) {
    if flag {
        panic!("boom");
    }
}

pub fn good_invariant(v: Option<u32>) -> u32 {
    v.expect("invariant: caller fills the slot before reading it")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        Some(1u32).unwrap();
    }
}
