//! Negative fixture: nothing here should trip any rule.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Counters {
    hits: AtomicU64,
}

impl Counters {
    pub fn record(&self) {
        // ordering: Relaxed — independent monotone tally.
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn hits(&self) -> u64 {
        // ordering: Relaxed — single advisory load.
        self.hits.load(Ordering::Relaxed)
    }
}

pub fn single_guard(m: &std::sync::Mutex<Vec<u32>>) -> usize {
    let g = m.lock().unwrap_or_else(|e| e.into_inner());
    g.len()
}
