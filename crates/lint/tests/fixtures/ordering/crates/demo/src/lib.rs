//! Fixture for `atomics-ordering`: one unannotated site, one SeqCst
//! site (denied even with a comment), and annotated sites that must
//! pass.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct S {
    x: AtomicU64,
    y: AtomicU64,
}

impl S {
    pub fn bad_unannotated(&self) {
        self.x.store(1, Ordering::Relaxed);
    }

    pub fn bad_seqcst(&self) {
        // ordering: a comment does not excuse SeqCst.
        self.y.store(1, Ordering::SeqCst);
    }

    pub fn good_same_line(&self) {
        self.x.store(2, Ordering::Relaxed); // ordering: Relaxed — advisory flag.
    }

    pub fn good_cluster(&self) -> (u64, u64) {
        // coherence: both values are independent tallies; a torn pair
        // is acceptable for this fixture.
        // ordering: Relaxed — advisory tallies, one comment for both.
        (
            self.x.load(Ordering::Relaxed),
            self.y.load(Ordering::Relaxed),
        )
    }
}
