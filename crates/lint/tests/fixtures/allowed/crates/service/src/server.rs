//! Fixture for allowlist waivers: the unwrap below is a hot-path
//! violation, waived by this fixture root's `lint.allow`.

pub fn waived_unwrap(v: Option<u32>) -> u32 {
    v.unwrap()
}
