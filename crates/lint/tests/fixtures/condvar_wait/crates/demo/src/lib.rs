//! Fixture for `condvar-wait-must-loop`: one wait guarded only by an
//! `if` (bad — a spurious or stolen wakeup sails past the check), one
//! in a `while` (good), and one nested in a `match` arm inside a
//! `loop` (good — the walk must climb past non-loop blocks, which is
//! the shape of the real registry wait site).

impl Demo {
    pub fn wait_once(&self) {
        let mut g = self.inner.lock();
        if g.pending == 0 {
            self.cond.wait(&mut g);
        }
        g.pending -= 1;
    }

    pub fn wait_in_while(&self) {
        let mut g = self.inner.lock();
        while g.pending == 0 {
            self.cond.wait(&mut g);
        }
        g.pending -= 1;
    }

    pub fn wait_in_match_in_loop(&self) -> bool {
        let mut g = self.inner.lock();
        loop {
            match g.state {
                State::Ready => return true,
                State::Closed => return false,
                State::Loading => {
                    self.cond.wait(&mut g);
                }
            }
        }
    }
}
