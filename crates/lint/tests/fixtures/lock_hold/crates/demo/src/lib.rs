//! Positive fixture for `lock-hold`: nested acquisition and blocking
//! I/O under a held guard, plus a negative case (drop before the
//! second lock).

pub struct Pair {
    a: std::sync::Mutex<u32>,
    b: std::sync::Mutex<u32>,
}

impl Pair {
    pub fn nested(&self) -> u32 {
        let ga = self.a.lock().unwrap_or_else(|e| e.into_inner());
        let gb = self.b.lock().unwrap_or_else(|e| e.into_inner());
        *ga + *gb
    }

    pub fn io_under_lock(&self) -> u32 {
        let ga = self.a.lock().unwrap_or_else(|e| e.into_inner());
        std::fs::write("/tmp/fixture", b"x").ok();
        *ga
    }

    pub fn fine_sequential(&self) -> u32 {
        let x = {
            let ga = self.a.lock().unwrap_or_else(|e| e.into_inner());
            *ga
        };
        let gb = self.b.lock().unwrap_or_else(|e| e.into_inner());
        x + *gb
    }
}
