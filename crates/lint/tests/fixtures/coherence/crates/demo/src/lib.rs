//! Positive fixture for `atomic-snapshot-coherence`: a function that
//! loads two distinct atomics with no `coherence:` comment. The
//! ordering comments keep rule 2 quiet so the only finding is rule 4.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct S {
    a: AtomicU64,
    b: AtomicU64,
}

impl S {
    pub fn torn_pair(&self) -> (u64, u64) {
        // ordering: Relaxed — advisory tallies.
        (
            self.a.load(Ordering::Relaxed),
            self.b.load(Ordering::Relaxed),
        )
    }
}
