//! Clean fixture paired with a stale `lint.allow` entry: the waiver
//! matches nothing, which must itself fail the run.

pub fn nothing_to_see() -> u32 {
    7
}
