//! A light English suffix stripper.
//!
//! Not a full Porter stemmer — tips need only enough normalization that
//! "hiking", "hikes" and "hiked" intern to the same activity id. The
//! rules are conservative: each strips one suffix, restores a silent
//! `e` where dropping it would leave an implausible consonant cluster,
//! and refuses to shrink a word below three characters (so "bus" and
//! "gas" survive untouched).

/// Stems one lowercase token.
pub fn stem(word: &str) -> String {
    let w = word;
    if w.chars().count() <= 3 || !w.is_ascii() {
        return w.to_string();
    }

    // Order matters: longest candidate suffix first.
    if let Some(base) = w.strip_suffix("ies") {
        // parties -> party, cities -> city
        return format!("{base}y");
    }
    if let Some(base) = w.strip_suffix("sses") {
        // classes -> class
        return format!("{base}ss");
    }
    if let Some(base) = strip_ing(w) {
        return base;
    }
    if let Some(base) = strip_ed(w) {
        return base;
    }
    if let Some(base) = w.strip_suffix("es") {
        // dishes -> dish, but keep -es off words ending in a bare
        // consonant+e like "makes" -> "make" (handled by the plain -s
        // rule below since we only strip -es after sibilants).
        if ends_with_sibilant(base) {
            return base.to_string();
        }
    }
    if let Some(base) = w.strip_suffix('s') {
        if !base.ends_with('s') && base.chars().count() >= 3 {
            // hikes -> hike, museums -> museum; "boss" untouched.
            return base.to_string();
        }
    }
    w.to_string()
}

/// Strips `-ing`, restoring doubled consonants and silent `e`.
fn strip_ing(w: &str) -> Option<String> {
    let base = w.strip_suffix("ing")?;
    if base.chars().count() < 2 || !base.chars().any(is_vowel) {
        return None; // "ring", "sing", "king": the "base" is no word
    }
    Some(undouble_or_restore(base))
}

/// Strips `-ed`, same restoration rules.
fn strip_ed(w: &str) -> Option<String> {
    let base = w.strip_suffix("ed")?;
    if base.chars().count() < 2 || !base.chars().any(is_vowel) {
        return None;
    }
    Some(undouble_or_restore(base))
}

/// `stopp` → `stop`, `hik` → `hike`, `walk` → `walk`.
fn undouble_or_restore(base: &str) -> String {
    let chars: Vec<char> = base.chars().collect();
    let n = chars.len();
    // Doubled final consonant: drop one (stopping -> stop).
    if n >= 2 && chars[n - 1] == chars[n - 2] && !is_vowel(chars[n - 1]) && chars[n - 1] != 'l' {
        return chars[..n - 1].iter().collect();
    }
    // Consonant-vowel-consonant with a short stem: restore the silent e
    // (hiking -> hik -> hike, dining -> din -> dine).
    if n >= 3
        && !is_vowel(chars[n - 1])
        && is_vowel(chars[n - 2])
        && !is_vowel(chars[n - 3])
        && n <= 4
    {
        let mut s: String = base.to_string();
        s.push('e');
        return s;
    }
    base.to_string()
}

fn ends_with_sibilant(base: &str) -> bool {
    base.ends_with('s')
        || base.ends_with('x')
        || base.ends_with('z')
        || base.ends_with("ch")
        || base.ends_with("sh")
}

fn is_vowel(c: char) -> bool {
    matches!(c, 'a' | 'e' | 'i' | 'o' | 'u' | 'y')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plurals_collapse() {
        assert_eq!(stem("hikes"), "hike");
        assert_eq!(stem("museums"), "museum");
        assert_eq!(stem("dishes"), "dish");
        assert_eq!(stem("parties"), "party");
        assert_eq!(stem("classes"), "class");
    }

    #[test]
    fn gerunds_collapse() {
        assert_eq!(stem("hiking"), "hike");
        assert_eq!(stem("shopping"), "shop");
        assert_eq!(stem("walking"), "walk");
        assert_eq!(stem("dining"), "dine");
        assert_eq!(stem("swimming"), "swim");
    }

    #[test]
    fn past_tense_collapses() {
        assert_eq!(stem("walked"), "walk");
        assert_eq!(stem("stopped"), "stop");
        assert_eq!(stem("visited"), "visit");
    }

    #[test]
    fn short_words_untouched() {
        for w in ["bus", "gas", "spa", "ski", "art", "zoo"] {
            assert_eq!(stem(w), w);
        }
    }

    #[test]
    fn deceptive_ing_words_untouched() {
        // The letters before "ing" are not a stem.
        for w in ["ring", "sing", "king", "thing", "spring"] {
            assert_eq!(stem(w), w, "{w}");
        }
    }

    #[test]
    fn double_s_words_untouched() {
        assert_eq!(stem("boss"), "boss");
        assert_eq!(stem("chess"), "chess");
    }

    #[test]
    fn ll_words_keep_double_l() {
        // "-ll" is usually part of the stem: rolling -> roll.
        assert_eq!(stem("rolling"), "roll");
        assert_eq!(stem("grilled"), "grill");
    }

    #[test]
    fn related_forms_share_a_stem() {
        for (a, b) in [
            ("hiking", "hikes"),
            ("shopping", "shopped"),
            ("walks", "walking"),
        ] {
            assert_eq!(stem(a), stem(b), "{a} vs {b}");
        }
    }

    #[test]
    fn non_ascii_passes_through() {
        assert_eq!(stem("café"), "café");
        assert_eq!(stem("über"), "über");
    }

    #[test]
    fn idempotent_on_its_own_output() {
        for w in [
            "hiking", "shopping", "parties", "museums", "walked", "dining", "classes",
        ] {
            let once = stem(w);
            assert_eq!(stem(&once), once, "{w} -> {once}");
        }
    }
}
