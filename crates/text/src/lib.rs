//! `atsq-text` — activity extraction from check-in tips.
//!
//! The paper's datasets attach activities to trajectory points by
//! mining "the words/phrases in the tips associated with the location"
//! (§VII-A), and explicitly treats the extraction method as orthogonal
//! to the indexing contribution. This crate is that orthogonal piece,
//! built so the import pipeline can run end-to-end from raw text:
//!
//! 1. [`mod@tokenize`] — lowercasing, alphanumeric token splitting,
//!    length/number filtering;
//! 2. [`stopwords`] — a compiled-in English stopword list plus custom
//!    additions;
//! 3. [`mod@stem`] — a light suffix stripper so "hiking" / "hikes" / "hike"
//!    collapse to one activity;
//! 4. [`phrases`] — corpus-level bigram mining so "coffee shop" becomes
//!    the single activity `coffee_shop` instead of two weak unigrams;
//! 5. [`extract`] — the [`extract::ActivityExtractor`] tying it
//!    together: fit on a corpus of tips, then map each tip to a small
//!    activity set.
//!
//! The output is plain `Vec<String>` activity tags; `atsq-io` interns
//! them into the workspace's frequency-ranked activity vocabulary.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod extract;
pub mod phrases;
pub mod stem;
pub mod stopwords;
pub mod tokenize;

pub use extract::{ActivityExtractor, ExtractorConfig};
pub use phrases::PhraseModel;
pub use stem::stem;
pub use stopwords::is_stopword;
pub use tokenize::tokenize;
