//! The end-to-end activity extractor.
//!
//! Fit once over all tips of a dataset (phrase mining and vocabulary
//! pruning are corpus-level), then map each tip to a small set of
//! activity tags:
//!
//! ```
//! use atsq_text::{ActivityExtractor, ExtractorConfig};
//!
//! let corpus = [
//!     "Great coffee shop, best espresso downtown",
//!     "quiet coffee shop for working",
//!     "espresso and croissants",
//!     "best sushi downtown",
//!     "sushi omakase was amazing",
//!     "try the espresso here",
//! ];
//! let ex = ActivityExtractor::fit(corpus.iter().copied(), &ExtractorConfig {
//!     min_activity_count: 2,
//!     phrase_min_count: 2,
//!     phrase_cohesion: 2.0,
//!     ..ExtractorConfig::default()
//! });
//! let acts = ex.extract("An espresso at my favourite coffee shop downtown");
//! assert!(acts.contains(&"espresso".to_string()));
//! assert!(acts.contains(&"coffee_shop".to_string()));
//! assert!(acts.contains(&"downtown".to_string()));
//! ```

use crate::phrases::PhraseModel;
use crate::stem::stem;
use crate::stopwords::is_stopword;
use crate::tokenize::tokenize;
use std::collections::{HashMap, HashSet};

/// Extraction tuning knobs.
#[derive(Debug, Clone)]
pub struct ExtractorConfig {
    /// Drop activities occurring fewer than this many times across the
    /// corpus (hapax noise: typos, names).
    pub min_activity_count: usize,
    /// Keep at most this many activities per tip (most frequent first —
    /// matching the paper's small per-point activity sets).
    pub max_activities_per_tip: usize,
    /// Phrase promotion: minimum bigram occurrences.
    pub phrase_min_count: usize,
    /// Phrase promotion: cohesion (lift) threshold.
    pub phrase_cohesion: f64,
    /// Extra stopwords (lowercase) on top of the compiled-in list.
    pub extra_stopwords: Vec<String>,
}

impl Default for ExtractorConfig {
    fn default() -> Self {
        ExtractorConfig {
            min_activity_count: 3,
            max_activities_per_tip: 5,
            phrase_min_count: 5,
            phrase_cohesion: 3.0,
            extra_stopwords: Vec::new(),
        }
    }
}

/// A fitted extractor: phrase model + pruned activity vocabulary.
#[derive(Debug, Clone)]
pub struct ActivityExtractor {
    config: ExtractorConfig,
    phrases: PhraseModel,
    /// Corpus frequency of every kept activity.
    vocabulary: HashMap<String, usize>,
    extra_stopwords: HashSet<String>,
}

impl ActivityExtractor {
    /// Fits the extractor over a corpus of raw tips.
    pub fn fit<'a>(tips: impl IntoIterator<Item = &'a str>, config: &ExtractorConfig) -> Self {
        let extra: HashSet<String> = config.extra_stopwords.iter().cloned().collect();

        // Pass 1: tokenize + filter + stem every tip.
        let streams: Vec<Vec<String>> = tips
            .into_iter()
            .map(|tip| Self::normalize(tip, &extra))
            .collect();

        // Pass 2: mine phrases over the normalized streams.
        let phrases = PhraseModel::fit(&streams, config.phrase_min_count, config.phrase_cohesion);

        // Pass 3: count the resulting activity tags and prune rares.
        let mut counts: HashMap<String, usize> = HashMap::new();
        for stream in &streams {
            for tag in phrases.apply(stream) {
                *counts.entry(tag).or_default() += 1;
            }
        }
        counts.retain(|_, &mut c| c >= config.min_activity_count);

        ActivityExtractor {
            config: config.clone(),
            phrases,
            vocabulary: counts,
            extra_stopwords: extra,
        }
    }

    fn normalize(tip: &str, extra_stopwords: &HashSet<String>) -> Vec<String> {
        tokenize(tip)
            .into_iter()
            .filter(|t| !is_stopword(t) && !extra_stopwords.contains(t))
            .map(|t| stem(&t))
            .collect()
    }

    /// Extracts the activity tags of one tip: normalized, phrased,
    /// restricted to the fitted vocabulary, deduplicated, capped at
    /// `max_activities_per_tip` (ties broken alphabetically so the
    /// output is deterministic).
    pub fn extract(&self, tip: &str) -> Vec<String> {
        let stream = Self::normalize(tip, &self.extra_stopwords);
        let mut tags: Vec<String> = self
            .phrases
            .apply(&stream)
            .into_iter()
            .filter(|t| self.vocabulary.contains_key(t))
            .collect();
        tags.sort_unstable();
        tags.dedup();
        if tags.len() > self.config.max_activities_per_tip {
            // Keep the corpus-frequent tags: they are the ones other
            // trajectories can actually be matched on.
            tags.sort_by(|a, b| {
                self.vocabulary[b]
                    .cmp(&self.vocabulary[a])
                    .then_with(|| a.cmp(b))
            });
            tags.truncate(self.config.max_activities_per_tip);
            tags.sort_unstable();
        }
        tags
    }

    /// Reassembles a fitted extractor from stored parts (persistence
    /// path; see `atsq-io`'s extractor snapshot format).
    pub fn from_parts(
        config: ExtractorConfig,
        phrases: PhraseModel,
        vocabulary: impl IntoIterator<Item = (String, usize)>,
    ) -> Self {
        let extra: HashSet<String> = config.extra_stopwords.iter().cloned().collect();
        ActivityExtractor {
            config,
            phrases,
            vocabulary: vocabulary.into_iter().collect(),
            extra_stopwords: extra,
        }
    }

    /// The configuration the extractor was fitted with.
    pub fn config(&self) -> &ExtractorConfig {
        &self.config
    }

    /// The fitted vocabulary with corpus frequencies, most frequent
    /// first (ties alphabetical).
    pub fn vocabulary(&self) -> Vec<(&str, usize)> {
        let mut v: Vec<(&str, usize)> = self
            .vocabulary
            .iter()
            .map(|(t, &c)| (t.as_str(), c))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        v
    }

    /// Number of distinct activities kept.
    pub fn vocabulary_len(&self) -> usize {
        self.vocabulary.len()
    }

    /// The fitted phrase model.
    pub fn phrases(&self) -> &PhraseModel {
        &self.phrases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<&'static str> {
        vec![
            "Great coffee shop, best espresso in town!",
            "the coffee shop has amazing espresso",
            "espresso and live music tonight",
            "live music every friday night",
            "live music and good espresso",
            "hiking trail starts here, great hiking",
            "went hiking with friends",
            "the sushi omakase tonight",
            "ordered sushi for lunch, amazing sushi",
            "xyzzy", // hapax noise
        ]
    }

    fn extractor() -> ActivityExtractor {
        ActivityExtractor::fit(
            corpus(),
            &ExtractorConfig {
                min_activity_count: 2,
                phrase_min_count: 2,
                phrase_cohesion: 2.0,
                ..ExtractorConfig::default()
            },
        )
    }

    #[test]
    fn fit_builds_a_pruned_vocabulary() {
        let ex = extractor();
        let vocab: Vec<&str> = ex.vocabulary().into_iter().map(|(t, _)| t).collect();
        assert!(vocab.contains(&"espresso"));
        assert!(vocab.contains(&"hike")); // stemmed "hiking"
        assert!(vocab.contains(&"sushi"));
        assert!(!vocab.contains(&"xyzzy"), "hapax must be pruned");
        assert!(!vocab.contains(&"great"), "stopwords never enter");
    }

    #[test]
    fn phrases_become_single_activities() {
        let ex = extractor();
        assert!(ex.phrases().contains("coffee", "shop"));
        let acts = ex.extract("a coffee shop with espresso");
        assert!(acts.contains(&"coffee_shop".to_string()), "{acts:?}");
        assert!(acts.contains(&"espresso".to_string()));
    }

    #[test]
    fn extraction_is_deterministic_and_deduplicated() {
        let ex = extractor();
        let a = ex.extract("espresso espresso sushi espresso");
        let b = ex.extract("sushi and espresso");
        assert_eq!(a, b);
        assert_eq!(a, vec!["espresso", "sushi"]);
    }

    #[test]
    fn out_of_vocabulary_tips_yield_nothing() {
        let ex = extractor();
        assert!(ex.extract("quantum chromodynamics seminar").is_empty());
        assert!(ex.extract("").is_empty());
        assert!(ex.extract("!!! 42 ???").is_empty());
    }

    #[test]
    fn per_tip_cap_keeps_frequent_tags() {
        let mut corpus: Vec<String> = Vec::new();
        // 8 activities with distinct frequencies.
        for (i, name) in ["alpha", "bravo", "carol", "delta", "echoes", "foxtrot"]
            .iter()
            .enumerate()
        {
            for _ in 0..(2 + i) {
                corpus.push(format!("{name} festival"));
            }
        }
        let ex = ActivityExtractor::fit(
            corpus.iter().map(String::as_str),
            &ExtractorConfig {
                min_activity_count: 2,
                max_activities_per_tip: 2,
                phrase_min_count: 1000, // no phrases
                ..ExtractorConfig::default()
            },
        );
        let acts = ex.extract("alpha bravo carol delta echoes foxtrot");
        assert_eq!(acts.len(), 2);
        // "foxtrot" (7 occurrences) and "echoes"->"echoe"? no — stem of
        // "echoes" is "echo"+... whatever the stem, the two most
        // frequent tags win; "festival" is even more frequent but not
        // in this tip.
        assert!(acts.iter().all(|a| !a.is_empty()));
    }

    #[test]
    fn extra_stopwords_are_respected() {
        let ex = ActivityExtractor::fit(
            corpus(),
            &ExtractorConfig {
                min_activity_count: 2,
                phrase_min_count: 2,
                phrase_cohesion: 2.0,
                extra_stopwords: vec!["espresso".into()],
                ..ExtractorConfig::default()
            },
        );
        assert!(ex.extract("best espresso").is_empty());
    }
}
