//! Tip tokenization.
//!
//! Tips are short, noisy user text ("Best cappuccino in town!!1",
//! "try the NY-style pizza 🍕"). The tokenizer lowercases, splits on
//! anything that is not alphanumeric (keeping intra-word apostrophes
//! out entirely: `don't` → `don`, `t`, and the length filter then
//! drops the orphan `t`), and filters pure numbers and very short
//! tokens.

/// Minimum token length kept by [`tokenize`].
pub const MIN_TOKEN_LEN: usize = 2;

/// Maximum token length kept (guards against pathological input).
pub const MAX_TOKEN_LEN: usize = 32;

/// Splits a tip into normalized tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            for lower in ch.to_lowercase() {
                current.push(lower);
            }
        } else if !current.is_empty() {
            push_token(&mut out, std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        push_token(&mut out, current);
    }
    out
}

fn push_token(out: &mut Vec<String>, token: String) {
    let len = token.chars().count();
    if !(MIN_TOKEN_LEN..=MAX_TOKEN_LEN).contains(&len) {
        return;
    }
    if token.chars().all(|c| c.is_ascii_digit()) {
        return; // bare numbers carry no activity signal
    }
    out.push(token);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_and_lowercases() {
        assert_eq!(
            tokenize("Best Cappuccino in Town"),
            vec!["best", "cappuccino", "in", "town"]
        );
    }

    #[test]
    fn punctuation_and_emoji_are_separators() {
        assert_eq!(
            tokenize("try the NY-style pizza 🍕!!"),
            vec!["try", "the", "ny", "style", "pizza"]
        );
    }

    #[test]
    fn numbers_are_dropped_but_alphanumerics_kept() {
        assert_eq!(
            tokenize("open 24 7 at pier39"),
            vec!["open", "at", "pier39"]
        );
    }

    #[test]
    fn short_tokens_are_dropped() {
        assert_eq!(tokenize("a b c ok"), vec!["ok"]);
    }

    #[test]
    fn empty_and_symbol_only_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! ... ???").is_empty());
    }

    #[test]
    fn unicode_words_survive() {
        assert_eq!(tokenize("CAFÉ Über"), vec!["café", "über"]);
    }

    #[test]
    fn overlong_tokens_are_dropped() {
        let long = "x".repeat(MAX_TOKEN_LEN + 1);
        assert!(tokenize(&long).is_empty());
        let ok = "x".repeat(MAX_TOKEN_LEN);
        assert_eq!(tokenize(&ok), vec![ok]);
    }
}
