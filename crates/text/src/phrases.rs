//! Corpus-level phrase (bigram) mining.
//!
//! "Coffee shop", "art gallery" and "live music" are single activities;
//! splitting them into unigrams both loses meaning ("live"? "shop"?)
//! and inflates the vocabulary with weak terms. The model counts
//! adjacent token pairs over the whole corpus and promotes pairs that
//! are frequent *and* cohesive into phrase tokens `first_second`.
//!
//! Cohesion is a simplified pointwise-mutual-information test: a pair
//! is promoted when it occurs at least `min_count` times and at least
//! `cohesion` times more often than chance given its parts.

use std::collections::HashMap;

/// A fitted bigram model.
#[derive(Debug, Clone, Default)]
pub struct PhraseModel {
    phrases: HashMap<(String, String), String>,
}

impl PhraseModel {
    /// Fits the model over token streams (one stream per tip).
    ///
    /// `min_count` is the absolute occurrence floor; `cohesion` the
    /// lift floor (how many times more frequent than independence).
    pub fn fit<I, T>(corpus: I, min_count: usize, cohesion: f64) -> Self
    where
        I: IntoIterator<Item = T>,
        T: AsRef<[String]>,
    {
        let mut unigram: HashMap<&str, usize> = HashMap::new();
        let mut bigram: HashMap<(&str, &str), usize> = HashMap::new();
        let mut total_tokens = 0usize;

        // Two passes would borrow-conflict with the map keys; collect
        // the streams once.
        let streams: Vec<T> = corpus.into_iter().collect();
        for stream in &streams {
            let tokens = stream.as_ref();
            total_tokens += tokens.len();
            for t in tokens {
                *unigram.entry(t.as_str()).or_default() += 1;
            }
            for w in tokens.windows(2) {
                *bigram.entry((w[0].as_str(), w[1].as_str())).or_default() += 1;
            }
        }

        let n = total_tokens.max(1) as f64;
        let mut phrases = HashMap::new();
        for (&(a, b), &count) in &bigram {
            if count < min_count || a == b {
                continue;
            }
            let expected = (unigram[a] as f64 / n) * (unigram[b] as f64 / n) * n;
            if count as f64 >= cohesion * expected {
                phrases.insert((a.to_string(), b.to_string()), format!("{a}_{b}"));
            }
        }
        PhraseModel { phrases }
    }

    /// Rebuilds a model from stored phrase pairs (persistence path).
    pub fn from_pairs(pairs: impl IntoIterator<Item = (String, String)>) -> Self {
        PhraseModel {
            phrases: pairs
                .into_iter()
                .map(|(a, b)| {
                    let joined = format!("{a}_{b}");
                    ((a, b), joined)
                })
                .collect(),
        }
    }

    /// Iterates the promoted phrase pairs in an unspecified order.
    pub fn pairs(&self) -> impl Iterator<Item = (&str, &str)> {
        self.phrases.keys().map(|(a, b)| (a.as_str(), b.as_str()))
    }

    /// Number of promoted phrases.
    pub fn len(&self) -> usize {
        self.phrases.len()
    }

    /// Whether no phrase was promoted.
    pub fn is_empty(&self) -> bool {
        self.phrases.is_empty()
    }

    /// Whether `(a, b)` is a promoted phrase.
    pub fn contains(&self, a: &str, b: &str) -> bool {
        self.phrases.contains_key(&(a.to_string(), b.to_string()))
    }

    /// Rewrites a token stream, greedily merging promoted bigrams
    /// left-to-right (a token joins at most one phrase).
    pub fn apply(&self, tokens: &[String]) -> Vec<String> {
        let mut out = Vec::with_capacity(tokens.len());
        let mut i = 0;
        while i < tokens.len() {
            if i + 1 < tokens.len() {
                if let Some(joined) = self
                    .phrases
                    .get(&(tokens[i].clone(), tokens[i + 1].clone()))
                {
                    out.push(joined.clone());
                    i += 2;
                    continue;
                }
            }
            out.push(tokens[i].clone());
            i += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    fn corpus() -> Vec<Vec<String>> {
        let mut c = Vec::new();
        for _ in 0..10 {
            c.push(toks("coffee shop downtown"));
            c.push(toks("art gallery opening"));
        }
        // "coffee" and "art" also appear alone, so the pairs are
        // cohesive but not the only context.
        for _ in 0..3 {
            c.push(toks("coffee beans"));
            c.push(toks("street art"));
        }
        c
    }

    #[test]
    fn frequent_cohesive_pairs_are_promoted() {
        let m = PhraseModel::fit(corpus(), 5, 2.0);
        assert!(m.contains("coffee", "shop"));
        assert!(m.contains("art", "gallery"));
        assert!(!m.contains("shop", "downtown") || m.len() >= 2);
    }

    #[test]
    fn rare_pairs_are_not_promoted() {
        let m = PhraseModel::fit(corpus(), 5, 2.0);
        assert!(!m.contains("coffee", "beans")); // count 3 < 5
    }

    #[test]
    fn apply_merges_greedily() {
        let m = PhraseModel::fit(corpus(), 5, 2.0);
        assert_eq!(
            m.apply(&toks("coffee shop downtown")),
            vec!["coffee_shop", "downtown"]
        );
        // Unmatched tokens pass through.
        assert_eq!(
            m.apply(&toks("great coffee beans")),
            toks("great coffee beans")
        );
    }

    #[test]
    fn apply_consumes_each_token_once() {
        // With phrases (a,b) and (b,c), "a b c" must become "a_b c",
        // not "a_b b_c".
        let mut c = Vec::new();
        for _ in 0..10 {
            c.push(toks("live music venue"));
        }
        let m = PhraseModel::fit(c, 5, 1.5);
        assert!(m.contains("live", "music"));
        assert!(m.contains("music", "venue"));
        assert_eq!(
            m.apply(&toks("live music venue")),
            vec!["live_music", "venue"]
        );
    }

    #[test]
    fn empty_corpus_yields_empty_model() {
        let m = PhraseModel::fit(Vec::<Vec<String>>::new(), 2, 2.0);
        assert!(m.is_empty());
        assert_eq!(m.apply(&toks("anything at all")), toks("anything at all"));
    }

    #[test]
    fn repeated_token_pairs_are_ignored() {
        let mut c = Vec::new();
        for _ in 0..10 {
            c.push(toks("very very good"));
        }
        let m = PhraseModel::fit(c, 5, 1.0);
        assert!(!m.contains("very", "very"));
    }
}
