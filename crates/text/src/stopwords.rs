//! English stopwords for tip mining.
//!
//! The list is deliberately biased for check-in tips: besides the usual
//! function words it drops rating/filler vocabulary ("best", "great",
//! "really") that says how much the user liked a place rather than
//! *what they did* there.

/// Compiled-in stopword list. Sorted; [`is_stopword`] binary-searches.
pub const STOPWORDS: &[&str] = &[
    "about", "above", "after", "again", "all", "also", "always", "am", "an", "and", "any", "are",
    "as", "at", "awesome", "bad", "be", "because", "been", "before", "being", "below", "best",
    "better", "between", "big", "both", "but", "by", "came", "can", "cannot", "come", "could",
    "did", "do", "does", "doing", "down", "during", "each", "ever", "every", "few", "for", "from",
    "further", "get", "go", "goes", "going", "good", "got", "great", "had", "has", "have",
    "having", "he", "her", "here", "hers", "him", "his", "how", "if", "in", "into", "is", "it",
    "its", "just", "like", "little", "lot", "love", "loved", "make", "many", "me", "more", "most",
    "much", "must", "my", "never", "new", "nice", "no", "not", "now", "of", "off", "on", "once",
    "only", "or", "other", "our", "out", "over", "own", "place", "pretty", "really", "same", "she",
    "should", "so", "some", "spot", "such", "sure", "than", "that", "the", "their", "them", "then",
    "there", "these", "they", "this", "those", "through", "time", "to", "too", "try", "under",
    "until", "up", "us", "very", "was", "we", "well", "went", "were", "what", "when", "where",
    "which", "while", "who", "why", "will", "with", "worst", "would", "you", "your",
];

/// Whether `word` (already lowercased) is a stopword.
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_and_deduplicated() {
        for w in STOPWORDS.windows(2) {
            assert!(w[0] < w[1], "{} >= {}", w[0], w[1]);
        }
    }

    #[test]
    fn common_words_are_stopwords() {
        for w in ["the", "and", "best", "really", "place"] {
            assert!(is_stopword(w), "{w}");
        }
    }

    #[test]
    fn activity_words_are_not() {
        for w in ["coffee", "museum", "hiking", "pizza", "jazz"] {
            assert!(!is_stopword(w), "{w}");
        }
    }
}
