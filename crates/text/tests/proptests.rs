//! Property tests for the text pipeline: the tokenizer, stemmer,
//! phrase model and extractor must hold their invariants on arbitrary
//! input, not just English.

use atsq_text::{stem, tokenize, ActivityExtractor, ExtractorConfig, PhraseModel};
use proptest::prelude::*;

proptest! {
    /// Tokens are lowercase alphanumerics within the length bounds,
    /// regardless of input.
    #[test]
    fn tokenize_output_is_normalized(text in ".{0,200}") {
        for t in tokenize(&text) {
            prop_assert!(!t.is_empty());
            let n = t.chars().count();
            prop_assert!((2..=32).contains(&n), "bad length: {t}");
            prop_assert!(t.chars().all(char::is_alphanumeric), "bad char in {t}");
            // Fully normalized: re-tokenizing a token is the identity.
            // (Stronger than "no uppercase": some letters, e.g. ℋ,
            // have no lowercase mapping and legitimately stay as-is.)
            prop_assert_eq!(tokenize(&t), vec![t.clone()], "not idempotent");
            prop_assert!(!t.chars().all(|c| c.is_ascii_digit()), "pure number {t}");
        }
    }

    /// Tokenization is insensitive to surrounding whitespace and case.
    #[test]
    fn tokenize_case_and_space_insensitive(words in prop::collection::vec("[a-z]{2,8}", 0..8)) {
        let plain = words.join(" ");
        let shouty = words.join("  ").to_uppercase();
        prop_assert_eq!(tokenize(&plain), tokenize(&format!("  {shouty} ")));
    }

    /// Stemming is idempotent and never produces the empty string.
    #[test]
    fn stem_is_idempotent(word in "[a-z]{1,16}") {
        let once = stem(&word);
        prop_assert!(!once.is_empty());
        prop_assert_eq!(stem(&once), once.clone(), "word {} -> {}", word, once);
        // A stem never grows by more than the restored silent 'e'.
        prop_assert!(once.len() <= word.len() + 1);
    }

    /// Applying a phrase model never invents tokens: every output token
    /// is either an input token or the join of two adjacent inputs.
    #[test]
    fn phrase_apply_is_conservative(
        streams in prop::collection::vec(prop::collection::vec("[a-d]{2,3}", 1..6), 1..12),
    ) {
        let model = PhraseModel::fit(&streams, 2, 1.0);
        for stream in &streams {
            let out = model.apply(stream);
            prop_assert!(out.len() <= stream.len());
            let mut i = 0;
            for tok in &out {
                if let Some((a, b)) = tok.split_once('_') {
                    prop_assert_eq!(a, stream[i].as_str());
                    prop_assert_eq!(b, stream[i + 1].as_str());
                    i += 2;
                } else {
                    prop_assert_eq!(tok, &stream[i]);
                    i += 1;
                }
            }
            prop_assert_eq!(i, stream.len());
        }
    }

    /// Extraction output is sorted, deduplicated, capped, and drawn
    /// from the fitted vocabulary.
    #[test]
    fn extract_output_is_well_formed(
        corpus in prop::collection::vec(".{0,60}", 1..20),
        probe in ".{0,60}",
        cap in 1usize..6,
    ) {
        let ex = ActivityExtractor::fit(
            corpus.iter().map(String::as_str),
            &ExtractorConfig {
                min_activity_count: 1,
                max_activities_per_tip: cap,
                phrase_min_count: 2,
                phrase_cohesion: 1.5,
                ..ExtractorConfig::default()
            },
        );
        let vocab: std::collections::HashSet<&str> =
            ex.vocabulary().into_iter().map(|(t, _)| t).collect();
        for tip in corpus.iter().chain(std::iter::once(&probe)) {
            let acts = ex.extract(tip);
            prop_assert!(acts.len() <= cap);
            let mut sorted = acts.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(&sorted, &acts, "unsorted or duplicated");
            for a in &acts {
                prop_assert!(vocab.contains(a.as_str()), "{a} not in vocabulary");
            }
        }
    }

    /// Every activity extracted from a corpus tip occurs at least
    /// `min_activity_count` times corpus-wide.
    #[test]
    fn vocabulary_respects_min_count(
        corpus in prop::collection::vec("[a-c]{2,3}( [a-c]{2,3}){0,4}", 1..15),
        min_count in 1usize..4,
    ) {
        let ex = ActivityExtractor::fit(
            corpus.iter().map(String::as_str),
            &ExtractorConfig {
                min_activity_count: min_count,
                phrase_min_count: 100, // unigrams only: counts are exact
                ..ExtractorConfig::default()
            },
        );
        for (_, count) in ex.vocabulary() {
            prop_assert!(count >= min_count);
        }
    }
}
