//! The city registry: tenant state machine, single-flight loading,
//! leases, and memory-budgeted eviction.

use atsq_core::profile::{EngineCounters, Profiled};
use atsq_core::Engine;
use atsq_model::atomic::{AtomicU64, Ordering};
use atsq_model::sync::{Condvar, Mutex};
use atsq_types::Dataset;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Validated name of a hosted city (tenant).
///
/// Names double as wire-protocol identifiers and on-disk directory
/// names, so they are restricted to `[A-Za-z0-9_-]`, non-empty, at most
/// 64 bytes. This keeps `--cities` directory scans and `city` fields in
/// requests free of path tricks.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CityId(String);

impl CityId {
    /// Name of the implicit city used when a request carries no `city`
    /// field and by single-city serving.
    pub const DEFAULT: &'static str = "default";

    /// Validates and wraps a city name.
    pub fn new(name: impl Into<String>) -> Result<CityId, TenantError> {
        let name = name.into();
        let ok = !name.is_empty()
            && name.len() <= 64
            && name
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_');
        if ok {
            Ok(CityId(name))
        } else {
            Err(TenantError::InvalidCityName(name))
        }
    }

    /// The default city id (see [`CityId::DEFAULT`]).
    pub fn default_city() -> CityId {
        CityId(Self::DEFAULT.to_owned())
    }

    /// The city name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for CityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Lifecycle state of a hosted city.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantState {
    /// Registered but never loaded.
    Unloaded,
    /// One thread is loading the dataset and building/loading the
    /// engine; concurrent requests wait.
    Loading,
    /// Dataset and engine are resident; queries are served.
    Ready,
    /// Was resident, then dropped by the budget accountant or an
    /// explicit unload. The next query reloads it.
    Evicted,
}

impl TenantState {
    /// Stable lower-case name (used in wire replies and metrics).
    pub fn name(&self) -> &'static str {
        match self {
            TenantState::Unloaded => "unloaded",
            TenantState::Loading => "loading",
            TenantState::Ready => "ready",
            TenantState::Evicted => "evicted",
        }
    }

    /// Numeric code for the `atsq_city_state` metric gauge
    /// (0 = unloaded, 1 = loading, 2 = ready, 3 = evicted).
    pub fn code(&self) -> u64 {
        match self {
            TenantState::Unloaded => 0,
            TenantState::Loading => 1,
            TenantState::Ready => 2,
            TenantState::Evicted => 3,
        }
    }
}

/// What a factory produces: the resident pieces of one city.
pub struct LoadedCity {
    /// The city's dataset (queries decode activity names against it).
    pub dataset: Arc<Dataset>,
    /// The serving engine built over that dataset.
    pub engine: Arc<Engine>,
    /// Whether the engine came from a validated index snapshot rather
    /// than a fresh build.
    pub loaded_from_snapshot: bool,
}

/// Builds (or rebuilds) one city's dataset + engine. Factories run with
/// **no registry lock held** and may block on disk I/O and index
/// construction; errors are strings so disk- and build-layer failures
/// both flow through unchanged.
pub type EngineFactory = Arc<dyn Fn() -> Result<LoadedCity, String> + Send + Sync>;

/// Errors from registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TenantError {
    /// The name failed [`CityId::new`] validation.
    InvalidCityName(String),
    /// No city with this id is registered.
    UnknownCity(CityId),
    /// A city with this id is already registered.
    DuplicateCity(CityId),
    /// The factory failed; the city is back to a loadable state.
    LoadFailed {
        /// Which city failed to load.
        city: CityId,
        /// The factory's error.
        reason: String,
    },
    /// The operation needs a quiescent city but requests are in flight
    /// (or a load is running).
    CityBusy {
        /// Which city is busy.
        city: CityId,
        /// In-flight request count at the time of the check.
        inflight: u64,
    },
    /// The city is pinned (single-city serving) and cannot be unloaded.
    Pinned(CityId),
    /// Filesystem error while scanning a cities directory.
    Io(String),
}

impl fmt::Display for TenantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TenantError::InvalidCityName(name) => {
                write!(f, "invalid city name `{name}` (want [A-Za-z0-9_-]{{1,64}})")
            }
            TenantError::UnknownCity(city) => write!(f, "unknown city `{city}`"),
            TenantError::DuplicateCity(city) => write!(f, "city `{city}` already registered"),
            TenantError::LoadFailed { city, reason } => {
                write!(f, "city `{city}` failed to load: {reason}")
            }
            TenantError::CityBusy { city, inflight } => {
                write!(f, "city `{city}` is busy ({inflight} requests in flight)")
            }
            TenantError::Pinned(city) => {
                write!(f, "city `{city}` is pinned and cannot be unloaded")
            }
            TenantError::Io(msg) => write!(f, "cities directory error: {msg}"),
        }
    }
}

impl std::error::Error for TenantError {}

/// RAII handle pinning one city resident for the duration of a request.
///
/// Holding a lease guarantees the engine and dataset `Arc`s stay valid
/// and — because the eviction pass skips cities with a non-zero lease
/// count — that the city is not evicted mid-request. Leases are created
/// only while the registry lock is held; dropping one is lock-free.
pub struct CityLease {
    city: CityId,
    dataset: Arc<Dataset>,
    engine: Arc<Engine>,
    inflight: Arc<AtomicU64>,
    cold: bool,
}

impl CityLease {
    /// The leased city.
    pub fn city(&self) -> &CityId {
        &self.city
    }

    /// The city's dataset.
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.dataset
    }

    /// The city's engine.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Whether *this* resolve performed the load (cold start) rather
    /// than finding the city already resident.
    pub fn cold(&self) -> bool {
        self.cold
    }

    /// Current in-flight count for the city, including this lease.
    pub fn inflight_now(&self) -> u64 {
        // ordering: Relaxed — advisory gauge read for admission control;
        // the eviction-correctness read happens under the registry lock.
        self.inflight.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for CityLease {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CityLease")
            .field("city", &self.city)
            .field("cold", &self.cold)
            .finish_non_exhaustive()
    }
}

impl Drop for CityLease {
    fn drop(&mut self) {
        // ordering: Relaxed — leases are created under the registry
        // lock, so the eviction pass (which also holds the lock) can
        // never miss a *new* lease; a stale non-zero read merely defers
        // eviction by one pass, which is safe.
        self.inflight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Point-in-time description of one hosted city (for the `cities` admin
/// op and the `atsq_city_*` metric families).
#[derive(Debug, Clone)]
pub struct CityInfo {
    /// City id.
    pub city: CityId,
    /// Lifecycle state.
    pub state: TenantState,
    /// Whether the city is exempt from eviction and unload.
    pub pinned: bool,
    /// Estimated resident bytes (dataset + index components) while
    /// `Ready`, zero otherwise.
    pub resident_bytes: u64,
    /// Requests currently holding a lease on the city.
    pub inflight: u64,
    /// Queries routed to the city since registration.
    pub queries: u64,
    /// Completed loads (cold starts) since registration.
    pub loads: u64,
    /// Budget evictions since registration (explicit unloads are not
    /// counted here).
    pub evictions: u64,
    /// Total wall-clock milliseconds spent loading the city.
    pub load_ms_total: f64,
    /// Whether the most recent load came from an index snapshot.
    pub loaded_from_snapshot: bool,
    /// Engine work counters, cumulative across evict/reload cycles.
    pub counters: EngineCounters,
    /// The most recent load failure, if the last load attempt failed.
    pub last_error: Option<String>,
}

struct Entry {
    factory: EngineFactory,
    state: TenantState,
    pinned: bool,
    dataset: Option<Arc<Dataset>>,
    engine: Option<Arc<Engine>>,
    inflight: Arc<AtomicU64>,
    last_query: Instant,
    resident_bytes: u64,
    queries: u64,
    loads: u64,
    evictions: u64,
    load_nanos_total: u64,
    loaded_from_snapshot: bool,
    counters_base: EngineCounters,
    last_error: Option<String>,
}

impl Entry {
    fn new(factory: EngineFactory, pinned: bool) -> Entry {
        Entry {
            factory,
            state: TenantState::Unloaded,
            pinned,
            dataset: None,
            engine: None,
            inflight: Arc::new(AtomicU64::new(0)),
            last_query: Instant::now(),
            resident_bytes: 0,
            queries: 0,
            loads: 0,
            evictions: 0,
            load_nanos_total: 0,
            loaded_from_snapshot: false,
            counters_base: EngineCounters::default(),
            last_error: None,
        }
    }

    /// Engine counters including work folded in from evicted engines.
    fn cumulative_counters(&self) -> EngineCounters {
        match self.engine.as_ref() {
            Some(engine) => EngineCounters::sum([self.counters_base, engine.counters()]),
            None => self.counters_base,
        }
    }

    /// Folds the live engine's counters into the base (called before
    /// the engine is dropped on evict/unload).
    fn fold_counters(&mut self) {
        self.counters_base = self.cumulative_counters();
    }
}

struct Inner {
    entries: HashMap<CityId, Entry>,
}

/// An engine dropped by eviction or unload; the `Arc`s are released
/// only after the registry lock is, so a potentially large drop never
/// runs under the lock.
struct Victim {
    city: CityId,
    _dataset: Option<Arc<Dataset>>,
    _engine: Option<Arc<Engine>>,
}

type EvictHook = Box<dyn Fn(&CityId) + Send + Sync>;

/// Hosts many named cities (dataset + engine pairs) in one process.
///
/// See the crate docs for the lifecycle; the key invariants are:
///
/// 1. **Single flight** — at most one factory invocation per city is in
///    progress; concurrent [`CityRegistry::resolve`] calls for a
///    `Loading` city block on a condition variable.
/// 2. **Leases pin** — the eviction pass never selects a city whose
///    lease count is non-zero, and leases are only created under the
///    registry lock.
/// 3. **No I/O under the lock** — factories and engine drops run with
///    the registry lock released.
pub struct CityRegistry {
    inner: Mutex<Inner>,
    cond: Condvar,
    budget_bytes: Option<u64>,
    default_city: CityId,
    evict_hook: Mutex<Option<EvictHook>>,
}

impl CityRegistry {
    /// Creates an empty registry. `memory_budget` is the estimated
    /// resident-byte ceiling across all `Ready` cities (`None` = no
    /// eviction).
    pub fn new(default_city: CityId, memory_budget: Option<u64>) -> CityRegistry {
        let inner = Mutex::new(Inner {
            entries: HashMap::new(),
        });
        inner.set_name("tenant.registry");
        let evict_hook: Mutex<Option<EvictHook>> = Mutex::new(None);
        evict_hook.set_name("tenant.evict_hook");
        CityRegistry {
            inner,
            cond: Condvar::new(),
            budget_bytes: memory_budget,
            default_city,
            evict_hook,
        }
    }

    /// One-entry registry for single-city serving: the city is named
    /// [`CityId::DEFAULT`], immediately `Ready`, pinned (never evicted
    /// or unloaded), and has no memory budget.
    pub fn single(dataset: Arc<Dataset>, engine: Arc<Engine>) -> CityRegistry {
        let registry = CityRegistry::new(CityId::default_city(), None);
        registry
            .add_resident(CityId::default_city(), dataset, engine, true)
            .expect("fresh registry cannot hold a duplicate");
        registry
    }

    /// Registers a lazily-loaded city. The factory runs on first query
    /// (and again after eviction/unload).
    pub fn add_city(&self, city: CityId, factory: EngineFactory) -> Result<(), TenantError> {
        let mut inner = self.inner.lock();
        if inner.entries.contains_key(&city) {
            return Err(TenantError::DuplicateCity(city));
        }
        inner.entries.insert(city, Entry::new(factory, false));
        Ok(())
    }

    /// Registers a city that is already resident (state `Ready`). The
    /// reload factory clones the given `Arc`s, so an unpinned resident
    /// city survives unload-then-query cycles.
    pub fn add_resident(
        &self,
        city: CityId,
        dataset: Arc<Dataset>,
        engine: Arc<Engine>,
        pinned: bool,
    ) -> Result<(), TenantError> {
        let bytes = approx_city_bytes(&dataset, &engine);
        let factory_dataset = Arc::clone(&dataset);
        let factory_engine = Arc::clone(&engine);
        let factory: EngineFactory = Arc::new(move || {
            Ok(LoadedCity {
                dataset: Arc::clone(&factory_dataset),
                engine: Arc::clone(&factory_engine),
                loaded_from_snapshot: false,
            })
        });
        let mut inner = self.inner.lock();
        if inner.entries.contains_key(&city) {
            return Err(TenantError::DuplicateCity(city));
        }
        let mut entry = Entry::new(factory, pinned);
        entry.state = TenantState::Ready;
        entry.dataset = Some(dataset);
        entry.engine = Some(engine);
        entry.resident_bytes = bytes;
        inner.entries.insert(city, entry);
        Ok(())
    }

    /// The city used when a request names none.
    pub fn default_city(&self) -> &CityId {
        &self.default_city
    }

    /// The configured memory budget, if any.
    pub fn memory_budget(&self) -> Option<u64> {
        self.budget_bytes
    }

    /// Number of registered cities.
    pub fn len(&self) -> usize {
        let inner = self.inner.lock();
        inner.entries.len()
    }

    /// Whether the registry has no cities.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Installs the eviction callback, invoked (with no registry lock
    /// held) after a city is evicted or unloaded. The service layer
    /// uses it to drop the city's result-cache partition.
    pub fn set_evict_hook(&self, hook: impl Fn(&CityId) + Send + Sync + 'static) {
        let mut slot = self.evict_hook.lock();
        *slot = Some(Box::new(hook));
    }

    /// Resolves a city for one request, lazily loading it if needed.
    ///
    /// Returns a [`CityLease`] pinning the city resident until dropped.
    /// Concurrent calls for a city that is `Loading` wait for the one
    /// in-progress load instead of duplicating it.
    pub fn resolve(&self, city: &CityId) -> Result<CityLease, TenantError> {
        self.resolve_counted(city, true)
    }

    /// [`CityRegistry::resolve`] without counting a query against the
    /// city — for admin warm-ups and embedder accessors.
    pub fn resolve_uncounted(&self, city: &CityId) -> Result<CityLease, TenantError> {
        self.resolve_counted(city, false)
    }

    fn resolve_counted(&self, city: &CityId, count_query: bool) -> Result<CityLease, TenantError> {
        let mut inner = self.inner.lock();
        loop {
            let state = match inner.entries.get(city) {
                Some(entry) => entry.state,
                None => return Err(TenantError::UnknownCity(city.clone())),
            };
            match state {
                TenantState::Ready => {
                    let entry = inner.entries.get_mut(city).expect("checked above");
                    let lease = Self::lease_ready(entry, city, count_query, false);
                    return Ok(lease);
                }
                TenantState::Loading => {
                    self.cond.wait(&mut inner);
                }
                TenantState::Unloaded | TenantState::Evicted => {
                    let entry = inner.entries.get_mut(city).expect("checked above");
                    entry.state = TenantState::Loading;
                    entry.last_error = None;
                    let factory = Arc::clone(&entry.factory);
                    drop(inner);
                    return self.load_and_lease(city, factory, count_query);
                }
            }
        }
    }

    /// Runs the factory with no lock held, publishes the result, wakes
    /// waiters, and runs the eviction pass.
    fn load_and_lease(
        &self,
        city: &CityId,
        factory: EngineFactory,
        count_query: bool,
    ) -> Result<CityLease, TenantError> {
        let started = Instant::now();
        let built = (factory)();
        let load_nanos = started.elapsed().as_nanos() as u64;
        let mut inner = self.inner.lock();
        let outcome = match built {
            Ok(loaded) => {
                let bytes = approx_city_bytes(&loaded.dataset, &loaded.engine);
                let entry = inner
                    .entries
                    .get_mut(city)
                    .expect("the loading thread owns this entry");
                entry.dataset = Some(loaded.dataset);
                entry.engine = Some(loaded.engine);
                entry.state = TenantState::Ready;
                entry.resident_bytes = bytes;
                entry.loads += 1;
                entry.load_nanos_total += load_nanos;
                entry.loaded_from_snapshot = loaded.loaded_from_snapshot;
                Ok(Self::lease_ready(entry, city, count_query, true))
            }
            Err(reason) => {
                let entry = inner
                    .entries
                    .get_mut(city)
                    .expect("the loading thread owns this entry");
                entry.state = TenantState::Unloaded;
                entry.last_error = Some(reason.clone());
                Err(TenantError::LoadFailed {
                    city: city.clone(),
                    reason,
                })
            }
        };
        self.cond.notify_all();
        let victims = self.collect_victims(&mut inner, Some(city));
        drop(inner);
        self.finish_evictions(victims);
        outcome
    }

    fn lease_ready(entry: &mut Entry, city: &CityId, count_query: bool, cold: bool) -> CityLease {
        if count_query {
            entry.queries += 1;
        }
        entry.last_query = Instant::now();
        // ordering: Relaxed — incremented only under the registry lock;
        // pairs with the Relaxed decrement in `CityLease::drop`, and the
        // eviction pass reads it back under the same lock.
        entry.inflight.fetch_add(1, Ordering::Relaxed);
        CityLease {
            city: city.clone(),
            dataset: Arc::clone(
                entry
                    .dataset
                    .as_ref()
                    .expect("Ready entries hold a dataset"),
            ),
            engine: Arc::clone(entry.engine.as_ref().expect("Ready entries hold an engine")),
            inflight: Arc::clone(&entry.inflight),
            cold,
        }
    }

    /// While estimated resident bytes exceed the budget, marks the
    /// least-recently-queried evictable city `Evicted` and collects its
    /// `Arc`s for release after the lock is dropped. `keep` (the city a
    /// load just brought in) is never selected, nor are pinned cities
    /// or cities with leases outstanding.
    fn collect_victims(&self, inner: &mut Inner, keep: Option<&CityId>) -> Vec<Victim> {
        let Some(budget) = self.budget_bytes else {
            return Vec::new();
        };
        let mut victims = Vec::new();
        loop {
            let resident: u64 = inner
                .entries
                .values()
                .filter(|e| e.state == TenantState::Ready)
                .map(|e| e.resident_bytes)
                .sum();
            if resident <= budget {
                break;
            }
            let lru = inner
                .entries
                .iter()
                .filter(|(id, e)| {
                    e.state == TenantState::Ready
                        && !e.pinned
                        && keep != Some(*id)
                        // ordering: Relaxed — leases are only created while
                        // this lock is held, so zero here means quiescent; a
                        // stale non-zero only defers eviction one pass.
                        && e.inflight.load(Ordering::Relaxed) == 0
                })
                .min_by_key(|(_, e)| e.last_query)
                .map(|(id, _)| id.clone());
            let Some(id) = lru else {
                break;
            };
            let entry = inner.entries.get_mut(&id).expect("selected above");
            entry.fold_counters();
            entry.state = TenantState::Evicted;
            entry.evictions += 1;
            entry.resident_bytes = 0;
            victims.push(Victim {
                city: id,
                _dataset: entry.dataset.take(),
                _engine: entry.engine.take(),
            });
        }
        victims
    }

    /// Runs the evict hook for each victim; dropping `victims` at the
    /// end releases the engine/dataset `Arc`s outside the registry lock.
    fn finish_evictions(&self, victims: Vec<Victim>) {
        for victim in &victims {
            self.notify_evicted(&victim.city);
        }
    }

    fn notify_evicted(&self, city: &CityId) {
        let hook = self.evict_hook.lock();
        if let Some(callback) = hook.as_ref() {
            callback(city);
        }
    }

    /// Warms a city up without counting a query. Returns `true` if this
    /// call performed the load, `false` if it was already resident.
    pub fn load(&self, city: &CityId) -> Result<bool, TenantError> {
        let lease = self.resolve_counted(city, false)?;
        Ok(lease.cold())
    }

    /// Drops a city's engine and dataset (state becomes `Evicted`; the
    /// next query reloads). Refuses if the city is pinned, loading, or
    /// has requests in flight. Unloading a non-resident city is a no-op.
    pub fn unload(&self, city: &CityId) -> Result<(), TenantError> {
        let mut inner = self.inner.lock();
        let entry = match inner.entries.get_mut(city) {
            Some(entry) => entry,
            None => return Err(TenantError::UnknownCity(city.clone())),
        };
        match entry.state {
            TenantState::Unloaded | TenantState::Evicted => return Ok(()),
            TenantState::Loading => {
                return Err(TenantError::CityBusy {
                    city: city.clone(),
                    inflight: 0,
                })
            }
            TenantState::Ready => {}
        }
        if entry.pinned {
            return Err(TenantError::Pinned(city.clone()));
        }
        // ordering: Relaxed — read under the registry lock; see
        // `collect_victims` for why zero here means quiescent.
        let inflight = entry.inflight.load(Ordering::Relaxed);
        if inflight > 0 {
            return Err(TenantError::CityBusy {
                city: city.clone(),
                inflight,
            });
        }
        entry.fold_counters();
        entry.state = TenantState::Evicted;
        entry.resident_bytes = 0;
        let victim = Victim {
            city: city.clone(),
            _dataset: entry.dataset.take(),
            _engine: entry.engine.take(),
        };
        drop(inner);
        self.finish_evictions(vec![victim]);
        Ok(())
    }

    /// The dataset of a city, if currently resident. Never triggers a
    /// load.
    pub fn peek_dataset(&self, city: &CityId) -> Option<Arc<Dataset>> {
        let inner = self.inner.lock();
        inner.entries.get(city).and_then(|e| e.dataset.clone())
    }

    /// The engine of a city, if currently resident. Never triggers a
    /// load.
    pub fn peek_engine(&self, city: &CityId) -> Option<Arc<Engine>> {
        let inner = self.inner.lock();
        inner.entries.get(city).and_then(|e| e.engine.clone())
    }

    /// Current state of a city.
    pub fn state(&self, city: &CityId) -> Option<TenantState> {
        let inner = self.inner.lock();
        inner.entries.get(city).map(|e| e.state)
    }

    /// Snapshot of every hosted city, sorted by name.
    pub fn cities(&self) -> Vec<CityInfo> {
        let inner = self.inner.lock();
        let mut out: Vec<CityInfo> = inner
            .entries
            .iter()
            .map(|(id, e)| CityInfo {
                city: id.clone(),
                state: e.state,
                pinned: e.pinned,
                resident_bytes: e.resident_bytes,
                // ordering: Relaxed — display-only gauge read under the
                // registry lock.
                inflight: e.inflight.load(Ordering::Relaxed),
                queries: e.queries,
                loads: e.loads,
                evictions: e.evictions,
                load_ms_total: e.load_nanos_total as f64 / 1e6,
                loaded_from_snapshot: e.loaded_from_snapshot,
                counters: e.cumulative_counters(),
                last_error: e.last_error.clone(),
            })
            .collect();
        out.sort_by(|a, b| a.city.cmp(&b.city));
        out
    }

    /// Total estimated resident bytes across `Ready` cities.
    pub fn resident_bytes(&self) -> u64 {
        let inner = self.inner.lock();
        inner
            .entries
            .values()
            .filter(|e| e.state == TenantState::Ready)
            .map(|e| e.resident_bytes)
            .sum()
    }
}

impl fmt::Debug for CityRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CityRegistry")
            .field("default_city", &self.default_city)
            .field("budget_bytes", &self.budget_bytes)
            .finish_non_exhaustive()
    }
}

/// Estimated resident bytes for one city: dataset heap size plus every
/// index component (in this implementation the APL and cold HICL levels
/// are resident too, so the whole [`atsq_core::Engine`] report counts).
fn approx_city_bytes(dataset: &Dataset, engine: &Engine) -> u64 {
    (dataset.approx_bytes() + engine.approx_resident_bytes()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsq_datagen::CityConfig;
    use std::sync::atomic::AtomicUsize;
    use std::thread;
    use std::time::Duration;

    fn id(name: &str) -> CityId {
        CityId::new(name).unwrap()
    }

    fn tiny_dataset(seed: u64) -> Arc<Dataset> {
        Arc::new(atsq_datagen::generate(&CityConfig::tiny(seed)).unwrap())
    }

    /// Factory that builds a fresh GAT engine over a tiny dataset,
    /// counting invocations and optionally stalling to widen races.
    fn counting_factory(seed: u64, builds: Arc<AtomicUsize>, stall: Duration) -> EngineFactory {
        let dataset = tiny_dataset(seed);
        Arc::new(move || {
            // ordering: Relaxed — test-only invocation counter.
            builds.fetch_add(1, Ordering::Relaxed);
            if !stall.is_zero() {
                thread::sleep(stall);
            }
            let (engine, _) = Engine::build_gat(&dataset, 1, atsq_core::Partition::Hash, None)
                .map_err(|e| e.to_string())?;
            Ok(LoadedCity {
                dataset: Arc::clone(&dataset),
                engine: Arc::new(engine),
                loaded_from_snapshot: false,
            })
        })
    }

    #[test]
    fn city_id_validation() {
        assert!(CityId::new("tokyo").is_ok());
        assert!(CityId::new("new-york_2").is_ok());
        assert!(CityId::new("").is_err());
        assert!(CityId::new("a/b").is_err());
        assert!(CityId::new("..").is_err());
        assert!(CityId::new("x".repeat(65)).is_err());
    }

    #[test]
    fn unknown_city_is_a_structured_error() {
        let registry = CityRegistry::new(id("a"), None);
        let err = registry.resolve(&id("nowhere")).unwrap_err();
        assert_eq!(err, TenantError::UnknownCity(id("nowhere")));
        assert!(err.to_string().contains("unknown city"));
    }

    #[test]
    fn single_flight_concurrent_first_queries_build_once() {
        let builds = Arc::new(AtomicUsize::new(0));
        let registry = Arc::new(CityRegistry::new(id("a"), None));
        registry
            .add_city(
                id("a"),
                counting_factory(1, Arc::clone(&builds), Duration::from_millis(50)),
            )
            .unwrap();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let registry = Arc::clone(&registry);
            handles.push(thread::spawn(move || {
                let lease = registry.resolve(&id("a")).unwrap();
                assert!(!lease.dataset().is_empty());
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // ordering: Relaxed — all threads joined; test-only read.
        assert_eq!(builds.load(Ordering::Relaxed), 1);
        let info = &registry.cities()[0];
        assert_eq!(info.state, TenantState::Ready);
        assert_eq!(info.loads, 1);
        assert_eq!(info.queries, 8);
        assert!(info.resident_bytes > 0);
    }

    /// Spurious-wakeup regression for the `condvar-wait-must-loop`
    /// discipline: waiters parked on a `Loading` city re-check the
    /// state in a loop, so a storm of stray `notify_all` calls while
    /// the load is in flight must neither duplicate the build nor
    /// hand a waiter a lease on a half-loaded city.
    #[test]
    fn spurious_wakeups_do_not_break_single_flight() {
        let builds = Arc::new(AtomicUsize::new(0));
        let registry = Arc::new(CityRegistry::new(id("a"), None));
        registry
            .add_city(
                id("a"),
                counting_factory(1, Arc::clone(&builds), Duration::from_millis(50)),
            )
            .unwrap();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let registry = Arc::clone(&registry);
            handles.push(thread::spawn(move || {
                let lease = registry.resolve(&id("a")).unwrap();
                assert!(!lease.dataset().is_empty());
            }));
        }
        // Wake every waiter repeatedly while the factory stalls: each
        // wakeup finds the state still `Loading` and must re-park.
        for _ in 0..20 {
            registry.cond.notify_all();
            thread::sleep(Duration::from_millis(3));
        }
        for h in handles {
            h.join().unwrap();
        }
        // ordering: Relaxed — all threads joined; test-only read.
        assert_eq!(builds.load(Ordering::Relaxed), 1);
        assert_eq!(registry.state(&id("a")), Some(TenantState::Ready));
    }

    #[test]
    fn eviction_is_lru_and_never_selects_inflight_or_fresh() {
        let builds = Arc::new(AtomicUsize::new(0));
        // Budget of one byte: any two Ready cities are over budget.
        let registry = CityRegistry::new(id("a"), Some(1));
        for (i, name) in ["a", "b", "c"].iter().enumerate() {
            registry
                .add_city(
                    id(name),
                    counting_factory(i as u64 + 1, Arc::clone(&builds), Duration::ZERO),
                )
                .unwrap();
        }
        let lease_a = registry.resolve(&id("a")).unwrap();
        // `b` loads and immediately goes idle.
        drop(registry.resolve(&id("b")).unwrap());
        assert_eq!(registry.state(&id("a")), Some(TenantState::Ready));
        assert_eq!(registry.state(&id("b")), Some(TenantState::Ready));
        // Loading `c` forces an eviction pass: `a` is in flight, `c` is
        // the fresh load, so `b` is the only legal victim.
        let lease_c = registry.resolve(&id("c")).unwrap();
        assert_eq!(registry.state(&id("a")), Some(TenantState::Ready));
        assert_eq!(registry.state(&id("b")), Some(TenantState::Evicted));
        assert_eq!(registry.state(&id("c")), Some(TenantState::Ready));
        drop(lease_a);
        drop(lease_c);
        // With all leases released, reloading `b` evicts the LRU of the
        // remaining Ready cities — `a` (queried before `c`).
        drop(registry.resolve(&id("b")).unwrap());
        assert_eq!(registry.state(&id("a")), Some(TenantState::Evicted));
        let info_b = registry
            .cities()
            .into_iter()
            .find(|c| c.city == id("b"))
            .unwrap();
        assert_eq!(info_b.loads, 2);
        assert_eq!(info_b.evictions, 1);
    }

    #[test]
    fn evict_hook_fires_per_victim() {
        let evicted: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let registry = CityRegistry::new(id("a"), Some(1));
        let sink = Arc::clone(&evicted);
        registry.set_evict_hook(move |city| {
            sink.lock().push(city.as_str().to_owned());
        });
        let builds = Arc::new(AtomicUsize::new(0));
        for (i, name) in ["a", "b"].iter().enumerate() {
            registry
                .add_city(
                    id(name),
                    counting_factory(i as u64 + 10, Arc::clone(&builds), Duration::ZERO),
                )
                .unwrap();
        }
        drop(registry.resolve(&id("a")).unwrap());
        drop(registry.resolve(&id("b")).unwrap());
        assert_eq!(evicted.lock().clone(), vec!["a".to_owned()]);
    }

    #[test]
    fn unload_then_query_reloads() {
        let builds = Arc::new(AtomicUsize::new(0));
        let registry = CityRegistry::new(id("a"), None);
        registry
            .add_city(
                id("a"),
                counting_factory(7, Arc::clone(&builds), Duration::ZERO),
            )
            .unwrap();
        let lease = registry.resolve(&id("a")).unwrap();
        assert!(lease.cold());
        // Unload must refuse while the lease is live.
        assert!(matches!(
            registry.unload(&id("a")),
            Err(TenantError::CityBusy { inflight: 1, .. })
        ));
        drop(lease);
        registry.unload(&id("a")).unwrap();
        assert_eq!(registry.state(&id("a")), Some(TenantState::Evicted));
        assert!(registry.peek_engine(&id("a")).is_none());
        // Unloading again is a no-op.
        registry.unload(&id("a")).unwrap();
        let lease = registry.resolve(&id("a")).unwrap();
        assert!(lease.cold());
        // ordering: Relaxed — single-threaded test read.
        assert_eq!(builds.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn pinned_city_survives_budget_pressure_and_refuses_unload() {
        let dataset = tiny_dataset(3);
        let (engine, _) = Engine::build_gat(&dataset, 1, atsq_core::Partition::Hash, None).unwrap();
        let registry = CityRegistry::new(id("pinned"), Some(1));
        registry
            .add_resident(id("pinned"), Arc::clone(&dataset), Arc::new(engine), true)
            .unwrap();
        let builds = Arc::new(AtomicUsize::new(0));
        registry
            .add_city(
                id("other"),
                counting_factory(4, Arc::clone(&builds), Duration::ZERO),
            )
            .unwrap();
        drop(registry.resolve(&id("other")).unwrap());
        assert_eq!(registry.state(&id("pinned")), Some(TenantState::Ready));
        assert_eq!(
            registry.unload(&id("pinned")),
            Err(TenantError::Pinned(id("pinned")))
        );
    }

    #[test]
    fn failed_load_reports_and_allows_retry() {
        let attempts = Arc::new(AtomicUsize::new(0));
        let dataset = tiny_dataset(5);
        let counter = Arc::clone(&attempts);
        let factory: EngineFactory = Arc::new(move || {
            // ordering: Relaxed — test-only attempt counter.
            if counter.fetch_add(1, Ordering::Relaxed) == 0 {
                return Err("disk on fire".to_owned());
            }
            let (engine, _) = Engine::build_gat(&dataset, 1, atsq_core::Partition::Hash, None)
                .map_err(|e| e.to_string())?;
            Ok(LoadedCity {
                dataset: Arc::clone(&dataset),
                engine: Arc::new(engine),
                loaded_from_snapshot: false,
            })
        });
        let registry = CityRegistry::new(id("a"), None);
        registry.add_city(id("a"), factory).unwrap();
        let err = registry.resolve(&id("a")).unwrap_err();
        assert!(matches!(err, TenantError::LoadFailed { .. }));
        let info = &registry.cities()[0];
        assert_eq!(info.state, TenantState::Unloaded);
        assert_eq!(info.last_error.as_deref(), Some("disk on fire"));
        // The next query retries and succeeds.
        let lease = registry.resolve(&id("a")).unwrap();
        assert!(lease.cold());
    }

    #[test]
    fn single_registry_is_pinned_default() {
        let dataset = tiny_dataset(6);
        let (engine, _) = Engine::build_gat(&dataset, 1, atsq_core::Partition::Hash, None).unwrap();
        let registry = CityRegistry::single(Arc::clone(&dataset), Arc::new(engine));
        assert_eq!(registry.default_city(), &CityId::default_city());
        let lease = registry.resolve(&CityId::default_city()).unwrap();
        assert!(!lease.cold());
        let info = &registry.cities()[0];
        assert!(info.pinned);
        assert_eq!(info.state, TenantState::Ready);
        assert!(info.resident_bytes > 0);
    }
}
