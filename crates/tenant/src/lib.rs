//! Multi-city, multi-tenant hosting for atsq engines.
//!
//! The paper's GAT index answers queries over *one* city's check-in
//! dataset. A deployment serves a fleet of metro areas from one
//! process, with traffic heavily skewed across cities. This crate adds
//! the tenancy layer that makes that shape work:
//!
//! - [`CityRegistry`] maps [`CityId`]s to engines. Each city walks a
//!   [`TenantState`] lifecycle (`Unloaded → Loading → Ready → Evicted`).
//! - The first query to a city triggers a **single-flight lazy load**:
//!   one thread runs the (expensive, blocking) dataset read + index
//!   build/snapshot load with no registry lock held, while concurrent
//!   requests for the same city wait on a condition variable.
//! - A **memory-budget accountant** estimates resident bytes per city
//!   (dataset + index component sizes) and evicts the
//!   least-recently-queried cities when the budget is exceeded. Cities
//!   with in-flight requests — tracked by RAII [`CityLease`]s — are
//!   never evicted.
//! - [`registry_from_dir`] builds a registry from a directory with one
//!   subdirectory per city (`<dir>/<name>/city.atsq` plus a per-city
//!   `index/` snapshot cache), so cold loads go through
//!   `IndexCache::load_or_build` and hit snapshots when available.
//!
//! The service layer consumes this crate through [`CityRegistry`]
//! directly: single-city serving is just a one-entry registry with the
//! city pinned (see [`CityRegistry::single`]), not a special case.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod disk;
mod registry;

pub use disk::{
    registry_from_dir, snapshot_factory, DiskRegistryOptions, CITY_DATASET_FILE, CITY_INDEX_DIR,
};
pub use registry::{
    CityId, CityInfo, CityLease, CityRegistry, EngineFactory, LoadedCity, TenantError, TenantState,
};
