//! Building a [`CityRegistry`] from an on-disk cities directory.
//!
//! Layout (one subdirectory per city; the subdirectory name is the
//! [`CityId`]):
//!
//! ```text
//! <cities-dir>/
//!   tokyo/
//!     city.atsq      # the dataset (atsq text format)
//!     index/         # per-city IndexCache snapshot dir (created lazily)
//!   osaka/
//!     city.atsq
//!     index/
//! ```
//!
//! Cold loads read `city.atsq` and go through
//! [`IndexCache::load_or_build`], so a city whose snapshot is valid
//! starts in milliseconds; the first-ever load builds the index and
//! saves the snapshot for the next time.

use crate::registry::{CityId, CityRegistry, EngineFactory, LoadedCity, TenantError};
use atsq_core::{CacheOutcome, Engine, IndexCache, Partition};
use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Dataset file name expected inside each city subdirectory.
pub const CITY_DATASET_FILE: &str = "city.atsq";

/// Index snapshot directory name inside each city subdirectory.
pub const CITY_INDEX_DIR: &str = "index";

/// Options for [`registry_from_dir`].
#[derive(Debug, Clone)]
pub struct DiskRegistryOptions {
    /// Shards per city engine (`> 1` builds a sharded engine).
    pub shards: usize,
    /// Partitioning strategy for sharded engines.
    pub partition: Partition,
    /// Estimated resident-byte ceiling across `Ready` cities
    /// (`None` = never evict).
    pub memory_budget: Option<u64>,
    /// City used when requests name none; defaults to the
    /// alphabetically first subdirectory.
    pub default_city: Option<String>,
}

impl Default for DiskRegistryOptions {
    fn default() -> Self {
        DiskRegistryOptions {
            shards: 1,
            partition: Partition::Hash,
            memory_budget: None,
            default_city: None,
        }
    }
}

/// Scans `dir` for city subdirectories and returns a registry with one
/// lazily-loaded entry per city. Fails if no city is found or the
/// requested default city is not among them.
pub fn registry_from_dir(
    dir: &Path,
    opts: &DiskRegistryOptions,
) -> Result<CityRegistry, TenantError> {
    let mut names = Vec::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| TenantError::Io(format!("{}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| TenantError::Io(format!("{}: {e}", dir.display())))?;
        let path = entry.path();
        if path.is_dir() && path.join(CITY_DATASET_FILE).is_file() {
            let name = entry.file_name().to_string_lossy().into_owned();
            names.push(name);
        }
    }
    names.sort();
    if names.is_empty() {
        return Err(TenantError::Io(format!(
            "no cities found under {} (want <dir>/<name>/{CITY_DATASET_FILE})",
            dir.display()
        )));
    }
    let default_name = opts
        .default_city
        .clone()
        .unwrap_or_else(|| names[0].clone());
    if !names.contains(&default_name) {
        return Err(TenantError::UnknownCity(CityId::new(default_name)?));
    }
    let registry = CityRegistry::new(CityId::new(default_name)?, opts.memory_budget);
    for name in &names {
        let city = CityId::new(name.as_str())?;
        let city_dir = dir.join(name);
        let factory = snapshot_factory(
            city_dir.join(CITY_DATASET_FILE),
            city_dir.join(CITY_INDEX_DIR),
            opts.shards,
            opts.partition,
        );
        registry.add_city(city, factory)?;
    }
    Ok(registry)
}

/// Factory that reads a dataset file and builds its engine through a
/// per-city [`IndexCache`] (snapshot load when valid, build + save
/// otherwise).
pub fn snapshot_factory(
    dataset_path: PathBuf,
    index_dir: PathBuf,
    shards: usize,
    partition: Partition,
) -> EngineFactory {
    Arc::new(move || {
        let file =
            File::open(&dataset_path).map_err(|e| format!("{}: {e}", dataset_path.display()))?;
        let dataset = atsq_io::read_dataset(BufReader::new(file))
            .map_err(|e| format!("{}: {e}", dataset_path.display()))?;
        let cache = IndexCache::new(&index_dir);
        let (engine, outcome) = Engine::build_gat(&dataset, shards, partition, Some(&cache))
            .map_err(|e| e.to_string())?;
        Ok(LoadedCity {
            dataset: Arc::new(dataset),
            engine: Arc::new(engine),
            loaded_from_snapshot: outcome.as_ref().is_some_and(CacheOutcome::loaded),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::TenantState;
    use atsq_datagen::CityConfig;
    use std::io::BufWriter;

    fn write_city(dir: &Path, name: &str, seed: u64) {
        let city_dir = dir.join(name);
        std::fs::create_dir_all(&city_dir).unwrap();
        let dataset = atsq_datagen::generate(&CityConfig::tiny(seed)).unwrap();
        let file = File::create(city_dir.join(CITY_DATASET_FILE)).unwrap();
        atsq_io::write_dataset(&dataset, BufWriter::new(file)).unwrap();
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("atsq-tenant-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn scans_cities_and_reloads_from_snapshot() {
        let dir = temp_dir("scan");
        write_city(&dir, "osaka", 1);
        write_city(&dir, "tokyo", 2);
        let registry = registry_from_dir(&dir, &DiskRegistryOptions::default()).unwrap();
        assert_eq!(registry.len(), 2);
        // Alphabetical default.
        assert_eq!(registry.default_city().as_str(), "osaka");
        let tokyo = CityId::new("tokyo").unwrap();
        let lease = registry.resolve(&tokyo).unwrap();
        assert!(lease.cold());
        // First load builds fresh and saves the snapshot…
        let first_from_snapshot = registry
            .cities()
            .iter()
            .find(|c| c.city == tokyo)
            .unwrap()
            .loaded_from_snapshot;
        assert!(!first_from_snapshot);
        drop(lease);
        registry.unload(&tokyo).unwrap();
        assert_eq!(registry.state(&tokyo), Some(TenantState::Evicted));
        // …so the reload after unload comes from the snapshot.
        let lease = registry.resolve(&tokyo).unwrap();
        assert!(lease.cold());
        let reloaded = registry
            .cities()
            .iter()
            .find(|c| c.city == tokyo)
            .unwrap()
            .loaded_from_snapshot;
        assert!(reloaded);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_dir_is_an_error() {
        let dir = temp_dir("empty");
        let err = registry_from_dir(&dir, &DiskRegistryOptions::default()).unwrap_err();
        assert!(matches!(err, TenantError::Io(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_default_city_is_an_error() {
        let dir = temp_dir("default");
        write_city(&dir, "only", 3);
        let opts = DiskRegistryOptions {
            default_city: Some("absent".to_owned()),
            ..DiskRegistryOptions::default()
        };
        let err = registry_from_dir(&dir, &opts).unwrap_err();
        assert!(matches!(err, TenantError::UnknownCity(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
