//! Zipf-distributed sampling over `1..=n` ranks.
//!
//! Activity popularity in check-in tips is heavily skewed; a Zipf law
//! with exponent ≈ 1 is the standard model. Sampling uses a
//! precomputed cumulative table with binary search — O(log n) per draw
//! and exact (no rejection).

use rand::Rng;

/// A Zipf(`n`, `s`) sampler: rank `k` has probability ∝ `1 / k^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for ranks `0..n` (returned values are
    /// 0-based so they can index vocabularies directly).
    ///
    /// # Panics
    /// Panics when `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cumulative.push(acc);
        }
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Always false (construction requires `n > 0`).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws one 0-based rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let u = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c <= u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_are_in_range() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn skew_prefers_low_ranks() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0usize; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 should be roughly twice as frequent as rank 1 and far
        // above the tail.
        assert!(counts[0] > counts[1]);
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((1.6..2.6).contains(&ratio), "ratio {ratio}");
        let tail: usize = counts[900..].iter().sum();
        assert!(counts[0] > tail / 10);
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let dev = (c as f64 - 5000.0).abs() / 5000.0;
            assert!(dev < 0.1, "uniformity violated: {counts:?}");
        }
    }

    #[test]
    fn single_rank() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = Zipf::new(0, 1.0);
    }
}
