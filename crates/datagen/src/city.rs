//! City model: hotspots, venues and user trajectories.

use crate::zipf::Zipf;
use atsq_types::{ActivitySet, Dataset, DatasetBuilder, Point, Result, TrajectoryPoint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of one synthetic city.
#[derive(Debug, Clone)]
pub struct CityConfig {
    /// City label (used in reports only).
    pub name: String,
    /// Side length of the square city plane, in kilometres.
    pub extent_km: f64,
    /// Number of Gaussian venue hotspots.
    pub hotspots: usize,
    /// Standard deviation of venue scatter around a hotspot (km).
    pub hotspot_sigma_km: f64,
    /// Size of the venue pool.
    pub venues: usize,
    /// Activity vocabulary cardinality.
    pub vocabulary: usize,
    /// Zipf exponent of activity popularity.
    pub zipf_s: f64,
    /// Number of trajectories (users).
    pub trajectories: usize,
    /// Mean check-ins per trajectory (geometric length distribution,
    /// minimum 2).
    pub mean_length: f64,
    /// Maximum activities attached to one venue.
    pub max_acts_per_venue: usize,
    /// Probability that a venue activity is drawn from the small
    /// "category" pool of very common activities (coffee, pizza, …)
    /// rather than the full Zipf tail of tip words. Foursquare-like
    /// data is category-heavy, which is what gives the paper's IL
    /// baseline its large candidate sets.
    pub category_bias: f64,
    /// Size of the category pool (top ranks of the vocabulary).
    pub category_pool: usize,
    /// RNG seed for full reproducibility.
    pub seed: u64,
}

impl CityConfig {
    /// A Los-Angeles-like city. At `scale = 1.0` the row counts match
    /// the paper's Table IV (31,557 trajectories; ≈3.16 M activity
    /// occurrences over ≈87.5 K distinct activities). LA trajectories
    /// are activity-rich: ~100 occurrences each.
    pub fn la_like(scale: f64) -> Self {
        CityConfig {
            name: "LA".into(),
            extent_km: 60.0,
            hotspots: 60,
            hotspot_sigma_km: 1.5,
            venues: scaled(215_614, scale),
            vocabulary: scaled(87_567, scale).max(50),
            zipf_s: 1.0,
            trajectories: scaled(31_557, scale),
            mean_length: 66.0,
            max_acts_per_venue: 3,
            category_bias: 0.7,
            category_pool: 40,
            seed: 0x1a,
        }
    }

    /// A New-York-like city (49,027 trajectories at full scale; fewer
    /// activities per trajectory than LA, mirroring Table IV).
    pub fn ny_like(scale: f64) -> Self {
        CityConfig {
            name: "NY".into(),
            extent_km: 50.0,
            hotspots: 80,
            hotspot_sigma_km: 1.0,
            venues: scaled(206_416, scale),
            vocabulary: scaled(64_649, scale).max(50),
            zipf_s: 1.0,
            trajectories: scaled(49_027, scale),
            mean_length: 28.0,
            max_acts_per_venue: 3,
            category_bias: 0.7,
            category_pool: 40,
            seed: 0x2b,
        }
    }

    /// A tiny city for unit tests.
    pub fn tiny(seed: u64) -> Self {
        CityConfig {
            name: "tiny".into(),
            extent_km: 20.0,
            hotspots: 5,
            hotspot_sigma_km: 1.0,
            venues: 200,
            vocabulary: 40,
            zipf_s: 1.0,
            trajectories: 50,
            mean_length: 8.0,
            max_acts_per_venue: 3,
            category_bias: 0.6,
            category_pool: 10,
            seed,
        }
    }
}

fn scaled(full: usize, scale: f64) -> usize {
    ((full as f64 * scale).round() as usize).max(1)
}

/// One generated venue.
struct Venue {
    loc: Point,
    hotspot: usize,
    activities: Vec<u32>,
}

/// Generates the dataset for a city configuration.
///
/// Deterministic in `config.seed`. Activity ids in the result are
/// frequency-ranked (the `DatasetBuilder` default), as the GAT TAS
/// component requires.
pub fn generate(config: &CityConfig) -> Result<Dataset> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let extent = config.extent_km;

    // Hotspot centres, uniform over the plane; hotspot popularity is
    // itself Zipf-distributed (downtown vs. suburbs).
    let centers: Vec<Point> = (0..config.hotspots)
        .map(|_| Point::new(rng.gen_range(0.0..extent), rng.gen_range(0.0..extent)))
        .collect();
    let hotspot_pop = Zipf::new(config.hotspots, 0.8);
    let activity_pop = Zipf::new(config.vocabulary, config.zipf_s);
    let category_pop = Zipf::new(
        config.category_pool.min(config.vocabulary).max(1),
        config.zipf_s,
    );

    // Venue pool.
    let venues: Vec<Venue> = (0..config.venues)
        .map(|_| {
            let h = hotspot_pop.sample(&mut rng);
            let c = centers[h];
            let loc = Point::new(
                clamp(c.x + gaussian(&mut rng) * config.hotspot_sigma_km, extent),
                clamp(c.y + gaussian(&mut rng) * config.hotspot_sigma_km, extent),
            );
            let n_acts = rng.gen_range(1..=config.max_acts_per_venue);
            let mut acts: Vec<u32> = (0..n_acts)
                .map(|_| {
                    if rng.gen::<f64>() < config.category_bias {
                        category_pop.sample(&mut rng) as u32
                    } else {
                        activity_pop.sample(&mut rng) as u32
                    }
                })
                .collect();
            acts.sort_unstable();
            acts.dedup();
            Venue {
                loc,
                hotspot: h,
                activities: acts,
            }
        })
        .collect();

    // Venues bucketed by hotspot for locality-aware walks.
    let mut by_hotspot: Vec<Vec<usize>> = vec![Vec::new(); config.hotspots];
    for (i, v) in venues.iter().enumerate() {
        by_hotspot[v.hotspot].push(i);
    }
    // Precompute each hotspot's nearest neighbours for the walk.
    let neighbors: Vec<Vec<usize>> = centers
        .iter()
        .map(|c| {
            let mut order: Vec<usize> = (0..config.hotspots).collect();
            order.sort_by(|&a, &b| {
                c.dist(&centers[a])
                    .partial_cmp(&c.dist(&centers[b]))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            order.into_iter().take(6).collect()
        })
        .collect();

    // Intern the vocabulary up front so ids are dense.
    let mut builder = DatasetBuilder::new();
    let ids: Vec<atsq_types::ActivityId> = (0..config.vocabulary)
        .map(|i| builder.vocabulary_mut().intern(&format!("act{i:06}")))
        .collect();

    for _ in 0..config.trajectories {
        // Geometric length with the configured mean, at least 2.
        let p = 1.0 / config.mean_length.max(2.0);
        let mut len = 2usize;
        while rng.gen::<f64>() > p && len < 4 * config.mean_length as usize + 8 {
            len += 1;
        }
        let mut hotspot = hotspot_pop.sample(&mut rng);
        let mut points = Vec::with_capacity(len);
        for _ in 0..len {
            // Mostly stay local; sometimes hop to a neighbouring
            // hotspot, rarely jump anywhere.
            let r: f64 = rng.gen();
            if r < 0.15 {
                let nb = &neighbors[hotspot];
                hotspot = nb[rng.gen_range(0..nb.len())];
            } else if r < 0.20 {
                hotspot = hotspot_pop.sample(&mut rng);
            }
            let pool = &by_hotspot[hotspot];
            if pool.is_empty() {
                continue;
            }
            let v = &venues[pool[rng.gen_range(0..pool.len())]];
            let acts = ActivitySet::from_ids(v.activities.iter().map(|&a| ids[a as usize]));
            for a in acts.iter() {
                builder.vocabulary_mut().add_count(a, 1);
            }
            points.push(TrajectoryPoint::new(v.loc, acts));
        }
        if points.len() < 2 {
            // Degenerate walk (empty hotspot pools): place two venues
            // from the global pool so every trajectory is non-trivial.
            for _ in points.len()..2 {
                let v = &venues[rng.gen_range(0..venues.len())];
                let acts = ActivitySet::from_ids(v.activities.iter().map(|&a| ids[a as usize]));
                for a in acts.iter() {
                    builder.vocabulary_mut().add_count(a, 1);
                }
                points.push(TrajectoryPoint::new(v.loc, acts));
            }
        }
        builder.push_trajectory(points);
    }

    builder.finish()
}

fn clamp(v: f64, extent: f64) -> f64 {
    v.clamp(0.0, extent)
}

/// Standard normal via Box–Muller.
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = CityConfig::tiny(9);
        let a = generate(&cfg).unwrap();
        let b = generate(&cfg).unwrap();
        assert_eq!(a.len(), b.len());
        for (ta, tb) in a.trajectories().iter().zip(b.trajectories()) {
            assert_eq!(ta, tb);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&CityConfig::tiny(1)).unwrap();
        let b = generate(&CityConfig::tiny(2)).unwrap();
        assert_ne!(
            a.trajectories()[0].points[0].loc,
            b.trajectories()[0].points[0].loc
        );
    }

    #[test]
    fn respects_configured_counts() {
        let cfg = CityConfig::tiny(5);
        let d = generate(&cfg).unwrap();
        assert_eq!(d.len(), cfg.trajectories);
        let stats = d.stats();
        assert!(stats.distinct_activities <= cfg.vocabulary);
        assert!(stats.venues >= 2 * cfg.trajectories);
        // Every trajectory has at least 2 points.
        assert!(d.trajectories().iter().all(|t| t.len() >= 2));
    }

    #[test]
    fn points_stay_within_extent() {
        let cfg = CityConfig::tiny(11);
        let d = generate(&cfg).unwrap();
        for tr in d.trajectories() {
            for p in &tr.points {
                assert!(p.loc.x >= 0.0 && p.loc.x <= cfg.extent_km);
                assert!(p.loc.y >= 0.0 && p.loc.y <= cfg.extent_km);
            }
        }
    }

    #[test]
    fn activity_ids_are_frequency_ranked() {
        let d = generate(&CityConfig::tiny(13)).unwrap();
        let v = d.vocabulary();
        let counts: Vec<u64> = (0..v.len() as u32)
            .map(|i| v.count(atsq_types::ActivityId(i)))
            .collect();
        assert!(
            counts.windows(2).all(|w| w[0] >= w[1]),
            "ids not ranked by frequency: {counts:?}"
        );
    }

    #[test]
    fn la_and_ny_presets_scale() {
        let la = CityConfig::la_like(0.01);
        assert_eq!(la.trajectories, 316);
        assert_eq!(la.venues, 2156);
        let ny = CityConfig::ny_like(0.01);
        assert_eq!(ny.trajectories, 490);
        assert!(ny.mean_length < la.mean_length);
        // Generate a small one end-to-end.
        let d = generate(&CityConfig::la_like(0.002)).unwrap();
        assert_eq!(d.len(), 63);
    }

    #[test]
    fn mean_length_is_roughly_respected() {
        let mut cfg = CityConfig::tiny(21);
        cfg.trajectories = 300;
        cfg.mean_length = 10.0;
        let d = generate(&cfg).unwrap();
        let mean = d.stats().venues as f64 / d.len() as f64;
        assert!((6.0..16.0).contains(&mean), "mean length {mean}");
    }
}
