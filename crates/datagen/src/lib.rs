//! Synthetic Foursquare-like check-in data (§VII-A substitute).
//!
//! The paper evaluates on crawled Foursquare check-ins from Los Angeles
//! and New York, which are not redistributable. This crate generates
//! the closest synthetic equivalent, reproducing the statistics that
//! drive index and pruning behaviour:
//!
//! * **spatial clustering** — venues are drawn from a mixture of
//!   Gaussian hotspots (commercial districts) over a city-scale plane;
//! * **Zipfian activity skew** — activity frequencies follow a Zipf
//!   law over a large vocabulary, like words in Foursquare tips;
//! * **trajectory locality** — users hop between nearby hotspots, so
//!   consecutive check-ins are spatially correlated;
//! * **scale** — the [`CityConfig::la_like`] / [`CityConfig::ny_like`]
//!   presets match Table IV's row counts at `scale = 1.0` and shrink
//!   proportionally for fast tests and benches.
//!
//! Queries are produced per §VII-A: pick a random trajectory, select
//! `|Q|` of its locations and `|q.Φ|` activities per location, with
//! optional exact-diameter control for the Fig. 6 sweep.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod city;
pub mod query_gen;
pub mod zipf;

pub use city::{generate, CityConfig};
pub use query_gen::{generate_queries, QueryGenConfig};
pub use zipf::Zipf;
