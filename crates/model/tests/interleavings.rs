//! Exhaustive-interleaving suites for the engine's concurrency
//! primitives, plus the broken twins that prove the checker has
//! teeth. Runs with `cargo test -p atsq-model --features check`.
#![cfg(feature = "check")]

mod common;

use atsq_model::check::atomic::{AtomicU64, Ordering};
use atsq_model::check::{explore, thread, Config};
use std::sync::Arc;

// ---- scheduler self-test ----------------------------------------------

/// Two racing unsynchronized increments must surface BOTH final
/// values across the explored schedules, and exploration must
/// actually branch.
#[test]
fn scheduler_self_test_surfaces_both_orders() {
    let finals: Arc<std::sync::Mutex<std::collections::BTreeSet<u64>>> = Arc::default();
    let sink = Arc::clone(&finals);
    let report = explore("self_test", Config::default(), move || {
        let x = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let x = Arc::clone(&x);
                thread::spawn(move || {
                    let v = x.load(Ordering::Relaxed);
                    x.store(v + 1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        sink.lock().unwrap().insert(x.load(Ordering::Relaxed));
    });
    report.assert_ok();
    assert!(report.schedules > 1, "explorer never branched: {report:?}");
    let seen: Vec<u64> = finals.lock().unwrap().iter().copied().collect();
    assert_eq!(
        seen,
        vec![1, 2],
        "both racing orders must be observed (lost-update order AND sequential order)"
    );
}

// ---- SharedKthBound::fetch_min ----------------------------------------

#[test]
fn fetch_min_exhaustive() {
    let report = explore("fetch_min", Config::default(), common::targets::fetch_min);
    report.assert_ok();
    assert!(report.schedules >= 10, "{report:?}");
}

#[test]
fn fetch_min_load_then_store_twin_fails() {
    let report = explore("fetch_min_racy", Config::default(), || {
        let b = Arc::new(common::KthBound::new());
        let writers: Vec<_> = [5.0_f64, 3.0]
            .into_iter()
            .map(|d| {
                let b = Arc::clone(&b);
                thread::spawn(move || b.tighten_racy(d))
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(b.get(), 3.0, "lost update: final bound is not the min");
    });
    let msg = report.assert_fails();
    assert!(msg.contains("lost update"), "unexpected failure: {msg}");
}

// ---- CityRegistry single-flight ---------------------------------------

#[test]
fn single_flight_exhaustive() {
    let report = explore(
        "single_flight",
        Config::default(),
        common::targets::single_flight,
    );
    report.assert_ok();
    assert!(report.schedules >= 10, "{report:?}");
}

#[test]
fn single_flight_without_claim_twin_fails() {
    let report = explore("single_flight_no_claim", Config::default(), || {
        let reg = Arc::new(common::Registry::new());
        let other = {
            let reg = Arc::clone(&reg);
            thread::spawn(move || reg.resolve_no_claim())
        };
        reg.resolve_no_claim();
        other.join().unwrap();
        let g = reg.inner.lock();
        assert_eq!(g.factory_runs, 1, "single-flight ran the factory twice");
    });
    let msg = report.assert_fails();
    assert!(msg.contains("factory twice"), "unexpected failure: {msg}");
}

/// The condvar-wait-must-loop rule, executed: a waiter that treats
/// any wakeup as "Ready" is broken by an injected spurious wakeup.
#[test]
fn single_flight_wait_once_twin_fails_on_spurious_wakeup() {
    let report = explore("single_flight_wait_once", Config::default(), || {
        let loader = Arc::new(common::Registry::new());
        let t = {
            let reg = Arc::clone(&loader);
            thread::spawn(move || reg.resolve())
        };
        loader.resolve_wait_once();
        t.join().unwrap();
    });
    let msg = report.assert_fails();
    assert!(msg.contains("spurious"), "unexpected failure: {msg}");
}

// ---- lease pinning vs eviction ----------------------------------------

#[test]
fn lease_pin_exhaustive() {
    let report = explore("lease_pin", Config::default(), common::targets::lease_pin);
    report.assert_ok();
    assert!(report.schedules >= 10, "{report:?}");
}

#[test]
fn lease_pin_unlocked_inflight_twin_fails() {
    let report = explore("lease_pin_unlocked", Config::default(), || {
        let city = Arc::new(common::City::new());
        let user = {
            let city = Arc::clone(&city);
            thread::spawn(move || {
                if city.lease() {
                    city.use_leased();
                    city.end_lease();
                }
            })
        };
        let evictor = {
            let city = Arc::clone(&city);
            thread::spawn(move || {
                city.evict_unlocked_check();
            })
        };
        user.join().unwrap();
        evictor.join().unwrap();
    });
    let msg = report.assert_fails();
    assert!(
        msg.contains("evicted while a lease"),
        "unexpected failure: {msg}"
    );
}

// ---- bounded queue -----------------------------------------------------

#[test]
fn queue_exhaustive() {
    let report = explore("queue", Config::default(), common::targets::queue);
    report.assert_ok();
    assert!(report.schedules >= 10, "{report:?}");
}

#[test]
fn queue_close_without_notify_twin_deadlocks() {
    let report = explore("queue_silent_close", Config::default(), || {
        let q = Arc::new(common::Queue::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(batch) = q.pop_batch(2) {
                    got.extend(batch);
                }
                got
            })
        };
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || (1..=2).filter(|&v| q.try_push(v)).count())
        };
        producer.join().unwrap();
        q.close_silent();
        consumer.join().unwrap();
    });
    let msg = report.assert_fails();
    assert!(msg.contains("deadlock"), "lost wakeup must deadlock: {msg}");
}

#[test]
fn queue_slot_leak_twin_fails() {
    let report = explore("queue_leaky", Config::default(), || {
        let q = Arc::new(common::Queue::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(batch) = q.pop_batch(2) {
                    got.extend(batch);
                }
                got
            })
        };
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                (1..=2)
                    .filter(|&v| q.try_push_leaky(v))
                    .collect::<Vec<u32>>()
            })
        };
        let accepted = producer.join().unwrap();
        q.close();
        let mut popped = consumer.join().unwrap();
        popped.sort_unstable();
        assert_eq!(
            popped, accepted,
            "delivered items differ from accepted items"
        );
    });
    let msg = report.assert_fails();
    assert!(
        msg.contains("slot leak") || msg.contains("differ from accepted"),
        "unexpected failure: {msg}"
    );
}

// ---- obs counter scopes ------------------------------------------------

#[test]
fn counter_scopes_exhaustive() {
    let report = explore(
        "counter_scopes",
        Config::default(),
        common::targets::counter_scopes,
    );
    report.assert_ok();
    assert!(report.schedules >= 10, "{report:?}");
}

#[test]
fn counter_scope_racy_flush_twin_fails() {
    let report = explore("counter_scopes_racy", Config::default(), || {
        let outer = Arc::new(common::Sink::new());
        let inner = Arc::new(common::Sink::new());
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let o = Arc::clone(&outer);
                let i = Arc::clone(&inner);
                thread::spawn(move || common::scoped_worker(&o, &i, true))
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(
            outer.total.load(Ordering::Relaxed),
            12,
            "outer flushes lost"
        );
        assert_eq!(inner.total.load(Ordering::Relaxed), 4, "inner flushes lost");
    });
    let msg = report.assert_fails();
    assert!(msg.contains("flushes lost"), "unexpected failure: {msg}");
}

// ---- memory-ordering semantics ----------------------------------------

#[test]
fn publish_release_acquire_exhaustive() {
    let report = explore(
        "publish",
        Config::default(),
        common::targets::publish_release_acquire,
    );
    report.assert_ok();
    assert!(report.schedules >= 10, "{report:?}");
}

/// The annotations are executed, not grep-audited: weaken the Release
/// store to Relaxed and the checker exhibits the stale read.
#[test]
fn publish_with_relaxed_flag_twin_fails() {
    let report = explore("publish_relaxed", Config::default(), || {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let producer = {
            let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
            thread::spawn(move || {
                data.store(42, Ordering::Relaxed);
                flag.store(1, Ordering::Relaxed); // BROKEN: no release
            })
        };
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(
                data.load(Ordering::Relaxed),
                42,
                "acquire read the flag but not the published data"
            );
        }
        producer.join().unwrap();
    });
    let msg = report.assert_fails();
    assert!(msg.contains("published data"), "unexpected failure: {msg}");
}
