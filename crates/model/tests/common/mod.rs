//! Faithful ports of the engine's critical sections onto the model
//! types, each with a deliberately-broken twin. The exhaustive tests
//! in `interleavings.rs` and the `BENCH_model.json` emitter both run
//! these.
//!
//! Ports mirror (line-for-line where the borrow checker allows):
//! - `SharedKthBound` (crates/gat/src/search.rs) — lock-free
//!   `fetch_min` on f64 bits, Relaxed.
//! - `CityRegistry` single-flight + lease-pinned eviction
//!   (crates/tenant/src/registry.rs).
//! - `BoundedQueue` (crates/service/src/queue.rs) — fail-fast push,
//!   blocking batched pop, close-drains-then-ends.
//! - `CounterSink`/`CounterScope` (crates/obs/src/counters.rs) —
//!   LIFO scope flush into shared atomic sinks.

// Each test crate compiles this module separately and uses a subset.
#![allow(dead_code)]

use atsq_model::check::atomic::{AtomicU64, Ordering};
use atsq_model::check::sync::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;

// ---- SharedKthBound ----------------------------------------------------

/// Port of `SharedKthBound`: non-negative f64 bits order like the
/// floats themselves, so integer `fetch_min` is float min.
pub struct KthBound(AtomicU64);

impl KthBound {
    pub fn new() -> Self {
        KthBound(AtomicU64::new(f64::INFINITY.to_bits()))
    }

    pub fn get(&self) -> f64 {
        // ordering: Relaxed — the value is the whole payload.
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    pub fn tighten(&self, dist: f64) {
        // ordering: Relaxed — monotonicity comes from fetch_min itself.
        self.0.fetch_min(dist.to_bits(), Ordering::Relaxed);
    }

    /// BROKEN TWIN: the load-then-store race `fetch_min` exists to
    /// prevent. A concurrent tighten between the load and the store is
    /// lost (and can even move the bound back *up*).
    pub fn tighten_racy(&self, dist: f64) {
        let cur = f64::from_bits(self.0.load(Ordering::Relaxed));
        if dist < cur {
            self.0.store(dist.to_bits(), Ordering::Relaxed);
        }
    }
}

// ---- CityRegistry single-flight ---------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CityState {
    Unloaded,
    Loading,
    Ready,
}

pub struct RegistrySt {
    pub state: CityState,
    pub factory_runs: u32,
}

/// Port of the registry's Mutex+Condvar single-flight state machine.
pub struct Registry {
    pub inner: Mutex<RegistrySt>,
    pub cond: Condvar,
}

impl Registry {
    pub fn new() -> Self {
        Registry {
            inner: Mutex::new(RegistrySt {
                state: CityState::Unloaded,
                factory_runs: 0,
            }),
            cond: Condvar::new(),
        }
    }

    /// The real `resolve_counted` shape: loop over the state under the
    /// lock; waiters re-check after every wakeup; the loader publishes
    /// Ready and notifies all with the factory run *outside* the lock.
    pub fn resolve(&self) {
        let mut g = self.inner.lock();
        loop {
            match g.state {
                CityState::Ready => return,
                CityState::Loading => self.cond.wait(&mut g),
                CityState::Unloaded => {
                    g.state = CityState::Loading;
                    drop(g);
                    // (factory body runs here, lock released)
                    g = self.inner.lock();
                    g.factory_runs += 1;
                    g.state = CityState::Ready;
                    self.cond.notify_all();
                    return;
                }
            }
        }
    }

    /// BROKEN TWIN: the double-check removed — the thread drops the
    /// lock *without* claiming the Loading state, so two first queries
    /// can both observe Unloaded and both run the factory.
    pub fn resolve_no_claim(&self) {
        let mut g = self.inner.lock();
        loop {
            match g.state {
                CityState::Ready => return,
                CityState::Loading => self.cond.wait(&mut g),
                CityState::Unloaded => {
                    drop(g);
                    // (factory body runs here — unclaimed!)
                    g = self.inner.lock();
                    g.factory_runs += 1;
                    g.state = CityState::Ready;
                    self.cond.notify_all();
                    return;
                }
            }
        }
    }

    /// BROKEN TWIN: `wait` treated as a one-shot — assumes any wakeup
    /// means Ready. An injected spurious wakeup while the loader is
    /// still in flight trips the assert.
    pub fn resolve_wait_once(&self) {
        let mut g = self.inner.lock();
        match g.state {
            CityState::Ready => {}
            CityState::Loading => {
                self.cond.wait(&mut g);
                assert!(
                    g.state == CityState::Ready,
                    "woke from wait while city still Loading (spurious wakeup unhandled)"
                );
            }
            CityState::Unloaded => {
                g.state = CityState::Loading;
                drop(g);
                g = self.inner.lock();
                g.factory_runs += 1;
                g.state = CityState::Ready;
                self.cond.notify_all();
            }
        }
    }
}

// ---- lease pinning vs eviction ----------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LeaseState {
    Ready,
    Evicted,
}

pub struct CitySt {
    pub state: LeaseState,
}

/// Port of the registry's lease/evict pair: leases are only created
/// under the registry lock; the evictor reads `inflight` under that
/// same lock, which is what makes the Relaxed counter sound.
pub struct City {
    pub inner: Mutex<CitySt>,
    pub inflight: AtomicU64,
}

impl City {
    pub fn new() -> Self {
        City {
            inner: Mutex::new(CitySt {
                state: LeaseState::Ready,
            }),
            inflight: AtomicU64::new(0),
        }
    }

    /// Takes a lease if the city is resident. Returns whether a lease
    /// was taken; the caller must `end_lease` after use.
    pub fn lease(&self) -> bool {
        let g = self.inner.lock();
        if g.state == LeaseState::Ready {
            // ordering: Relaxed — creation is serialized by the lock.
            self.inflight.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Lease drop is lock-free, like `CityLease::drop`.
    pub fn end_lease(&self) {
        // ordering: Relaxed — the evictor re-reads under the lock.
        self.inflight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Asserts the pinning invariant from the leaseholder's side.
    pub fn use_leased(&self) {
        let g = self.inner.lock();
        assert!(
            g.state == LeaseState::Ready,
            "city evicted while a lease (inflight > 0) was held"
        );
        drop(g);
    }

    /// Correct evictor: inflight is read under the registry lock.
    pub fn evict_if_idle(&self) -> bool {
        let mut g = self.inner.lock();
        // ordering: Relaxed — serialized with lease creation by the
        // lock; a stale non-zero read only delays eviction.
        if g.state == LeaseState::Ready && self.inflight.load(Ordering::Relaxed) == 0 {
            g.state = LeaseState::Evicted;
            return true;
        }
        false
    }

    /// BROKEN TWIN: reads `inflight` *before* taking the lock — a
    /// lease created in between is invisible and the city is evicted
    /// out from under it.
    pub fn evict_unlocked_check(&self) -> bool {
        let idle = self.inflight.load(Ordering::Relaxed) == 0;
        let mut g = self.inner.lock();
        if g.state == LeaseState::Ready && idle {
            g.state = LeaseState::Evicted;
            return true;
        }
        false
    }
}

// ---- BoundedQueue ------------------------------------------------------

pub struct QueueInner {
    pub items: VecDeque<u32>,
    pub closed: bool,
}

/// Port of `service/queue.rs`: fail-fast `try_push`, blocking batched
/// `pop_batch`, `close` drains then ends.
pub struct Queue {
    pub inner: Mutex<QueueInner>,
    pub available: Condvar,
    pub capacity: usize,
}

impl Queue {
    pub fn new(capacity: usize) -> Self {
        Queue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    pub fn try_push(&self, v: u32) -> bool {
        let mut g = self.inner.lock();
        if g.closed || g.items.len() >= self.capacity {
            return false; // fail fast; no slot consumed
        }
        g.items.push_back(v);
        drop(g);
        self.available.notify_one();
        true
    }

    /// BROKEN TWIN: pushes before checking capacity and leaks the slot
    /// on rejection — the "rejected" item is still delivered.
    pub fn try_push_leaky(&self, v: u32) -> bool {
        let mut g = self.inner.lock();
        g.items.push_back(v);
        if g.items.len() > self.capacity {
            return false; // BROKEN: item left in the queue
        }
        drop(g);
        self.available.notify_one();
        true
    }

    pub fn pop_batch(&self, max: usize) -> Option<Vec<u32>> {
        let mut g = self.inner.lock();
        loop {
            assert!(
                g.items.len() <= self.capacity,
                "queue holds {} items with capacity {} (slot leak)",
                g.items.len(),
                self.capacity
            );
            if !g.items.is_empty() {
                let n = g.items.len().min(max);
                let batch: Vec<u32> = g.items.drain(..n).collect();
                let more = !g.items.is_empty();
                drop(g);
                if more {
                    self.available.notify_one();
                }
                return Some(batch);
            }
            if g.closed {
                return None;
            }
            self.available.wait(&mut g);
        }
    }

    pub fn close(&self) {
        let mut g = self.inner.lock();
        g.closed = true;
        drop(g);
        self.available.notify_all();
    }

    /// BROKEN TWIN: close without the wakeup — a consumer already
    /// parked in `wait` never learns the queue ended (lost wakeup,
    /// surfaces as a model deadlock).
    pub fn close_silent(&self) {
        let mut g = self.inner.lock();
        g.closed = true;
        drop(g);
    }
}

// ---- obs counter scopes ------------------------------------------------

/// Port of `CounterSink`: totals accumulate via atomic RMW.
pub struct Sink {
    pub total: AtomicU64,
}

impl Sink {
    pub fn new() -> Self {
        Sink {
            total: AtomicU64::new(0),
        }
    }

    pub fn flush(&self, delta: u64) {
        // ordering: Relaxed — totals are a sum, no ordering needed.
        self.total.fetch_add(delta, Ordering::Relaxed);
    }

    /// BROKEN TWIN: flush as load-then-store — concurrent flushes from
    /// two threads lose updates.
    pub fn flush_racy(&self, delta: u64) {
        let t = self.total.load(Ordering::Relaxed);
        self.total.store(t + delta, Ordering::Relaxed);
    }
}

/// One worker's nested counter scopes, mirroring `CounterScope`'s
/// LIFO drop order: the inner scope flushes its delta first, the
/// outer scope's flush covers the whole extent (inner work included).
pub fn scoped_worker(outer: &Arc<Sink>, inner: &Arc<Sink>, racy: bool) {
    let mut counter = 0u64; // stands in for the thread-local cell
    let outer_baseline = counter;
    counter += 1; // work attributed to the outer scope only
    {
        let inner_baseline = counter;
        counter += 2; // work inside the inner scope
        let delta = counter - inner_baseline;
        if racy {
            inner.flush_racy(delta);
        } else {
            inner.flush(delta);
        }
    }
    // LIFO: by the time the outer scope flushes, this thread's own
    // inner flush must already be visible to itself (coherence).
    assert!(
        inner.total.load(Ordering::Relaxed) >= 2,
        "inner scope flushed after outer (LIFO nesting broken)"
    );
    counter += 3;
    let delta = counter - outer_baseline;
    if racy {
        outer.flush_racy(delta);
    } else {
        outer.flush(delta);
    }
}

// ---- correct-target bodies --------------------------------------------
//
// One body per modeled invariant, shared between the exhaustive tests
// and the `BENCH_model.json` emitter. Each asserts its own invariants
// and must pass under every explored schedule.

pub mod targets {
    use super::*;
    use atsq_model::check::thread;

    /// Two unsynchronized increments: the scheduler must surface both
    /// final values (asserted across schedules by the self-test).
    pub fn racing_increments() {
        let x = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let x = Arc::clone(&x);
                thread::spawn(move || {
                    let v = x.load(Ordering::Relaxed);
                    x.store(v + 1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let v = x.load(Ordering::Relaxed);
        assert!(v == 1 || v == 2, "impossible final value {v}");
    }

    /// `SharedKthBound::fetch_min`: monotone non-increasing under a
    /// concurrent reader, ties preserved, and no lost update — the
    /// final bound is the exact min of every tighten.
    pub fn fetch_min() {
        let b = Arc::new(KthBound::new());
        let writers: Vec<_> = [5.0_f64, 3.0, 3.0]
            .into_iter()
            .map(|d| {
                let b = Arc::clone(&b);
                thread::spawn(move || b.tighten(d))
            })
            .collect();
        // Main doubles as the concurrent reader: the bound may only
        // ratchet down.
        let first = b.get();
        let second = b.get();
        assert!(second <= first, "bound went back up: {first} -> {second}");
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(b.get(), 3.0, "lost update: final bound is not the min");
    }

    /// Single-flight: N concurrent first queries run the factory
    /// exactly once, and no waiter is lost (a lost wakeup would
    /// surface as a model deadlock).
    pub fn single_flight() {
        let reg = Arc::new(Registry::new());
        let others: Vec<_> = (0..2)
            .map(|_| {
                let reg = Arc::clone(&reg);
                thread::spawn(move || reg.resolve())
            })
            .collect();
        reg.resolve();
        for o in others {
            o.join().unwrap();
        }
        let g = reg.inner.lock();
        assert_eq!(g.factory_runs, 1, "single-flight ran the factory twice");
        assert_eq!(g.state, CityState::Ready);
    }

    /// Lease pinning: a city with inflight > 0 is never evicted.
    pub fn lease_pin() {
        let city = Arc::new(City::new());
        let user = {
            let city = Arc::clone(&city);
            thread::spawn(move || {
                if city.lease() {
                    city.use_leased();
                    city.end_lease();
                }
            })
        };
        let evictor = {
            let city = Arc::clone(&city);
            thread::spawn(move || {
                city.evict_if_idle();
            })
        };
        user.join().unwrap();
        evictor.join().unwrap();
    }

    /// Bounded queue: accepted items are delivered exactly once,
    /// rejection leaks no slot, close drains then ends the consumer.
    pub fn queue() {
        let q = Arc::new(Queue::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(batch) = q.pop_batch(2) {
                    got.extend(batch);
                }
                got
            })
        };
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || (1..=2).filter(|&v| q.try_push(v)).collect::<Vec<u32>>())
        };
        let accepted = producer.join().unwrap();
        q.close();
        let mut popped = consumer.join().unwrap();
        popped.sort_unstable();
        assert_eq!(
            popped, accepted,
            "delivered items differ from accepted items"
        );
    }

    /// Counter scopes: LIFO nesting per thread, and cross-thread
    /// flushes into shared sinks sum exactly.
    pub fn counter_scopes() {
        let outer = Arc::new(Sink::new());
        let inner = Arc::new(Sink::new());
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let o = Arc::clone(&outer);
                let i = Arc::clone(&inner);
                thread::spawn(move || scoped_worker(&o, &i, false))
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(
            outer.total.load(Ordering::Relaxed),
            12,
            "outer flushes lost"
        );
        assert_eq!(inner.total.load(Ordering::Relaxed), 4, "inner flushes lost");
    }

    /// Release/acquire publication: an Acquire load that sees the flag
    /// must also see the data written before the Release store.
    pub fn publish_release_acquire() {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let producer = {
            let (data, flag) = (Arc::clone(&data), Arc::clone(&flag));
            thread::spawn(move || {
                data.store(42, Ordering::Relaxed);
                // ordering: Release — publishes the data store above.
                flag.store(1, Ordering::Release);
            })
        };
        // ordering: Acquire — pairs with the Release store.
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(
                data.load(Ordering::Relaxed),
                42,
                "acquire read the flag but not the published data"
            );
        }
        producer.join().unwrap();
    }
}
