//! Emits `BENCH_model.json`: schedules explored / pruned / max DFS
//! depth per model-checked target, failing if any target explores
//! fewer than 10 schedules (a silently-degenerate model is a bug).
//! Runs as part of `cargo test -p atsq-model --features check`; the
//! CI `model` job publishes the artifact.
#![cfg(feature = "check")]

mod common;

use atsq_model::check::{explore, Config, Report};

#[test]
fn bench_model_json() {
    let targets: Vec<(&str, fn())> = vec![
        ("racing_increments", common::targets::racing_increments),
        ("fetch_min", common::targets::fetch_min),
        ("single_flight", common::targets::single_flight),
        ("lease_pin", common::targets::lease_pin),
        ("queue", common::targets::queue),
        ("counter_scopes", common::targets::counter_scopes),
        (
            "publish_release_acquire",
            common::targets::publish_release_acquire,
        ),
    ];
    let mut reports: Vec<Report> = Vec::new();
    for (name, body) in targets {
        let start = std::time::Instant::now();
        let report = explore(name, Config::default(), body);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:<24} schedules={:<7} pruned={:<7} max_depth={:<4} truncated={} ({ms:.0} ms)",
            report.name, report.schedules, report.pruned, report.max_depth, report.truncated
        );
        report.assert_ok();
        assert!(
            report.schedules >= 10,
            "target `{}` explored only {} schedules — degenerate model",
            report.name,
            report.schedules
        );
        reports.push(report);
    }

    let rows: Vec<String> = reports
        .iter()
        .map(|r| {
            format!(
                "    {{\"target\": \"{}\", \"schedules\": {}, \"pruned\": {}, \"max_depth\": {}, \"truncated\": {}}}",
                r.name, r.schedules, r.pruned, r.max_depth, r.truncated
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"model\",\n  \"preemption_bound\": {},\n  \"spurious_wakeups\": {},\n  \"min_schedules\": 10,\n  \"targets\": [\n{}\n  ]\n}}\n",
        Config::default().preemption_bound,
        Config::default().spurious_wakeups,
        rows.join(",\n")
    );
    let out = std::env::var("BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_model.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, json).expect("write BENCH_model.json");
    println!("wrote {out}");
}
