//! `atsq-model` — the workspace's concurrency-checking facade.
//!
//! Production crates import their synchronization primitives through
//! this crate's [`sync`], [`atomic`], and [`thread`] modules instead of
//! naming `std::sync` / `parking_lot` directly. In a normal build the
//! modules are **pure `pub use` re-exports** of the exact types the
//! code used before — same types, same layout, same codegen, zero
//! cost. Under `RUSTFLAGS="--cfg atsq_model"` (loom-style opt-in) the
//! same paths resolve to the deterministic model-checker types in
//! [`check`], so the very code that runs in production can be driven
//! through every bounded interleaving by the DFS explorer.
//!
//! The checker itself ([`check`]) also compiles under the `check`
//! cargo feature so its exhaustive suites can run against faithful
//! ports of the engine's critical sections without rebuilding the
//! whole workspace under the cfg:
//!
//! ```text
//! cargo test -p atsq-model --features check
//! ```
//!
//! What the checker models (and what it does not) is documented on
//! [`check`].

/// Locks and condition variables.
///
/// Normal builds: the `parking_lot` shim's non-poisoning `Mutex` /
/// `Condvar` / `RwLock` (which also carry the dynamic lock-order
/// checker). Under `cfg(atsq_model)`: the model checker's scheduled
/// equivalents.
pub mod sync {
    #[cfg(not(atsq_model))]
    pub use parking_lot::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

    #[cfg(atsq_model)]
    pub use crate::check::sync::{Condvar, Mutex, MutexGuard};
}

/// Atomic integers and flags.
///
/// Normal builds: `std::sync::atomic` types verbatim. Under
/// `cfg(atsq_model)`: model atomics with C11-style per-location store
/// histories, so a `Relaxed` load really can observe any write not
/// yet synchronized-to — the `// ordering:` annotations get executed,
/// not just read.
pub mod atomic {
    /// Memory orderings are the std enum in both build modes; the
    /// model types interpret it instead of forwarding it.
    pub use std::sync::atomic::Ordering;

    #[cfg(not(atsq_model))]
    pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize};

    #[cfg(atsq_model)]
    pub use crate::check::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize};
}

/// Thread spawn/join.
///
/// Normal builds: `std::thread`. Under `cfg(atsq_model)`: model
/// threads whose every step is chosen by the DFS scheduler.
pub mod thread {
    #[cfg(not(atsq_model))]
    pub use std::thread::{spawn, JoinHandle};

    #[cfg(atsq_model)]
    pub use crate::check::thread::{spawn, JoinHandle};
}

#[cfg(any(atsq_model, feature = "check"))]
pub mod check;
