//! Model atomics with C11-style store histories.
//!
//! Each type is a handle into the current execution's per-location
//! store history; every access is a scheduler decision point, and
//! loads additionally branch on *which* store they observe (see the
//! module docs on [`super`]). API mirrors the `std::sync::atomic`
//! subset the workspace uses.

pub use std::sync::atomic::Ordering;

use super::ctx;

macro_rules! model_atomic {
    ($name:ident, $prim:ty) => {
        /// Model stand-in for the `std` atomic of the same name.
        pub struct $name {
            id: usize,
        }

        impl $name {
            pub fn new(v: $prim) -> Self {
                let (rt, _me) = ctx();
                $name {
                    id: rt.register_atomic(v as u64),
                }
            }

            pub fn load(&self, ord: Ordering) -> $prim {
                let (rt, me) = ctx();
                rt.atomic_load(me, self.id, ord) as $prim
            }

            pub fn store(&self, v: $prim, ord: Ordering) {
                let (rt, me) = ctx();
                rt.atomic_store(me, self.id, v as u64, ord)
            }

            pub fn swap(&self, v: $prim, ord: Ordering) -> $prim {
                let (rt, me) = ctx();
                rt.atomic_rmw(me, self.id, ord, |_| v as u64) as $prim
            }

            pub fn fetch_add(&self, v: $prim, ord: Ordering) -> $prim {
                let (rt, me) = ctx();
                rt.atomic_rmw(me, self.id, ord, |old| {
                    (old as $prim).wrapping_add(v) as u64
                }) as $prim
            }

            pub fn fetch_sub(&self, v: $prim, ord: Ordering) -> $prim {
                let (rt, me) = ctx();
                rt.atomic_rmw(me, self.id, ord, |old| {
                    (old as $prim).wrapping_sub(v) as u64
                }) as $prim
            }

            pub fn fetch_min(&self, v: $prim, ord: Ordering) -> $prim {
                let (rt, me) = ctx();
                rt.atomic_rmw(me, self.id, ord, |old| (old as $prim).min(v) as u64) as $prim
            }

            pub fn fetch_max(&self, v: $prim, ord: Ordering) -> $prim {
                let (rt, me) = ctx();
                rt.atomic_rmw(me, self.id, ord, |old| (old as $prim).max(v) as u64) as $prim
            }

            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                let (rt, me) = ctx();
                rt.atomic_cas(me, self.id, current as u64, new as u64, success, failure)
                    .map(|v| v as $prim)
                    .map_err(|v| v as $prim)
            }

            /// Modeled as the strong variant: never fails spuriously.
            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.compare_exchange(current, new, success, failure)
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_struct(stringify!($name))
                    .field("cell", &self.id)
                    .finish()
            }
        }
    };
}

model_atomic!(AtomicU64, u64);
model_atomic!(AtomicU32, u32);
model_atomic!(AtomicUsize, usize);

/// Model stand-in for `std::sync::atomic::AtomicBool` (stored as 0/1).
pub struct AtomicBool {
    id: usize,
}

impl AtomicBool {
    pub fn new(v: bool) -> Self {
        let (rt, _me) = ctx();
        AtomicBool {
            id: rt.register_atomic(u64::from(v)),
        }
    }

    pub fn load(&self, ord: Ordering) -> bool {
        let (rt, me) = ctx();
        rt.atomic_load(me, self.id, ord) != 0
    }

    pub fn store(&self, v: bool, ord: Ordering) {
        let (rt, me) = ctx();
        rt.atomic_store(me, self.id, u64::from(v), ord)
    }

    pub fn swap(&self, v: bool, ord: Ordering) -> bool {
        let (rt, me) = ctx();
        rt.atomic_rmw(me, self.id, ord, |_| u64::from(v)) != 0
    }

    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        let (rt, me) = ctx();
        rt.atomic_cas(
            me,
            self.id,
            u64::from(current),
            u64::from(new),
            success,
            failure,
        )
        .map(|v| v != 0)
        .map_err(|v| v != 0)
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicBool")
            .field("cell", &self.id)
            .finish()
    }
}
