//! Vector clocks for the model's happens-before tracking.

/// A per-thread vector clock. Component `t` counts synchronization
/// events performed by model thread `t`; missing components are zero.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u32>);

impl VClock {
    /// Advances this thread's own component.
    pub(crate) fn tick(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    /// Pointwise maximum (join) with another clock.
    pub(crate) fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            if self.0[i] < v {
                self.0[i] = v;
            }
        }
    }

    /// Pointwise `<=`: true iff every component of `self` is at most
    /// the corresponding component of `other` — i.e. everything this
    /// clock has seen, `other` has also seen (happens-before or equal).
    pub(crate) fn le(&self, other: &VClock) -> bool {
        self.0
            .iter()
            .enumerate()
            .all(|(i, &v)| v <= other.0.get(i).copied().unwrap_or(0))
    }

    /// Feeds the clock into a running FNV hash (for state fingerprints).
    pub(crate) fn mix_into(&self, h: &mut u64) {
        for &v in &self.0 {
            *h = super::fnv(*h, u64::from(v));
        }
        *h = super::fnv(*h, 0x5643_4C4B); // "VCLK" separator
    }
}
