//! Model `Mutex`/`Condvar` matching the `parking_lot` shim's API
//! surface (non-poisoning `lock()`, `Condvar::wait(&mut guard)`).

use super::ctx;
use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};

/// Model mutex. The protected value lives inline; ownership and
/// blocking are arbitrated by the execution's scheduler, which also
/// explores every wake-up/barging order on contention.
pub struct Mutex<T: ?Sized> {
    id: usize,
    data: UnsafeCell<T>,
}

// SAFETY: the scheduler guarantees at most one thread holds the lock
// (and therefore touches `data`) at a time, exactly like a real mutex;
// `T: Send` is required because the value moves between threads.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
// SAFETY: see above — `&Mutex<T>` only yields `&T`/`&mut T` through a
// guard the scheduler hands to one thread at a time.
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

/// RAII guard for the model [`Mutex`].
#[must_use = "if unused the Mutex will immediately unlock"]
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        let (rt, _me) = ctx();
        Mutex {
            id: rt.register_mutex(),
            data: UnsafeCell::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Lock-order naming is a no-op under the model (the explorer
    /// finds real deadlocks instead of order inversions).
    pub fn set_name(&self, _name: &str) {}

    pub fn lock(&self) -> MutexGuard<'_, T> {
        let (rt, me) = ctx();
        rt.mutex_lock(me, self.id);
        MutexGuard { lock: self }
    }

    pub fn get_mut(&mut self) -> &mut T {
        // SAFETY: `&mut self` guarantees no guard is alive.
        unsafe { &mut *self.data.get() }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard exists only while the scheduler records
        // this thread as the mutex owner.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref` — exclusive ownership is scheduled.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // During an execution teardown (invariant panic or abort) the
        // scheduler is already stopping: re-entering it from unwind
        // would double-panic, and the lock state no longer matters.
        if std::thread::panicking() {
            return;
        }
        let (rt, me) = ctx();
        rt.mutex_unlock(me, self.lock.id);
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

/// Model condition variable (`parking_lot`-style `wait(&mut guard)`).
/// Each execution may inject a bounded number of spurious wakeups at
/// `wait` sites — callers that do not re-check their predicate in a
/// loop will be caught by the explorer.
pub struct Condvar {
    id: usize,
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl Condvar {
    pub fn new() -> Condvar {
        let (rt, _me) = ctx();
        Condvar {
            id: rt.register_condvar(),
        }
    }

    /// Atomically releases the guard's mutex and blocks until
    /// notified (or woken spuriously); the mutex is re-acquired —
    /// contending with every other thread — before returning.
    pub fn wait<T: ?Sized>(&self, guard: &mut MutexGuard<'_, T>) {
        let (rt, me) = ctx();
        rt.condvar_wait(me, self.id, guard.lock.id);
    }

    pub fn notify_one(&self) {
        let (rt, me) = ctx();
        rt.condvar_notify(me, self.id, false);
    }

    pub fn notify_all(&self) {
        let (rt, me) = ctx();
        rt.condvar_notify(me, self.id, true);
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").field("cv", &self.id).finish()
    }
}
