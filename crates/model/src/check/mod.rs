//! A loom-lite deterministic schedule explorer.
//!
//! [`explore`] runs a closure (the "body" of one concurrent test)
//! repeatedly, once per *schedule*. Within an execution every model
//! thread is a real OS thread, but exactly one runs at a time: each
//! visible operation (atomic access, lock, wait, notify, spawn, join)
//! first passes through a *decision point* where a DFS explorer picks
//! which runnable thread continues — and, for loads, *which store the
//! load observes*. Decisions are recorded on a stack and replayed
//! depth-first until every bounded interleaving has been visited.
//!
//! What is modeled:
//!
//! - **Weak memory.** Every atomic location keeps its full store
//!   history with vector clocks. A `Relaxed`/`Acquire` load may read
//!   *any* store not superseded by coherence or happens-before, so an
//!   under-synchronized `// ordering:` annotation produces a real
//!   stale read, not a lucky pass. `Acquire` loads join the release
//!   clock of the store they read; `Release` stores publish the
//!   writer's clock; RMWs always read the latest store (C11 atomicity)
//!   and carry release sequences forward.
//! - **Mutexes with barging.** Unlock wakes all waiters; whichever is
//!   scheduled first wins the lock. Lock/unlock synchronize clocks.
//! - **Condvars with spurious wakeups.** Each execution may inject a
//!   bounded number of spurious wakeups (default 1) at `wait` sites —
//!   a `wait` not wrapped in a predicate loop will be caught.
//! - **Deadlock and livelock.** "Every live thread is blocked" is
//!   reported as a failure (this is how lost wakeups surface); a step
//!   budget catches livelocks.
//!
//! Bounding and pruning: schedules are explored with a *preemption
//! bound* (default 3 — switching away from a still-runnable thread
//! consumes budget; switching away from a blocked one is free), and a
//! *state-hash prune*: when a fresh decision point's full state
//! fingerprint (thread statuses, local-state hashes, vector clocks,
//! store histories, lock owners, preemption budget) has been seen
//! before, its alternatives are skipped — an identical state's subtree
//! is already covered by the first occurrence. Deliberate
//! non-exhaustiveness: `SeqCst` is modeled as `AcqRel` (no global
//! total order) and `compare_exchange_weak` never fails spuriously.
//!
//! Invariant violations are plain `assert!`/`panic!` in the body: the
//! first panic aborts the execution and is reported in
//! [`Report::failure`] together with the schedule index.

pub mod atomic;
mod clock;
pub mod sync;
pub mod thread;

use clock::VClock;
use std::cell::RefCell;
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdGuard};

/// FNV-1a style mix step used for local-state hashes and fingerprints.
pub(crate) fn fnv(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x100_0000_01b3)
}

/// Exploration limits. `Default` matches the ISSUE contract:
/// preemption bound 3, one spurious wakeup per execution.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Max context switches away from a still-runnable thread.
    pub preemption_bound: usize,
    /// Max injected spurious condvar wakeups per execution.
    pub spurious_wakeups: usize,
    /// Hard cap on explored schedules (sets `Report::truncated`).
    pub max_schedules: u64,
    /// Per-execution step budget (livelock guard).
    pub max_steps: u64,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            preemption_bound: 3,
            spurious_wakeups: 1,
            max_schedules: 50_000,
            max_steps: 50_000,
        }
    }
}

/// Outcome of an [`explore`] run.
#[derive(Clone, Debug)]
pub struct Report {
    /// Target name (for `BENCH_model.json` and failure messages).
    pub name: String,
    /// Executions completed (including the failing one, if any).
    pub schedules: u64,
    /// Branch alternatives skipped by the state-hash prune.
    pub pruned: u64,
    /// Deepest decision stack seen across all executions.
    pub max_depth: usize,
    /// True if `max_schedules` stopped exploration early.
    pub truncated: bool,
    /// First invariant violation / deadlock / livelock, if any.
    pub failure: Option<String>,
}

impl Report {
    /// Asserts every explored schedule passed.
    pub fn assert_ok(&self) {
        if let Some(f) = &self.failure {
            panic!(
                "model target `{}` failed after {} schedules: {f}",
                self.name, self.schedules
            );
        }
    }

    /// Asserts the explorer found a counterexample (broken twins).
    pub fn assert_fails(&self) -> &str {
        match &self.failure {
            Some(f) => f,
            None => panic!(
                "model target `{}` was expected to fail but {} schedules all passed \
                 (the checker has no teeth here)",
                self.name, self.schedules
            ),
        }
    }
}

/// One decision point on the DFS stack.
#[derive(Clone, Copy, Debug)]
struct Frame {
    n: u32,
    chosen: u32,
}

/// Cross-execution DFS state.
#[derive(Default)]
struct Explorer {
    stack: Vec<Frame>,
    cursor: usize,
    visited: HashSet<u64>,
    pruned: u64,
    max_depth: usize,
}

/// Advances the DFS stack to the next unexplored branch. Returns
/// false when the whole bounded tree has been exhausted.
fn advance(stack: &mut Vec<Frame>) -> bool {
    while let Some(top) = stack.last_mut() {
        if top.chosen + 1 < top.n {
            top.chosen += 1;
            return true;
        }
        stack.pop();
    }
    false
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    Runnable,
    BlockedMutex(usize),
    BlockedCv(usize),
    BlockedJoin(usize),
    Finished,
}

impl Status {
    fn mix_into(self, h: &mut u64) {
        let v = match self {
            Status::Runnable => 1,
            Status::BlockedMutex(i) => 0x100 + i as u64,
            Status::BlockedCv(i) => 0x10_000 + i as u64,
            Status::BlockedJoin(i) => 0x1_000_000 + i as u64,
            Status::Finished => 2,
        };
        *h = fnv(*h, v);
    }
}

struct ThreadSt {
    status: Status,
    clock: VClock,
    /// Rolling hash of every op result this thread has seen; with a
    /// deterministic body, local state is a function of this.
    local_hash: u64,
}

/// One store in a location's modification order.
struct Store {
    val: u64,
    /// Writer's full clock at store time (visibility/supersession).
    writer: VClock,
    /// Release clock carried by this store (None for relaxed stores
    /// that do not continue a release sequence).
    release: Option<VClock>,
}

struct AtomCell {
    stores: Vec<Store>,
    /// Per-thread coherence floor: index of the newest store in
    /// modification order this thread has already read.
    read_floor: Vec<usize>,
}

impl AtomCell {
    fn floor(&self, tid: usize) -> usize {
        self.read_floor.get(tid).copied().unwrap_or(0)
    }
    fn set_floor(&mut self, tid: usize, idx: usize) {
        if self.read_floor.len() <= tid {
            self.read_floor.resize(tid + 1, 0);
        }
        if self.read_floor[tid] < idx {
            self.read_floor[tid] = idx;
        }
    }
}

struct MutexCell {
    owner: Option<usize>,
    clock: VClock,
}

/// Decision-point kinds (mixed into fingerprints so distinct kinds of
/// choices at a coincidentally-equal state do not alias).
mod kind {
    pub const SCHED: u8 = 1;
    pub const LOAD: u8 = 2;
    pub const SPURIOUS: u8 = 3;
    pub const NOTIFY: u8 = 4;
}

/// Mutable scheduler state, guarded by `Runtime::mx`.
struct Rt {
    cfg: Config,
    active: usize,
    preemptions: usize,
    spurious_left: usize,
    steps: u64,
    abort: bool,
    failure: Option<String>,
    threads: Vec<ThreadSt>,
    atomics: Vec<AtomCell>,
    mutexes: Vec<MutexCell>,
    condvars: usize,
    live_os: usize,
    explorer: Explorer,
}

impl Rt {
    fn runnable(&self, except: Option<usize>) -> Vec<usize> {
        (0..self.threads.len())
            .filter(|&t| Some(t) != except && self.threads[t].status == Status::Runnable)
            .collect()
    }

    fn fingerprint(&self, k: u8) -> u64 {
        let mut h = fnv(0xcbf2_9ce4_8422_2325, u64::from(k));
        h = fnv(h, self.active as u64);
        h = fnv(h, self.preemptions as u64);
        h = fnv(h, self.spurious_left as u64);
        for t in &self.threads {
            t.status.mix_into(&mut h);
            h = fnv(h, t.local_hash);
            t.clock.mix_into(&mut h);
        }
        for a in &self.atomics {
            h = fnv(h, a.stores.len() as u64);
            for s in &a.stores {
                h = fnv(h, s.val);
                s.writer.mix_into(&mut h);
                h = fnv(h, s.release.is_some() as u64);
            }
            for &f in &a.read_floor {
                h = fnv(h, f as u64);
            }
            h = fnv(h, 0x4154_4f4d); // "ATOM" separator
        }
        for m in &self.mutexes {
            h = fnv(h, m.owner.map_or(u64::MAX, |o| o as u64));
            m.clock.mix_into(&mut h);
        }
        h
    }

    fn bump_local(&mut self, me: usize, op: u64, payload: u64) {
        let t = &mut self.threads[me];
        t.local_hash = fnv(fnv(t.local_hash, op), payload);
    }
}

/// Picks a branch at a decision point: replayed from the DFS stack
/// when revisiting a prefix, otherwise branch 0 with a new frame
/// (pruned to a single branch if the state was seen before).
fn choose(rt: &mut Rt, k: u8, n: usize) -> usize {
    debug_assert!(n >= 1);
    if n == 1 {
        return 0; // forced choices are not recorded
    }
    let fp = rt.fingerprint(k);
    let ex = &mut rt.explorer;
    if ex.cursor < ex.stack.len() {
        let f = ex.stack[ex.cursor];
        ex.cursor += 1;
        return (f.chosen as usize).min(n - 1);
    }
    let n_eff = if ex.visited.contains(&fp) {
        ex.pruned += (n - 1) as u64;
        1
    } else {
        ex.visited.insert(fp);
        n as u32
    };
    ex.stack.push(Frame {
        n: n_eff,
        chosen: 0,
    });
    ex.cursor += 1;
    ex.max_depth = ex.max_depth.max(ex.stack.len());
    0
}

/// Panic payload used to unwind model threads when an execution is
/// torn down (after a failure, or a deliberate broken-twin trip).
struct AbortExecution;

thread_local! {
    pub(crate) static CTX: RefCell<Option<(Arc<Runtime>, usize)>> = const { RefCell::new(None) };
}

pub(crate) fn ctx() -> (Arc<Runtime>, usize) {
    CTX.with(|c| {
        c.borrow()
            .clone()
            .expect("atsq-model primitive used outside `check::explore`")
    })
}

fn in_model() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// Installs (once) a panic hook that silences panics raised inside
/// model threads — they are caught, recorded in the report, and
/// re-surfaced by `Report::assert_ok`, so the default stderr spew
/// would only drown the output of broken-twin tests.
fn install_quiet_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !in_model() {
                prev(info);
            }
        }));
    });
}

fn payload_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// One execution's shared scheduler. All model OS threads hold an
/// `Arc<Runtime>`; exactly one is *active* at any instant, the rest
/// park on `cv` until the explorer hands them the token.
pub(crate) struct Runtime {
    mx: StdMutex<Rt>,
    cv: StdCondvar,
    handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Runtime {
    fn new(cfg: Config, explorer: Explorer) -> Runtime {
        Runtime {
            mx: StdMutex::new(Rt {
                cfg,
                active: 0,
                preemptions: 0,
                spurious_left: cfg.spurious_wakeups,
                steps: 0,
                abort: false,
                failure: None,
                threads: Vec::new(),
                atomics: Vec::new(),
                mutexes: Vec::new(),
                condvars: 0,
                live_os: 0,
                explorer,
            }),
            cv: StdCondvar::new(),
            handles: StdMutex::new(Vec::new()),
        }
    }

    fn lock_rt(&self) -> StdGuard<'_, Rt> {
        self.mx
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Records a failure, tears the execution down, and unwinds the
    /// calling model thread.
    fn fail_locked(&self, mut rt: StdGuard<'_, Rt>, msg: String) -> ! {
        if rt.failure.is_none() {
            rt.failure = Some(msg);
        }
        rt.abort = true;
        self.cv.notify_all();
        drop(rt);
        std::panic::panic_any(AbortExecution)
    }

    fn abort_if_needed<'a>(&self, rt: StdGuard<'a, Rt>) -> StdGuard<'a, Rt> {
        if rt.abort {
            drop(rt);
            std::panic::panic_any(AbortExecution)
        }
        rt
    }

    /// Parks the calling thread until the scheduler makes it active
    /// (and runnable) again, or the execution aborts.
    fn park_until_active<'a>(&'a self, mut rt: StdGuard<'a, Rt>, me: usize) -> StdGuard<'a, Rt> {
        loop {
            rt = self.abort_if_needed(rt);
            if rt.active == me && rt.threads[me].status == Status::Runnable {
                return rt;
            }
            rt = self
                .cv
                .wait(rt)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// The calling thread is no longer runnable: hand the token to a
    /// chosen runnable thread (a free switch — no preemption cost) and
    /// park. Reports a deadlock if nothing is runnable.
    fn surrender_and_park<'a>(&'a self, mut rt: StdGuard<'a, Rt>, me: usize) -> StdGuard<'a, Rt> {
        let cands = rt.runnable(Some(me));
        if cands.is_empty() {
            let live: Vec<usize> = (0..rt.threads.len())
                .filter(|&t| rt.threads[t].status != Status::Finished)
                .collect();
            self.fail_locked(
                rt,
                format!("deadlock: all live threads {live:?} are blocked"),
            );
        }
        let c = choose(&mut rt, kind::SCHED, cands.len());
        rt.active = cands[c];
        self.cv.notify_all();
        self.park_until_active(rt, me)
    }

    /// Scheduling decision point before every visible operation: the
    /// explorer may preempt the calling thread in favor of any other
    /// runnable thread (bounded by the preemption budget).
    pub(crate) fn yield_point(&self, me: usize) {
        let mut rt = self.lock_rt();
        rt = self.abort_if_needed(rt);
        rt.steps += 1;
        if rt.steps > rt.cfg.max_steps {
            let max = rt.cfg.max_steps;
            self.fail_locked(rt, format!("step budget {max} exceeded (livelock?)"));
        }
        let mut cands = vec![me];
        if rt.preemptions < rt.cfg.preemption_bound {
            cands.extend(rt.runnable(Some(me)));
        }
        let c = choose(&mut rt, kind::SCHED, cands.len());
        let next = cands[c];
        if next != me {
            rt.preemptions += 1;
            rt.active = next;
            self.cv.notify_all();
            let rt = self.park_until_active(rt, me);
            drop(rt);
        }
    }

    // ---- registration (construction is thread-local: no decisions) ----

    pub(crate) fn register_atomic(&self, init: u64) -> usize {
        let mut rt = self.lock_rt();
        rt.atomics.push(AtomCell {
            stores: vec![Store {
                val: init,
                writer: VClock::default(),
                release: None,
            }],
            read_floor: Vec::new(),
        });
        rt.atomics.len() - 1
    }

    pub(crate) fn register_mutex(&self) -> usize {
        let mut rt = self.lock_rt();
        rt.mutexes.push(MutexCell {
            owner: None,
            clock: VClock::default(),
        });
        rt.mutexes.len() - 1
    }

    pub(crate) fn register_condvar(&self) -> usize {
        let mut rt = self.lock_rt();
        rt.condvars += 1;
        rt.condvars - 1
    }

    // ---- atomics ----

    fn acquiring(ord: atomic::Ordering) -> bool {
        use atomic::Ordering::*;
        matches!(ord, Acquire | AcqRel | SeqCst)
    }

    fn releasing(ord: atomic::Ordering) -> bool {
        use atomic::Ordering::*;
        matches!(ord, Release | AcqRel | SeqCst)
    }

    /// A (non-RMW) load: picks among every store visible under
    /// coherence + happens-before. Branch 0 is the newest store, so
    /// the first execution of every schedule prefix is sequentially
    /// consistent.
    pub(crate) fn atomic_load(&self, me: usize, id: usize, ord: atomic::Ordering) -> u64 {
        self.yield_point(me);
        let mut rt = self.lock_rt();
        let (latest, floor) = {
            let clock = rt.threads[me].clock.clone();
            let cell = &rt.atomics[id];
            let latest = cell.stores.len() - 1;
            let hb_floor = cell
                .stores
                .iter()
                .rposition(|s| s.writer.le(&clock))
                .unwrap_or(0);
            (latest, hb_floor.max(cell.floor(me)))
        };
        let c = choose(&mut rt, kind::LOAD, latest - floor + 1);
        let idx = latest - c;
        let val = rt.atomics[id].stores[idx].val;
        let release = if Self::acquiring(ord) {
            rt.atomics[id].stores[idx].release.clone()
        } else {
            None
        };
        rt.atomics[id].set_floor(me, idx);
        if let Some(rc) = release {
            rt.threads[me].clock.join(&rc);
        }
        rt.bump_local(me, 0x4c44, val); // "LD"
        val
    }

    pub(crate) fn atomic_store(&self, me: usize, id: usize, val: u64, ord: atomic::Ordering) {
        self.yield_point(me);
        let mut rt = self.lock_rt();
        rt.threads[me].clock.tick(me);
        let wc = rt.threads[me].clock.clone();
        let release = Self::releasing(ord).then(|| wc.clone());
        let cell = &mut rt.atomics[id];
        cell.stores.push(Store {
            val,
            writer: wc,
            release,
        });
        let latest = cell.stores.len() - 1;
        cell.set_floor(me, latest);
        rt.bump_local(me, 0x5354, val); // "ST"
    }

    /// Read-modify-write: always reads the latest store in
    /// modification order (C11 atomicity), carries release sequences
    /// forward. Returns the previous value.
    pub(crate) fn atomic_rmw(
        &self,
        me: usize,
        id: usize,
        ord: atomic::Ordering,
        f: impl FnOnce(u64) -> u64,
    ) -> u64 {
        self.yield_point(me);
        let mut rt = self.lock_rt();
        let (old, prev_release) = {
            let cell = &rt.atomics[id];
            let last = cell.stores.last().expect("init store always present");
            (last.val, last.release.clone())
        };
        if Self::acquiring(ord) {
            if let Some(rc) = &prev_release {
                rt.threads[me].clock.join(rc);
            }
        }
        rt.threads[me].clock.tick(me);
        let wc = rt.threads[me].clock.clone();
        let release = match (Self::releasing(ord), prev_release) {
            (true, Some(mut prc)) => {
                prc.join(&wc);
                Some(prc)
            }
            (true, None) => Some(wc.clone()),
            (false, prc) => prc, // RMW continues an existing release sequence
        };
        let new = f(old);
        let cell = &mut rt.atomics[id];
        cell.stores.push(Store {
            val: new,
            writer: wc,
            release,
        });
        let latest = cell.stores.len() - 1;
        cell.set_floor(me, latest);
        rt.bump_local(me, 0x524d57, old); // "RMW"
        old
    }

    /// Compare-exchange (strong; the weak variant never fails
    /// spuriously in this model). Failure is a load of the latest
    /// store with the failure ordering.
    pub(crate) fn atomic_cas(
        &self,
        me: usize,
        id: usize,
        current: u64,
        new: u64,
        success: atomic::Ordering,
        failure: atomic::Ordering,
    ) -> Result<u64, u64> {
        self.yield_point(me);
        let mut rt = self.lock_rt();
        let (old, prev_release) = {
            let cell = &rt.atomics[id];
            let last = cell.stores.last().expect("init store always present");
            (last.val, last.release.clone())
        };
        let latest = rt.atomics[id].stores.len() - 1;
        if old != current {
            if Self::acquiring(failure) {
                if let Some(rc) = &prev_release {
                    rt.threads[me].clock.join(rc);
                }
            }
            rt.atomics[id].set_floor(me, latest);
            rt.bump_local(me, 0x434153, old); // "CAS"
            return Err(old);
        }
        if Self::acquiring(success) {
            if let Some(rc) = &prev_release {
                rt.threads[me].clock.join(rc);
            }
        }
        rt.threads[me].clock.tick(me);
        let wc = rt.threads[me].clock.clone();
        let release = match (Self::releasing(success), prev_release) {
            (true, Some(mut prc)) => {
                prc.join(&wc);
                Some(prc)
            }
            (true, None) => Some(wc.clone()),
            (false, prc) => prc,
        };
        let cell = &mut rt.atomics[id];
        cell.stores.push(Store {
            val: new,
            writer: wc,
            release,
        });
        let newest = cell.stores.len() - 1;
        cell.set_floor(me, newest);
        rt.bump_local(me, 0x434153, old);
        Ok(old)
    }

    // ---- mutex / condvar ----

    pub(crate) fn mutex_lock(&self, me: usize, mid: usize) {
        self.yield_point(me);
        let mut rt = self.lock_rt();
        loop {
            if rt.mutexes[mid].owner.is_none() {
                rt.mutexes[mid].owner = Some(me);
                // Tick on acquire: makes the *order* of critical
                // sections clock-visible, so state fingerprints can
                // never alias two schedules whose mutex-protected
                // (unhashed) data diverged.
                rt.threads[me].clock.tick(me);
                let mc = rt.mutexes[mid].clock.clone();
                rt.threads[me].clock.join(&mc);
                rt.bump_local(me, 0x4c4f434b, mid as u64); // "LOCK"
                return;
            }
            rt.threads[me].status = Status::BlockedMutex(mid);
            rt = self.surrender_and_park(rt, me);
        }
    }

    fn unlock_inner(&self, rt: &mut Rt, me: usize, mid: usize) {
        debug_assert_eq!(rt.mutexes[mid].owner, Some(me), "unlock by non-owner");
        rt.threads[me].clock.tick(me);
        let tc = rt.threads[me].clock.clone();
        rt.mutexes[mid].clock.join(&tc);
        rt.mutexes[mid].owner = None;
        // Wake every waiter to re-contend (barging semantics): the
        // scheduler decides who actually wins.
        for t in 0..rt.threads.len() {
            if rt.threads[t].status == Status::BlockedMutex(mid) {
                rt.threads[t].status = Status::Runnable;
            }
        }
        rt.bump_local(me, 0x554e4c4b, mid as u64); // "UNLK"
    }

    pub(crate) fn mutex_unlock(&self, me: usize, mid: usize) {
        self.yield_point(me);
        let mut rt = self.lock_rt();
        self.unlock_inner(&mut rt, me, mid);
    }

    pub(crate) fn condvar_wait(&self, me: usize, cvid: usize, mid: usize) {
        self.yield_point(me);
        let mut rt = self.lock_rt();
        let mut spurious = false;
        if rt.spurious_left > 0 && choose(&mut rt, kind::SPURIOUS, 2) == 1 {
            rt.spurious_left -= 1;
            spurious = true;
        }
        self.unlock_inner(&mut rt, me, mid);
        if !spurious {
            rt.threads[me].status = Status::BlockedCv(cvid);
            rt = self.surrender_and_park(rt, me);
        }
        drop(rt);
        // Re-acquire, contending with everyone else — other threads
        // may run (and retake the lock) between wakeup and return.
        self.mutex_lock(me, mid);
    }

    pub(crate) fn condvar_notify(&self, me: usize, cvid: usize, all: bool) {
        self.yield_point(me);
        let mut rt = self.lock_rt();
        let waiters: Vec<usize> = (0..rt.threads.len())
            .filter(|&t| rt.threads[t].status == Status::BlockedCv(cvid))
            .collect();
        if waiters.is_empty() {
            rt.bump_local(me, 0x4e544659, 0); // "NTFY"
            return;
        }
        if all {
            for &w in &waiters {
                rt.threads[w].status = Status::Runnable;
            }
        } else {
            let c = choose(&mut rt, kind::NOTIFY, waiters.len());
            rt.threads[waiters[c]].status = Status::Runnable;
        }
        rt.bump_local(me, 0x4e544659, waiters.len() as u64);
    }

    // ---- threads ----

    /// Allocates a model thread id for a child (spawn decision point
    /// included). The child starts runnable but not active.
    pub(crate) fn alloc_thread(&self, parent: usize) -> usize {
        self.yield_point(parent);
        let mut rt = self.lock_rt();
        let tid = rt.threads.len();
        rt.threads[parent].clock.tick(parent);
        let mut child_clock = rt.threads[parent].clock.clone();
        child_clock.tick(tid);
        rt.threads.push(ThreadSt {
            status: Status::Runnable,
            clock: child_clock,
            local_hash: fnv(0x544944, tid as u64), // "TID"
        });
        rt.live_os += 1;
        rt.bump_local(parent, 0x5350574e, tid as u64); // "SPWN"
        tid
    }

    pub(crate) fn track_handle(&self, h: std::thread::JoinHandle<()>) {
        self.handles
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(h);
    }

    /// First thing a model OS thread does: park until scheduled.
    pub(crate) fn enter_thread(&self, me: usize) {
        let rt = self.lock_rt();
        let rt = self.park_until_active(rt, me);
        drop(rt);
    }

    pub(crate) fn join_thread(&self, me: usize, tid: usize) {
        self.yield_point(me);
        let mut rt = self.lock_rt();
        loop {
            if rt.threads[tid].status == Status::Finished {
                let c = rt.threads[tid].clock.clone();
                rt.threads[me].clock.join(&c);
                rt.bump_local(me, 0x4a4f494e, tid as u64); // "JOIN"
                return;
            }
            rt.threads[me].status = Status::BlockedJoin(tid);
            rt = self.surrender_and_park(rt, me);
        }
    }

    /// Normal completion of a model thread's body: wake joiners and
    /// hand the token onward.
    pub(crate) fn finish_thread(&self, me: usize) {
        let mut rt = self.lock_rt();
        rt.threads[me].status = Status::Finished;
        for t in 0..rt.threads.len() {
            if rt.threads[t].status == Status::BlockedJoin(me) {
                rt.threads[t].status = Status::Runnable;
            }
        }
        if rt.abort {
            self.cv.notify_all();
            return;
        }
        let cands = rt.runnable(None);
        if cands.is_empty() {
            if rt.threads.iter().any(|t| t.status != Status::Finished) {
                let live: Vec<usize> = (0..rt.threads.len())
                    .filter(|&t| rt.threads[t].status != Status::Finished)
                    .collect();
                if rt.failure.is_none() {
                    rt.failure = Some(format!(
                        "deadlock: threads {live:?} blocked with no runner left"
                    ));
                }
                rt.abort = true;
            }
            self.cv.notify_all();
            return;
        }
        let c = choose(&mut rt, kind::SCHED, cands.len());
        rt.active = cands[c];
        self.cv.notify_all();
    }

    /// A model thread's body panicked: record the failure (unless this
    /// is the teardown unwind) and tear the execution down.
    pub(crate) fn finish_panicked(&self, me: usize, payload: Box<dyn std::any::Any + Send>) {
        let mut rt = self.lock_rt();
        rt.threads[me].status = Status::Finished;
        if !payload.is::<AbortExecution>() && rt.failure.is_none() {
            rt.failure = Some(payload_msg(payload.as_ref()));
        }
        rt.abort = true;
        self.cv.notify_all();
    }

    /// Last thing a model OS thread does before exiting.
    pub(crate) fn os_thread_exited(&self) {
        let mut rt = self.lock_rt();
        rt.live_os -= 1;
        self.cv.notify_all();
    }
}

/// Runs `body` under every bounded interleaving. See module docs.
pub fn explore<F>(name: &str, cfg: Config, body: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    install_quiet_hook();
    let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
    let mut explorer = Explorer::default();
    let mut schedules = 0u64;
    let mut truncated = false;
    let failure;
    loop {
        let runtime = Arc::new(Runtime::new(cfg, std::mem::take(&mut explorer)));
        // Model thread 0 runs the body.
        {
            let mut rt = runtime.lock_rt();
            let mut clock = VClock::default();
            clock.tick(0);
            rt.threads.push(ThreadSt {
                status: Status::Runnable,
                clock,
                local_hash: fnv(0x544944, 0),
            });
            rt.active = 0;
            rt.live_os = 1;
        }
        let rt2 = Arc::clone(&runtime);
        let b = Arc::clone(&body);
        let h = std::thread::Builder::new()
            .name(format!("model-{name}-t0"))
            .spawn(move || {
                CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&rt2), 0)));
                rt2.enter_thread(0);
                match catch_unwind(AssertUnwindSafe(|| b())) {
                    Ok(()) => rt2.finish_thread(0),
                    Err(p) => rt2.finish_panicked(0, p),
                }
                CTX.with(|c| *c.borrow_mut() = None);
                rt2.os_thread_exited();
            })
            .expect("spawn model root thread");
        runtime.track_handle(h);
        // Wait for every model OS thread of this execution to exit.
        {
            let mut rt = runtime.lock_rt();
            while rt.live_os > 0 {
                rt = runtime
                    .cv
                    .wait(rt)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
        for h in runtime
            .handles
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .drain(..)
        {
            let _ = h.join();
        }
        schedules += 1;
        let mut rt = runtime.lock_rt();
        let fail_now = rt.failure.take();
        explorer = std::mem::take(&mut rt.explorer);
        drop(rt);
        if let Some(f) = fail_now {
            failure = Some(format!("schedule #{schedules}: {f}"));
            break;
        }
        if schedules >= cfg.max_schedules {
            truncated = true;
            failure = None;
            break;
        }
        if !advance(&mut explorer.stack) {
            failure = None;
            break;
        }
        explorer.cursor = 0;
    }
    Report {
        name: name.to_string(),
        schedules,
        pruned: explorer.pruned,
        max_depth: explorer.max_depth,
        truncated,
        failure,
    }
}
