//! Model threads: real OS threads whose every visible step is
//! serialized and chosen by the execution's scheduler.

use super::{ctx, CTX};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex as StdMutex};

/// Handle to a model thread; `join` blocks (in model time) until the
/// child finishes and synchronizes clocks, like `std::thread` join.
pub struct JoinHandle<T> {
    tid: usize,
    slot: Arc<StdMutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Joins the child. A child panic never reaches here — it aborts
    /// the whole execution and is reported by the explorer — so the
    /// `Result` (kept for `std` API parity) is always `Ok`.
    pub fn join(self) -> std::thread::Result<T> {
        let (rt, me) = ctx();
        rt.join_thread(me, self.tid);
        let v = self
            .slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
            .expect("joined model thread left no result");
        Ok(v)
    }
}

/// Spawns a model thread running `f`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (rt, me) = ctx();
    let tid = rt.alloc_thread(me);
    let slot = Arc::new(StdMutex::new(None));
    let slot2 = Arc::clone(&slot);
    let rt2 = Arc::clone(&rt);
    let os = std::thread::Builder::new()
        .name(format!("model-t{tid}"))
        .spawn(move || {
            CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&rt2), tid)));
            rt2.enter_thread(tid);
            match catch_unwind(AssertUnwindSafe(f)) {
                Ok(v) => {
                    *slot2
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(v);
                    rt2.finish_thread(tid);
                }
                Err(p) => rt2.finish_panicked(tid, p),
            }
            CTX.with(|c| *c.borrow_mut() = None);
            rt2.os_thread_exited();
        })
        .expect("spawn model os thread");
    rt.track_handle(os);
    JoinHandle { tid, slot }
}
