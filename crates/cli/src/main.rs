//! `atsq` — command-line front end. See `atsq help`.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    if let Err(e) = atsq_cli::run(&argv, &mut stdout) {
        eprintln!("{e}");
        std::process::exit(match e {
            atsq_cli::CliError::Usage(_) => 2,
            _ => 1,
        });
    }
}
