//! Library half of the `atsq` command-line tool.
//!
//! All functionality is in the library so it can be unit-tested
//! without spawning processes; `main.rs` only forwards `std::env`
//! arguments and maps errors to exit codes.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod args;
pub mod commands;

use std::fmt;

/// CLI-level errors (usage problems or propagated library errors).
#[derive(Debug)]
pub enum CliError {
    /// Bad command line.
    Usage(String),
    /// Underlying library failure.
    Lib(atsq_types::Error),
    /// I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}\n\n{USAGE}"),
            CliError::Lib(e) => write!(f, "{e}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<atsq_types::Error> for CliError {
    fn from(e: atsq_types::Error) -> Self {
        CliError::Lib(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
atsq — activity trajectory search (ICDE'13 reproduction)

USAGE:
  atsq generate --city <la|ny|tiny> [--scale S] [--seed N] --out FILE
  atsq import   --csv FILE [--min-checkins N] [--tips
                [--min-activity-count N] [--vocab-out FILE]] --out FILE
  atsq stats    --data FILE
  atsq query    --data FILE [--engine gat|gat-paged|il|rt|irt] [--k N]
                [--ordered] [--range TAU] --stop \"x,y:act1;act2\"
                [--stop ...] [--witness] [--shards S]
                [--partition hash|spatial] [--index-cache DIR]
  atsq index    build --data FILE --cache DIR [--shards S]
                [--partition hash|spatial]
  atsq index    inspect --cache DIR
  atsq bench    --data FILE [--queries N] [--k N]
  atsq serve    (--data FILE | --cities DIR) [--addr HOST:PORT]
                [--workers N] [--queue N] [--batch N]
                [--batch-threads N] [--cache N] [--deadline-ms MS]
                [--duration-s S] [--shards S]
                [--partition hash|spatial] [--index-cache DIR]
                [--slowlog-ms MS] [--slowlog-capacity N] [--no-tracing]
                [--tenant-memory-budget BYTES[kb|mb|gb]]
                [--default-city NAME] [--city-cap N]
  atsq loadgen  (--data FILE | --cities DIR [--city NAME ...])
                --addr HOST:PORT [--concurrency N]
                [--requests N] [--k N] [--pool N] [--zipf S]
                [--query-points N] [--acts-per-point N] [--seed N]
                [--deadline-ms MS] [--verify] [--latency-out FILE]
  atsq metrics  --addr HOST:PORT
  atsq slowlog  --addr HOST:PORT
  atsq cities   --addr HOST:PORT [--load NAME | --unload NAME]

Datasets are `atsq v1` text snapshots (see atsq-io). Activities in
--stop are names from the dataset vocabulary. With --tips the CSV's
fifth column is free text and activities are mined from it.

--shards S > 1 partitions the dataset into S GAT shards (hash or
spatial partitioner) searched in parallel with a shared k-th-best
pruning bound; results are identical to a single index.

--index-cache DIR reads/writes persistent index snapshots keyed by the
dataset's content hash: `atsq index build` pre-builds them, and `atsq
serve --index-cache DIR` then cold-starts by *loading* the index
instead of rebuilding it (answers are identical). A stale, corrupt or
missing snapshot silently falls back to a fresh build and re-saves.

`serve` answers newline-delimited JSON over TCP, e.g.
  {\"op\":\"atsq\",\"k\":5,\"stops\":[{\"x\":12.0,\"y\":7.5,\"acts\":[\"coffee\"]}]}
(`op` also: oatsq, atsq_range/oatsq_range with `tau`, stats, metrics,
slowlog, ping). Query responses echo a service-assigned `request_id`.
`loadgen` drives a running server closed-loop with Zipf-skewed query
reuse; --verify checks every response against a local engine and
--latency-out writes one JSON record (request id, status, latency) per
request. `metrics` prints the server's Prometheus exposition;
`slowlog` prints its slow-query log (per-request stage breakdown and
engine counters; see --slowlog-ms / --slowlog-capacity on serve).

`serve --cities DIR` hosts every sub-directory of DIR holding a
`city.atsq` snapshot as a named city, loaded lazily on first query and
evicted least-recently-queried when resident bytes exceed
--tenant-memory-budget (in-flight cities are never evicted). Query
requests may add `\"city\":\"NAME\"` to route to a city (absent =
default city); admin ops `cities`, `city_load` and `city_unload`
manage tenants — `atsq cities` is their CLI front end, and `loadgen
--cities DIR` round-robins requests across cities, verifying each
against that city's own dataset.";

/// Entry point shared by `main` and tests.
pub fn run(argv: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let Some(cmd) = argv.first() else {
        return Err(CliError::Usage("missing sub-command".into()));
    };
    let rest = &argv[1..];
    match cmd.as_str() {
        "generate" => commands::generate(rest, out),
        "import" => commands::import(rest, out),
        "stats" => commands::stats(rest, out),
        "query" => commands::query(rest, out),
        "index" => commands::index(rest, out),
        "bench" => commands::bench(rest, out),
        "serve" => commands::serve(rest, out),
        "loadgen" => commands::loadgen(rest, out),
        "metrics" => commands::metrics(rest, out),
        "slowlog" => commands::slowlog(rest, out),
        "cities" => commands::cities(rest, out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown sub-command `{other}`"))),
    }
}
