//! Minimal flag parser: `--name value` pairs, repeatable flags and
//! boolean switches. No external dependencies.

use crate::CliError;
use std::collections::HashMap;

/// Parsed flags: last-wins single values, accumulated repeats, and
/// boolean switches.
#[derive(Debug, Default)]
pub struct Flags {
    values: HashMap<String, Vec<String>>,
    switches: Vec<String>,
}

/// Parses `argv` given the sets of value-taking and boolean flag names
/// (without the leading `--`).
pub fn parse(
    argv: &[String],
    value_flags: &[&str],
    switch_flags: &[&str],
) -> Result<Flags, CliError> {
    let mut flags = Flags::default();
    let mut i = 0;
    while i < argv.len() {
        let arg = &argv[i];
        let Some(name) = arg.strip_prefix("--") else {
            return Err(CliError::Usage(format!("unexpected argument `{arg}`")));
        };
        if switch_flags.contains(&name) {
            flags.switches.push(name.to_owned());
        } else if value_flags.contains(&name) {
            i += 1;
            let value = argv
                .get(i)
                .ok_or_else(|| CliError::Usage(format!("--{name} needs a value")))?;
            flags
                .values
                .entry(name.to_owned())
                .or_default()
                .push(value.clone());
        } else {
            return Err(CliError::Usage(format!("unknown flag `--{name}`")));
        }
        i += 1;
    }
    Ok(flags)
}

impl Flags {
    /// Last value of a flag, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values
            .get(name)
            .and_then(|v| v.last())
            .map(String::as_str)
    }

    /// All values of a repeatable flag.
    pub fn get_all(&self, name: &str) -> &[String] {
        self.values.get(name).map_or(&[], Vec::as_slice)
    }

    /// Required value.
    pub fn require(&self, name: &str) -> Result<&str, CliError> {
        self.get(name)
            .ok_or_else(|| CliError::Usage(format!("--{name} is required")))
    }

    /// Whether a boolean switch was given.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// Parsed numeric value with a default.
    pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{name} got invalid value `{v}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_values_switches_and_repeats() {
        let f = parse(
            &sv(&["--k", "5", "--ordered", "--stop", "a", "--stop", "b"]),
            &["k", "stop"],
            &["ordered"],
        )
        .unwrap();
        assert_eq!(f.get("k"), Some("5"));
        assert!(f.has("ordered"));
        assert!(!f.has("witness"));
        assert_eq!(f.get_all("stop"), &["a".to_string(), "b".to_string()]);
        assert_eq!(f.num::<usize>("k", 9).unwrap(), 5);
        assert_eq!(f.num::<usize>("missing", 9).unwrap(), 9);
    }

    #[test]
    fn rejects_unknown_and_missing() {
        assert!(parse(&sv(&["--bogus"]), &["k"], &[]).is_err());
        assert!(parse(&sv(&["--k"]), &["k"], &[]).is_err());
        assert!(parse(&sv(&["stray"]), &["k"], &[]).is_err());
        let f = parse(&sv(&[]), &["k"], &[]).unwrap();
        assert!(f.require("k").is_err());
        assert!(f.num::<usize>("k", 1).is_ok());
    }

    #[test]
    fn invalid_number_is_usage_error() {
        let f = parse(&sv(&["--k", "xyz"]), &["k"], &[]).unwrap();
        assert!(f.num::<usize>("k", 1).is_err());
    }
}
