//! The sub-commands.

use crate::args::parse;
use crate::CliError;
use atsq_core::{
    matching, snapshot, CacheOutcome, Engine, GatEngine, IndexCache, Partition, QueryEngine,
    ShardedEngine,
};
use atsq_datagen::CityConfig;
use atsq_service::{LoadgenConfig, Server, Service, ServiceConfig};
use atsq_types::{ActivitySet, Dataset, Point, Query, QueryPoint};
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::time::{Duration, Instant};

fn load_dataset(path: &str) -> Result<Dataset, CliError> {
    let file = File::open(path)?;
    Ok(atsq_io::read_dataset(BufReader::new(file))?)
}

fn save_dataset(dataset: &Dataset, path: &str) -> Result<(), CliError> {
    let file = File::create(path)?;
    atsq_io::write_dataset(dataset, BufWriter::new(file))?;
    Ok(())
}

/// `atsq generate` — synthesise a city and snapshot it.
pub fn generate(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let f = parse(argv, &["city", "scale", "seed", "out"], &[])?;
    let scale: f64 = f.num("scale", 0.01)?;
    let mut config = match f.require("city")? {
        "la" => CityConfig::la_like(scale),
        "ny" => CityConfig::ny_like(scale),
        "tiny" => CityConfig::tiny(0),
        other => {
            return Err(CliError::Usage(format!(
                "--city must be la, ny or tiny (got `{other}`)"
            )))
        }
    };
    config.seed = f.num("seed", config.seed)?;
    let path = f.require("out")?;
    let dataset = atsq_datagen::generate(&config)?;
    save_dataset(&dataset, path)?;
    writeln!(
        out,
        "wrote {} ({} trajectories, {} check-ins) to {path}",
        config.name,
        dataset.len(),
        dataset.stats().venues
    )?;
    Ok(())
}

/// `atsq import` — check-in CSV to snapshot. With `--tips` the fifth
/// column is free text and activities are mined from it (tokenizer →
/// stopwords → stemming → phrase mining, see `atsq-text`).
pub fn import(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let f = parse(
        argv,
        &[
            "csv",
            "min-checkins",
            "out",
            "min-activity-count",
            "vocab-out",
        ],
        &["tips"],
    )?;
    let csv = f.require("csv")?;
    let min: usize = f.num("min-checkins", 2)?;
    let path = f.require("out")?;
    let file = File::open(csv)?;
    let dataset = if f.has("tips") {
        let config = atsq_text::ExtractorConfig {
            min_activity_count: f.num("min-activity-count", 3)?,
            ..atsq_text::ExtractorConfig::default()
        };
        let (dataset, extractor) =
            atsq_io::import_checkin_tips(BufReader::new(file), min, &config)?;
        writeln!(
            out,
            "mined {} distinct activities from tips",
            extractor.vocabulary_len()
        )?;
        if let Some(vocab_path) = f.get("vocab-out") {
            let file = File::create(vocab_path)?;
            atsq_io::write_extractor(&extractor, std::io::BufWriter::new(file))?;
            writeln!(out, "wrote fitted extractor to {vocab_path}")?;
        }
        dataset
    } else {
        if f.get("vocab-out").is_some() {
            return Err(CliError::Usage("--vocab-out requires --tips".into()));
        }
        atsq_io::import_checkins(BufReader::new(file), min)?
    };
    save_dataset(&dataset, path)?;
    writeln!(
        out,
        "imported {} trajectories ({} check-ins, {} activities) to {path}",
        dataset.len(),
        dataset.stats().venues,
        dataset.stats().distinct_activities
    )?;
    Ok(())
}

/// `atsq stats` — Table-IV style numbers for a snapshot.
pub fn stats(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let f = parse(argv, &["data"], &[])?;
    let dataset = load_dataset(f.require("data")?)?;
    writeln!(out, "{}", dataset.stats())?;
    let b = dataset.bounds();
    writeln!(
        out,
        "bounds             {:.2} km × {:.2} km",
        b.width(),
        b.height()
    )?;
    Ok(())
}

/// Parses one `--stop "x,y:act1;act2"` specifier.
fn parse_stop(spec: &str, dataset: &Dataset) -> Result<QueryPoint, CliError> {
    let (coords, acts) = spec
        .split_once(':')
        .ok_or_else(|| CliError::Usage(format!("stop `{spec}` needs `x,y:activities`")))?;
    let (x, y) = coords
        .split_once(',')
        .ok_or_else(|| CliError::Usage(format!("stop `{spec}` needs `x,y` coordinates")))?;
    let x: f64 = x
        .trim()
        .parse()
        .map_err(|_| CliError::Usage(format!("bad x in `{spec}`")))?;
    let y: f64 = y
        .trim()
        .parse()
        .map_err(|_| CliError::Usage(format!("bad y in `{spec}`")))?;
    let mut ids = Vec::new();
    for name in acts.split(';').map(str::trim).filter(|s| !s.is_empty()) {
        let id = dataset.vocabulary().get(name).ok_or_else(|| {
            CliError::Usage(format!("activity `{name}` not in the dataset vocabulary"))
        })?;
        ids.push(id);
    }
    if ids.is_empty() {
        return Err(CliError::Usage(format!(
            "stop `{spec}` lists no activities"
        )));
    }
    Ok(QueryPoint::new(
        Point::new(x, y),
        ActivitySet::from_ids(ids),
    ))
}

/// Parses the shared `--shards` / `--partition` pair.
fn parse_sharding(f: &crate::args::Flags) -> Result<(usize, Partition), CliError> {
    let shards: usize = f.num("shards", 1)?;
    if shards == 0 {
        return Err(CliError::Usage("--shards must be ≥ 1".into()));
    }
    let partition = f
        .get("partition")
        .unwrap_or("hash")
        .parse::<Partition>()
        .map_err(|e| CliError::Usage(e.to_string()))?;
    Ok((shards, partition))
}

fn build_engine(dataset: &Dataset, name: &str) -> Result<Engine, CliError> {
    Ok(match name {
        "gat" => Engine::Gat(GatEngine::build(dataset)?),
        "gat-paged" => Engine::Gat(GatEngine::build_paged(
            dataset,
            atsq_core::GatConfig::default(),
            &atsq_core::PagedAplConfig::default(),
        )?),
        "il" => Engine::Il(atsq_core::IlEngine::build(dataset)),
        "rt" => Engine::Rt(atsq_core::RtEngine::build(dataset)),
        "irt" => Engine::Irt(atsq_core::IrtEngine::build(dataset)),
        other => {
            return Err(CliError::Usage(format!(
                "--engine must be gat, gat-paged, il, rt or irt (got `{other}`)"
            )))
        }
    })
}

/// `atsq query` — run one ATSQ/OATSQ (top-k or range) and print the
/// results, optionally with witness venues.
pub fn query(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let f = parse(
        argv,
        &[
            "data",
            "engine",
            "k",
            "range",
            "stop",
            "shards",
            "partition",
            "index-cache",
        ],
        &["ordered", "witness"],
    )?;
    let dataset = load_dataset(f.require("data")?)?;
    let stops = f.get_all("stop");
    if stops.is_empty() {
        return Err(CliError::Usage("at least one --stop is required".into()));
    }
    let points: Result<Vec<QueryPoint>, CliError> =
        stops.iter().map(|s| parse_stop(s, &dataset)).collect();
    let query = Query::new(points?)?;
    let (shards, partition) = parse_sharding(&f)?;
    let engine_name = f.get("engine").unwrap_or("gat");
    let cache = f.get("index-cache").map(IndexCache::new);
    if cache.is_some() && engine_name != "gat" {
        return Err(CliError::Usage(
            "--index-cache only applies to the default gat engine".into(),
        ));
    }
    let engine = if shards > 1 && engine_name != "gat" {
        return Err(CliError::Usage(
            "--shards only applies to the default gat engine".into(),
        ));
    } else if shards > 1 || cache.is_some() {
        let (engine, outcome) = Engine::build_gat(&dataset, shards, partition, cache.as_ref())?;
        if let Some(outcome) = outcome {
            writeln!(out, "{}", describe_outcome(&outcome))?;
        }
        engine
    } else {
        build_engine(&dataset, engine_name)?
    };
    let ordered = f.has("ordered");

    let results = if let Some(tau) = f.get("range") {
        let tau: f64 = tau
            .parse()
            .map_err(|_| CliError::Usage("--range needs a number".into()))?;
        if ordered {
            engine.oatsq_range(&dataset, &query, tau)
        } else {
            engine.atsq_range(&dataset, &query, tau)
        }
    } else {
        let k: usize = f.num("k", 9)?;
        if ordered {
            engine.oatsq(&dataset, &query, k)
        } else {
            engine.atsq(&dataset, &query, k)
        }
    };

    let label = if ordered { "Dmom" } else { "Dmm" };
    writeln!(out, "{} result(s) [{}]:", results.len(), engine.name())?;
    for r in &results {
        let tr = dataset.trajectory(r.trajectory);
        writeln!(
            out,
            "  {}  {label} = {:.3} km  ({} check-ins)",
            r.trajectory,
            r.distance,
            tr.len()
        )?;
        if f.has("witness") {
            let ws = if ordered {
                matching::witness::min_order_match_witness(&query, &tr.points)
            } else {
                matching::witness::min_match_witness(&query, &tr.points)
            };
            if let Some(ws) = ws {
                for (i, w) in ws.iter().enumerate() {
                    let venues: Vec<String> = w.points.iter().map(|&p| format!("#{p}")).collect();
                    writeln!(
                        out,
                        "      stop {}: venues {} at cost {:.3} km",
                        i + 1,
                        venues.join(", "),
                        w.distance
                    )?;
                }
            }
        }
    }
    Ok(())
}

/// `atsq index build` / `atsq index inspect` — manage persistent GAT
/// index snapshots so `atsq serve` / `atsq query` can cold-start
/// without rebuilding the index.
pub fn index(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let Some(action) = argv.first() else {
        return Err(CliError::Usage(
            "`atsq index` needs an action: build or inspect".into(),
        ));
    };
    match action.as_str() {
        "build" => index_build(&argv[1..], out),
        "inspect" => index_inspect(&argv[1..], out),
        other => Err(CliError::Usage(format!(
            "unknown index action `{other}` (expected build or inspect)"
        ))),
    }
}

fn index_build(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let f = parse(argv, &["data", "cache", "shards", "partition"], &[])?;
    let dataset = load_dataset(f.require("data")?)?;
    let cache = IndexCache::new(f.require("cache")?);
    let (shards, partition) = parse_sharding(&f)?;
    let hash = dataset.content_hash();
    let t0 = Instant::now();
    let paths = if shards > 1 {
        let engine = ShardedEngine::build(&dataset, shards, partition)?;
        cache.save_sharded(&dataset, &engine)?
    } else {
        let index = atsq_core::GatIndex::build(&dataset)?;
        vec![cache.save_index(&dataset, &index)?]
    };
    let built_ms = t0.elapsed().as_secs_f64() * 1e3;
    writeln!(
        out,
        "built and snapshotted the index for dataset {hash:016x} in {built_ms:.0} ms"
    )?;
    for p in &paths {
        writeln!(out, "  wrote {}", p.display())?;
    }
    writeln!(
        out,
        "serve it with: atsq serve --data <snapshot> --index-cache {}",
        cache.dir().display()
    )?;
    Ok(())
}

fn index_inspect(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let f = parse(argv, &["cache"], &[])?;
    let cache = IndexCache::new(f.require("cache")?);
    let entries = cache.entries()?;
    if entries.is_empty() {
        writeln!(out, "no snapshots in {}", cache.dir().display())?;
        return Ok(());
    }
    for path in entries {
        match snapshot::inspect(&path) {
            Ok(info) => writeln!(
                out,
                "{}  kind {}  v{}  dataset {:016x}  payload {} bytes",
                path.display(),
                info.kind,
                info.version,
                info.dataset_hash,
                info.payload_bytes
            )?,
            Err(e) => writeln!(out, "{}  INVALID: {e}", path.display())?,
        }
    }
    Ok(())
}

/// Renders a cache outcome for the operator: did this start load a
/// snapshot, or (partially) build? The `Rebuilt` string is already a
/// complete account of what happened — rendered verbatim.
fn describe_outcome(outcome: &CacheOutcome) -> &str {
    match outcome {
        CacheOutcome::Loaded => "loaded index snapshot",
        CacheOutcome::Rebuilt(why) => why,
    }
}

/// `atsq bench` — quick per-engine timing on a snapshot.
pub fn bench(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let f = parse(argv, &["data", "queries", "k"], &[])?;
    let dataset = load_dataset(f.require("data")?)?;
    let n: usize = f.num("queries", 10)?;
    let k: usize = f.num("k", 9)?;
    let queries =
        atsq_datagen::generate_queries(&dataset, &atsq_datagen::QueryGenConfig::default(), n);
    let engines = Engine::build_all(&dataset)?;
    writeln!(out, "{:<6}{:>14}{:>14}", "engine", "ATSQ ms", "OATSQ ms")?;
    for e in &engines {
        let t = Instant::now();
        for q in &queries {
            std::hint::black_box(e.atsq(&dataset, q, k));
        }
        let atsq_ms = t.elapsed().as_secs_f64() * 1e3 / n as f64;
        let t = Instant::now();
        for q in &queries {
            std::hint::black_box(e.oatsq(&dataset, q, k));
        }
        let oatsq_ms = t.elapsed().as_secs_f64() * 1e3 / n as f64;
        writeln!(out, "{:<6}{:>14.2}{:>14.2}", e.name(), atsq_ms, oatsq_ms)?;
    }
    Ok(())
}

/// Parses a human-friendly byte count: a plain number is bytes, and a
/// `kb` / `mb` / `gb` suffix (case-insensitive) scales it.
fn parse_bytes(spec: &str) -> Result<u64, CliError> {
    let lower = spec.trim().to_ascii_lowercase();
    let (digits, scale) = if let Some(d) = lower.strip_suffix("kb") {
        (d, 1u64 << 10)
    } else if let Some(d) = lower.strip_suffix("mb") {
        (d, 1u64 << 20)
    } else if let Some(d) = lower.strip_suffix("gb") {
        (d, 1u64 << 30)
    } else {
        (lower.as_str(), 1u64)
    };
    let n: u64 = digits
        .trim()
        .parse()
        .map_err(|_| CliError::Usage(format!("bad byte count `{spec}` (try 512kb, 64mb, 1gb)")))?;
    Ok(n.saturating_mul(scale))
}

/// `atsq serve` — share one dataset + GAT index (or, with `--cities`,
/// a whole registry of lazily-loaded city datasets) across a worker
/// pool behind a newline-delimited-JSON TCP endpoint.
pub fn serve(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let f = parse(
        argv,
        &[
            "data",
            "cities",
            "tenant-memory-budget",
            "default-city",
            "city-cap",
            "addr",
            "workers",
            "queue",
            "batch",
            "batch-threads",
            "cache",
            "deadline-ms",
            "duration-s",
            "shards",
            "partition",
            "index-cache",
            "slowlog-ms",
            "slowlog-capacity",
        ],
        &["no-tracing"],
    )?;
    let defaults = ServiceConfig::default();
    let (shards, partition) = parse_sharding(&f)?;
    let config = ServiceConfig {
        workers: f.num("workers", defaults.workers)?,
        queue_capacity: f.num("queue", defaults.queue_capacity)?,
        batch_size: f.num("batch", defaults.batch_size)?,
        batch_threads: f.num("batch-threads", defaults.batch_threads)?,
        cache_capacity: f.num("cache", defaults.cache_capacity)?,
        default_deadline: match f.get("deadline-ms") {
            None => None,
            Some(_) => Some(Duration::from_millis(f.num("deadline-ms", 0u64)?)),
        },
        shards,
        partition,
        index_cache: f.get("index-cache").map(std::path::PathBuf::from),
        tracing: !f.has("no-tracing"),
        slowlog_capacity: f.num("slowlog-capacity", defaults.slowlog_capacity)?,
        slowlog_threshold: Duration::from_millis(
            f.num("slowlog-ms", defaults.slowlog_threshold.as_millis() as u64)?,
        ),
        city_inflight_cap: f.num("city-cap", defaults.city_inflight_cap)?,
    };
    let duration_s: u64 = f.num("duration-s", 0)?;
    let workers = config.workers;
    let sharding = if shards > 1 {
        format!(", {shards} {partition} shards")
    } else {
        String::new()
    };

    let service = match (f.get("cities"), f.get("data")) {
        (Some(_), Some(_)) => {
            return Err(CliError::Usage(
                "--cities and --data are mutually exclusive".into(),
            ))
        }
        (None, None) => {
            return Err(CliError::Usage("serve needs --data or --cities".into()));
        }
        // Multi-city: every subdirectory of DIR with a `city.atsq`
        // becomes a lazily-loaded tenant; nothing builds until a
        // city's first query (or an explicit `city_load`).
        (Some(dir), None) => {
            let opts = atsq_tenant::DiskRegistryOptions {
                shards,
                partition,
                memory_budget: f.get("tenant-memory-budget").map(parse_bytes).transpose()?,
                default_city: f.get("default-city").map(str::to_owned),
            };
            let registry = atsq_tenant::registry_from_dir(std::path::Path::new(dir), &opts)
                .map_err(|e| CliError::Io(std::io::Error::other(e.to_string())))?;
            let names: Vec<String> = registry
                .cities()
                .iter()
                .map(|c| c.city.as_str().to_owned())
                .collect();
            let budget = opts
                .memory_budget
                .map_or("unbounded".to_owned(), |b| format!("{b} bytes"));
            writeln!(
                out,
                "hosting {} cities from {dir} [{}] (default {}, budget {budget})",
                names.len(),
                names.join(", "),
                registry.default_city()
            )?;
            Service::start_registry(std::sync::Arc::new(registry), config)
        }
        (None, Some(path)) => {
            let dataset = load_dataset(path)?;
            let n = dataset.len();
            let t0 = Instant::now();
            let (service, outcome) = Service::build_with_outcome(dataset, config)?;
            let startup_ms = t0.elapsed().as_secs_f64() * 1e3;
            if let Some(outcome) = &outcome {
                writeln!(out, "{} in {startup_ms:.0} ms", describe_outcome(outcome))?;
            }
            writeln!(out, "loaded {n} trajectories from {path}")?;
            service
        }
    };
    let server = Server::bind(service.handle(), f.get("addr").unwrap_or("127.0.0.1:7878"))
        .map_err(CliError::Io)?;
    writeln!(
        out,
        "serving on {} ({workers} workers{sharding}); NDJSON, one request per line",
        server.local_addr()
    )?;
    if duration_s == 0 {
        // Run until killed.
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    std::thread::sleep(Duration::from_secs(duration_s));
    server.stop();
    let stats = service.stats();
    service.shutdown();
    writeln!(out, "{stats}")?;
    Ok(())
}

/// `atsq loadgen` — closed-loop load generation against a running
/// `atsq serve`, with optional response verification. With `--cities
/// DIR` (plus repeatable `--city NAME` to select a subset) requests
/// round-robin across the named cities of a multi-city server.
pub fn loadgen(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let f = parse(
        argv,
        &[
            "data",
            "cities",
            "city",
            "addr",
            "concurrency",
            "requests",
            "k",
            "pool",
            "zipf",
            "query-points",
            "acts-per-point",
            "deadline-ms",
            "seed",
            "latency-out",
        ],
        &["verify"],
    )?;
    let addr = f.require("addr")?;
    let defaults = LoadgenConfig::default();
    let cfg = LoadgenConfig {
        concurrency: f.num("concurrency", defaults.concurrency)?,
        requests: f.num("requests", defaults.requests)?,
        k: f.num("k", defaults.k)?,
        pool: f.num("pool", defaults.pool)?,
        zipf_s: f.num("zipf", defaults.zipf_s)?,
        query_points: f.num("query-points", defaults.query_points)?,
        acts_per_point: f.num("acts-per-point", defaults.acts_per_point)?,
        deadline_ms: f
            .get("deadline-ms")
            .map(|_| f.num("deadline-ms", 0u64))
            .transpose()?,
        verify: f.has("verify"),
        seed: f.num("seed", defaults.seed)?,
        latency_out: f.get("latency-out").map(std::path::PathBuf::from),
    };
    let workloads = match (f.get("cities"), f.get("data")) {
        (Some(_), Some(_)) => {
            return Err(CliError::Usage(
                "--cities and --data are mutually exclusive".into(),
            ))
        }
        (None, None) => {
            return Err(CliError::Usage("loadgen needs --data or --cities".into()));
        }
        (None, Some(path)) => {
            if !f.get_all("city").is_empty() {
                return Err(CliError::Usage("--city requires --cities DIR".into()));
            }
            vec![atsq_service::CityWorkload {
                city: None,
                dataset: load_dataset(path)?,
            }]
        }
        // Multi-city: the datasets come from the same layout `serve
        // --cities` reads (DIR/<name>/city.atsq); --city narrows the
        // target set, defaulting to every city in the directory.
        (Some(dir), None) => {
            let dir = std::path::Path::new(dir);
            let mut names: Vec<String> = f.get_all("city").to_vec();
            if names.is_empty() {
                let mut found = Vec::new();
                for entry in std::fs::read_dir(dir)? {
                    let path = entry?.path();
                    if path.join(atsq_tenant::CITY_DATASET_FILE).is_file() {
                        if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                            found.push(name.to_owned());
                        }
                    }
                }
                found.sort();
                names = found;
            }
            if names.is_empty() {
                return Err(CliError::Usage(format!(
                    "no cities found under {}",
                    dir.display()
                )));
            }
            names
                .into_iter()
                .map(|name| {
                    let path = dir.join(&name).join(atsq_tenant::CITY_DATASET_FILE);
                    let dataset = load_dataset(path.to_str().unwrap_or_default())?;
                    Ok(atsq_service::CityWorkload {
                        city: Some(name),
                        dataset,
                    })
                })
                .collect::<Result<Vec<_>, CliError>>()?
        }
    };
    if workloads.len() > 1 {
        let names: Vec<&str> = workloads.iter().filter_map(|w| w.city.as_deref()).collect();
        writeln!(out, "round-robin across cities: {}", names.join(", "))?;
    }
    let report = atsq_service::run_loadgen_cities(addr, &workloads, &cfg).map_err(CliError::Io)?;
    writeln!(out, "{report}")?;
    if cfg.verify && report.incorrect > 0 {
        return Err(CliError::Io(std::io::Error::other(format!(
            "{} responses disagreed with the local engine",
            report.incorrect
        ))));
    }
    Ok(())
}

/// One-shot request/response against a running `atsq serve`: sends a
/// single op line, returns the parsed reply.
fn wire_call(addr: &str, op: &str) -> Result<atsq_service::json::Value, CliError> {
    wire_call_line(addr, &format!("{{\"op\":\"{op}\"}}"))
}

/// Like [`wire_call`] but sends a caller-built request line, for ops
/// that carry members beyond `op` (e.g. `city_load`).
fn wire_call_line(addr: &str, line: &str) -> Result<atsq_service::json::Value, CliError> {
    use std::io::BufRead;
    let mut stream = std::net::TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    stream.write_all(format!("{line}\n").as_bytes())?;
    let mut reply = String::new();
    reader.read_line(&mut reply)?;
    let value = atsq_service::json::parse(reply.trim())
        .map_err(|e| CliError::Io(std::io::Error::other(format!("bad reply: {e}"))))?;
    if let Some(err) = value
        .get("error")
        .and_then(atsq_service::json::Value::as_str)
    {
        return Err(CliError::Io(std::io::Error::other(err.to_owned())));
    }
    Ok(value)
}

/// `atsq cities` — list a multi-city server's tenants, or load/unload
/// one by name.
pub fn cities(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    use atsq_service::json::Value;
    let f = parse(argv, &["addr", "load", "unload"], &[])?;
    let addr = f.require("addr")?;
    if f.get("load").is_some() && f.get("unload").is_some() {
        return Err(CliError::Usage(
            "--load and --unload are mutually exclusive".into(),
        ));
    }
    if let Some((op, name)) = f
        .get("load")
        .map(|n| ("city_load", n))
        .or_else(|| f.get("unload").map(|n| ("city_unload", n)))
    {
        let line = atsq_service::json::Value::Obj(vec![
            ("op".into(), Value::Str(op.into())),
            ("city".into(), Value::Str(name.into())),
        ])
        .to_json();
        let reply = wire_call_line(addr, &line)?;
        let status = reply.get("status").and_then(Value::as_str).unwrap_or("ok");
        if op == "city_load" {
            let cold = reply
                .get("cold")
                .and_then(Value::as_bool)
                .map_or(String::new(), |c| {
                    format!(" ({})", if c { "cold load" } else { "already resident" })
                });
            writeln!(out, "{name}: {status}{cold}")?;
        } else {
            writeln!(out, "{name}: {status}")?;
        }
        return Ok(());
    }
    let reply = wire_call(addr, "cities")?;
    let entries = reply
        .get("cities")
        .and_then(Value::as_arr)
        .ok_or_else(|| CliError::Io(std::io::Error::other("reply lacks `cities`")))?;
    writeln!(
        out,
        "{:<16} {:<9} {:>12} {:>8} {:>9} {:>6} {:>6} {:>9}",
        "CITY", "STATE", "RESIDENT", "INFLIGHT", "QUERIES", "LOADS", "EVICT", "LOAD-MS"
    )?;
    for e in entries {
        let num = |k: &str| e.get(k).and_then(Value::as_f64).unwrap_or(0.0);
        let city = e.get("city").and_then(Value::as_str).unwrap_or("?");
        let state = e.get("state").and_then(Value::as_str).unwrap_or("?");
        let snapshot = e
            .get("loaded_from_snapshot")
            .and_then(Value::as_bool)
            .unwrap_or(false);
        writeln!(
            out,
            "{:<16} {:<9} {:>12} {:>8} {:>9} {:>6} {:>6} {:>9.1}{}{}",
            city,
            state,
            num("resident_bytes") as u64,
            num("inflight") as u64,
            num("queries") as u64,
            num("loads") as u64,
            num("evictions") as u64,
            num("load_ms_total"),
            if snapshot { "  [snapshot]" } else { "" },
            e.get("last_error")
                .and_then(Value::as_str)
                .map_or(String::new(), |err| format!("  last_error: {err}")),
        )?;
    }
    Ok(())
}

/// `atsq metrics` — fetch a server's Prometheus metrics page.
pub fn metrics(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let f = parse(argv, &["addr"], &[])?;
    let value = wire_call(f.require("addr")?, "metrics")?;
    let text = value
        .get("metrics")
        .and_then(atsq_service::json::Value::as_str)
        .ok_or_else(|| CliError::Io(std::io::Error::other("reply lacks `metrics` text")))?;
    write!(out, "{text}")?;
    Ok(())
}

/// `atsq slowlog` — fetch and pretty-print a server's slow-query log.
pub fn slowlog(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    use atsq_service::json::Value;
    let f = parse(argv, &["addr"], &[])?;
    let value = wire_call(f.require("addr")?, "slowlog")?;
    let entries = value
        .get("entries")
        .and_then(Value::as_arr)
        .ok_or_else(|| CliError::Io(std::io::Error::other("reply lacks `entries`")))?;
    if entries.is_empty() {
        writeln!(out, "slow-query log is empty")?;
        return Ok(());
    }
    for e in entries {
        let num = |v: Option<&Value>| v.and_then(Value::as_f64).unwrap_or(0.0);
        let id = num(e.get("request_id")) as u64;
        let op = e.get("op").and_then(Value::as_str).unwrap_or("?");
        let status = e.get("status").and_then(Value::as_str).unwrap_or("?");
        let total_ms = num(e.get("total_ms"));
        let age_s = num(e.get("age_s"));
        write!(
            out,
            "#{id} {op} {status} {total_ms:.3} ms ({age_s:.1}s ago)  stages:"
        )?;
        if let Some(stages) = e.get("stages") {
            for stage in ["admission", "queue", "cache", "assembly", "engine", "reply"] {
                write!(out, " {stage}={:.3}", num(stages.get(stage)))?;
            }
        }
        if let Some(counters) = e.get("counters") {
            write!(
                out,
                "  candidates={} distance_evals={}",
                num(counters.get("candidates")) as u64,
                num(counters.get("distance_evals")) as u64,
            )?;
        }
        writeln!(out)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    fn run_ok(args: &[&str]) -> String {
        let mut out = Vec::new();
        run(&sv(args), &mut out).expect("command should succeed");
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn generate_stats_query_roundtrip() {
        let dir = std::env::temp_dir().join("atsq_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("tiny.atsq");
        let snap = snap.to_str().unwrap();

        let msg = run_ok(&["generate", "--city", "tiny", "--out", snap]);
        assert!(msg.contains("trajectories"), "{msg}");

        let stats = run_ok(&["stats", "--data", snap]);
        assert!(stats.contains("#trajectory"), "{stats}");

        // Query with a real activity name from the generated dataset.
        let dataset = load_dataset(snap).unwrap();
        let name = dataset
            .vocabulary()
            .name(atsq_types::ActivityId(0))
            .unwrap();
        let stop = format!("10.0,10.0:{name}");
        let q = run_ok(&[
            "query",
            "--data",
            snap,
            "--stop",
            &stop,
            "--k",
            "3",
            "--witness",
        ]);
        assert!(q.contains("result(s) [GAT]"), "{q}");

        let range = run_ok(&[
            "query", "--data", snap, "--stop", &stop, "--range", "100.0", "--engine", "il",
        ]);
        assert!(range.contains("[IL]"), "{range}");

        let bench = run_ok(&["bench", "--data", snap, "--queries", "2"]);
        assert!(bench.contains("GAT"), "{bench}");
        std::fs::remove_file(snap).ok();
    }

    #[test]
    fn import_roundtrip() {
        let dir = std::env::temp_dir().join("atsq_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("log.csv");
        std::fs::write(
            &csv,
            "u1,34.05,-118.25,100,coffee\nu1,34.06,-118.20,200,art\nu2,34.0,-118.2,1,x\nu2,34.1,-118.3,2,coffee\n",
        )
        .unwrap();
        let snap = dir.join("imported.atsq");
        let msg = run_ok(&[
            "import",
            "--csv",
            csv.to_str().unwrap(),
            "--out",
            snap.to_str().unwrap(),
        ]);
        assert!(msg.contains("imported 2 trajectories"), "{msg}");
        let stats = run_ok(&["stats", "--data", snap.to_str().unwrap()]);
        assert!(stats.contains("#venue"), "{stats}");
        std::fs::remove_file(csv).ok();
        std::fs::remove_file(snap).ok();
    }

    #[test]
    fn tips_import_mines_activities() {
        let dir = std::env::temp_dir().join("atsq_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("tips.csv");
        std::fs::write(
            &csv,
            "\
u1,34.05,-118.25,100,great espresso here
u1,34.06,-118.20,200,went hiking on the trail
u2,34.00,-118.20,10,the espresso is strong
u2,34.10,-118.30,20,hiking with a view
",
        )
        .unwrap();
        let snap = dir.join("tips.atsq");
        let vocab = dir.join("tips.vocab");
        let msg = run_ok(&[
            "import",
            "--csv",
            csv.to_str().unwrap(),
            "--tips",
            "--min-activity-count",
            "2",
            "--vocab-out",
            vocab.to_str().unwrap(),
            "--out",
            snap.to_str().unwrap(),
        ]);
        assert!(msg.contains("mined"), "{msg}");
        assert!(msg.contains("imported 2 trajectories"), "{msg}");
        // The persisted extractor loads and still maps the same words.
        let file = std::fs::File::open(&vocab).unwrap();
        let ex = atsq_io::read_extractor(std::io::BufReader::new(file)).unwrap();
        assert_eq!(ex.extract("strong espresso"), vec!["espresso"]);
        std::fs::remove_file(&vocab).ok();
        // The mined vocabulary is queryable end to end.
        let q = run_ok(&[
            "query",
            "--data",
            snap.to_str().unwrap(),
            "--stop",
            "0.0,0.0:espresso",
            "--k",
            "2",
        ]);
        assert!(q.contains("result(s)"), "{q}");
        std::fs::remove_file(csv).ok();
        std::fs::remove_file(snap).ok();
    }

    #[test]
    fn paged_engine_answers_like_memory() {
        let dir = std::env::temp_dir().join("atsq_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("paged.atsq");
        let snap = snap.to_str().unwrap();
        run_ok(&["generate", "--city", "tiny", "--out", snap]);
        let dataset = load_dataset(snap).unwrap();
        let name = dataset
            .vocabulary()
            .name(atsq_types::ActivityId(0))
            .unwrap();
        let stop = format!("10.0,10.0:{name}");
        let mem = run_ok(&["query", "--data", snap, "--stop", &stop, "--k", "3"]);
        let paged = run_ok(&[
            "query",
            "--data",
            snap,
            "--stop",
            &stop,
            "--k",
            "3",
            "--engine",
            "gat-paged",
        ]);
        assert_eq!(mem, paged);
        std::fs::remove_file(snap).ok();
    }

    #[test]
    fn sharded_query_matches_single_index() {
        let dir = std::env::temp_dir().join("atsq_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("sharded.atsq");
        let snap = snap.to_str().unwrap();
        run_ok(&["generate", "--city", "tiny", "--seed", "3", "--out", snap]);
        let dataset = load_dataset(snap).unwrap();
        let name = dataset
            .vocabulary()
            .name(atsq_types::ActivityId(0))
            .unwrap();
        let stop = format!("10.0,10.0:{name}");
        let single = run_ok(&["query", "--data", snap, "--stop", &stop, "--k", "5"]);
        for partition in ["hash", "spatial"] {
            let sharded = run_ok(&[
                "query",
                "--data",
                snap,
                "--stop",
                &stop,
                "--k",
                "5",
                "--shards",
                "3",
                "--partition",
                partition,
            ]);
            assert_eq!(
                single.replace("[GAT]", "[GAT-SHARDED]"),
                sharded,
                "{partition}"
            );
        }
        // Sharding a baseline engine or 0 shards is a usage error.
        let mut out = Vec::new();
        assert!(run(
            &sv(&["query", "--data", snap, "--stop", &stop, "--shards", "2", "--engine", "il"]),
            &mut out
        )
        .is_err());
        assert!(run(
            &sv(&["query", "--data", snap, "--stop", &stop, "--shards", "0"]),
            &mut out
        )
        .is_err());
        assert!(run(
            &sv(&[
                "query",
                "--data",
                snap,
                "--stop",
                &stop,
                "--shards",
                "2",
                "--partition",
                "mars"
            ]),
            &mut out
        )
        .is_err());
        std::fs::remove_file(snap).ok();
    }

    /// The index-cache workflow end to end: `index build` writes
    /// snapshots, `index inspect` lists them, `query --index-cache`
    /// loads them and answers exactly like a cache-less run (single
    /// and sharded), and corrupting a snapshot degrades to a rebuild.
    #[test]
    fn index_cache_workflow_roundtrip() {
        let dir = std::env::temp_dir().join("atsq_cli_test_idxcache");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("city.atsq");
        let snap = snap.to_str().unwrap();
        let cache = dir.join("cache");
        let cache = cache.to_str().unwrap();
        run_ok(&["generate", "--city", "tiny", "--seed", "7", "--out", snap]);
        let dataset = load_dataset(snap).unwrap();
        let name = dataset
            .vocabulary()
            .name(atsq_types::ActivityId(0))
            .unwrap();
        let stop = format!("10.0,10.0:{name}");
        let plain = run_ok(&["query", "--data", snap, "--stop", &stop, "--k", "5"]);

        // Build snapshots for the single index and a 2-shard layout.
        let msg = run_ok(&["index", "build", "--data", snap, "--cache", cache]);
        assert!(msg.contains("snapshotted"), "{msg}");
        let msg = run_ok(&[
            "index", "build", "--data", snap, "--cache", cache, "--shards", "2",
        ]);
        assert!(msg.contains("snapshotted"), "{msg}");
        let listing = run_ok(&["index", "inspect", "--cache", cache]);
        assert!(listing.contains("kind index"), "{listing}");
        assert!(listing.contains("kind manifest"), "{listing}");
        assert_eq!(listing.lines().count(), 4, "index + manifest + 2 shards");

        // Cached queries load the snapshot and answer identically.
        let cached = run_ok(&[
            "query",
            "--data",
            snap,
            "--stop",
            &stop,
            "--k",
            "5",
            "--index-cache",
            cache,
        ]);
        assert!(cached.contains("loaded index snapshot"), "{cached}");
        assert_eq!(cached.replace("loaded index snapshot\n", ""), plain);
        let sharded = run_ok(&[
            "query",
            "--data",
            snap,
            "--stop",
            &stop,
            "--k",
            "5",
            "--shards",
            "2",
            "--index-cache",
            cache,
        ]);
        assert!(sharded.contains("loaded index snapshot"), "{sharded}");
        assert_eq!(
            sharded.replace("loaded index snapshot\n", ""),
            plain.replace("[GAT]", "[GAT-SHARDED]")
        );

        // Corrupt the single-index snapshot: the query falls back to a
        // fresh build, same answers, and repairs the snapshot.
        let idx_file = std::fs::read_dir(cache)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| {
                p.extension().is_some_and(|e| e == "idx")
                    && !p.file_name().unwrap().to_str().unwrap().contains("shard")
            })
            .unwrap();
        let mut bytes = std::fs::read(&idx_file).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&idx_file, &bytes).unwrap();
        let rebuilt = run_ok(&[
            "query",
            "--data",
            snap,
            "--stop",
            &stop,
            "--k",
            "5",
            "--index-cache",
            cache,
        ]);
        assert!(rebuilt.contains("built index fresh"), "{rebuilt}");
        assert!(rebuilt.contains("checksum"), "{rebuilt}");
        assert!(rebuilt.ends_with(plain.as_str()), "{rebuilt}");
        let again = run_ok(&[
            "query",
            "--data",
            snap,
            "--stop",
            &stop,
            "--k",
            "5",
            "--index-cache",
            cache,
        ]);
        assert!(again.contains("loaded index snapshot"), "{again}");

        // --index-cache with a baseline engine is a usage error.
        let mut out = Vec::new();
        assert!(run(
            &sv(&[
                "query",
                "--data",
                snap,
                "--stop",
                &stop,
                "--engine",
                "il",
                "--index-cache",
                cache
            ]),
            &mut out
        )
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// `serve --index-cache` restarts from the snapshot and still
    /// verifies under load.
    #[test]
    fn serve_with_index_cache_restarts_fast_and_verifies() {
        let dir = std::env::temp_dir().join("atsq_cli_test_servecache");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("city.atsq");
        let snap = snap.to_str().unwrap();
        let cache = dir.join("cache");
        run_ok(&["generate", "--city", "tiny", "--seed", "13", "--out", snap]);
        let dataset = load_dataset(snap).unwrap();
        run_ok(&[
            "index",
            "build",
            "--data",
            snap,
            "--cache",
            cache.to_str().unwrap(),
            "--shards",
            "2",
        ]);

        let config = ServiceConfig {
            workers: 2,
            shards: 2,
            index_cache: Some(cache.clone()),
            ..ServiceConfig::default()
        };
        let service = Service::build(dataset.clone(), config).unwrap();
        let server = Server::bind(service.handle(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr().to_string();
        let report = run_ok(&[
            "loadgen",
            "--data",
            snap,
            "--addr",
            &addr,
            "--concurrency",
            "4",
            "--requests",
            "60",
            "--pool",
            "10",
            "--k",
            "5",
            "--verify",
        ]);
        assert!(report.contains("incorrect 0"), "{report}");
        server.stop();
        service.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loadgen_against_live_server_verifies() {
        let dir = std::env::temp_dir().join("atsq_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("serve_roundtrip.atsq");
        let snap = snap.to_str().unwrap();
        run_ok(&["generate", "--city", "tiny", "--seed", "9", "--out", snap]);

        let dataset = load_dataset(snap).unwrap();
        let service = Service::build(
            dataset,
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let server = Server::bind(service.handle(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr().to_string();

        let report = run_ok(&[
            "loadgen",
            "--data",
            snap,
            "--addr",
            &addr,
            "--concurrency",
            "4",
            "--requests",
            "60",
            "--pool",
            "10",
            "--k",
            "5",
            "--verify",
        ]);
        assert!(report.contains("incorrect 0"), "{report}");
        assert!(report.contains("qps"), "{report}");

        server.stop();
        service.shutdown();
        std::fs::remove_file(snap).ok();
    }

    /// The observability surface end to end at the CLI: drive a live
    /// server with `loadgen --latency-out`, then scrape `metrics` and
    /// `slowlog`.
    #[test]
    fn metrics_and_slowlog_commands_scrape_a_live_server() {
        let dir = std::env::temp_dir().join("atsq_cli_test_obs");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("obs.atsq");
        let snap = snap.to_str().unwrap();
        run_ok(&["generate", "--city", "tiny", "--seed", "17", "--out", snap]);

        let dataset = load_dataset(snap).unwrap();
        let service = Service::build(
            dataset,
            ServiceConfig {
                workers: 2,
                slowlog_threshold: Duration::ZERO, // record every request
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let server = Server::bind(service.handle(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr().to_string();

        let latency_file = dir.join("latency.jsonl");
        let report = run_ok(&[
            "loadgen",
            "--data",
            snap,
            "--addr",
            &addr,
            "--concurrency",
            "2",
            "--requests",
            "30",
            "--pool",
            "8",
            "--k",
            "4",
            "--latency-out",
            latency_file.to_str().unwrap(),
        ]);
        assert!(report.contains("ok 30"), "{report}");
        let records = std::fs::read_to_string(&latency_file).unwrap();
        assert_eq!(records.lines().count(), 30);
        assert!(records.lines().all(|l| l.contains("\"request_id\":")));

        let page = run_ok(&["metrics", "--addr", &addr]);
        assert!(
            page.contains("atsq_requests_completed_total 30\n"),
            "{page}"
        );
        assert!(page.contains("atsq_latency_seconds_count 30\n"), "{page}");
        assert!(page.contains("atsq_engine_candidates_total"), "{page}");
        assert!(
            page.contains("atsq_stage_seconds_total{stage=\"engine\"}"),
            "{page}"
        );

        let log = run_ok(&["slowlog", "--addr", &addr]);
        assert!(log.contains("stages:"), "{log}");
        assert!(log.contains("engine="), "{log}");
        assert!(log.contains("candidates="), "{log}");

        server.stop();
        service.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_runs_for_a_bounded_duration() {
        let dir = std::env::temp_dir().join("atsq_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("serve_duration.atsq");
        let snap = snap.to_str().unwrap();
        run_ok(&["generate", "--city", "tiny", "--out", snap]);
        let msg = run_ok(&[
            "serve",
            "--data",
            snap,
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--duration-s",
            "1",
        ]);
        assert!(msg.contains("serving"), "{msg}");
        assert!(msg.contains("qps"), "{msg}");
        std::fs::remove_file(snap).ok();
    }

    #[test]
    fn usage_errors() {
        let mut out = Vec::new();
        assert!(run(&sv(&[]), &mut out).is_err());
        assert!(run(&sv(&["frobnicate"]), &mut out).is_err());
        assert!(run(
            &sv(&["generate", "--city", "mars", "--out", "/tmp/x"]),
            &mut out
        )
        .is_err());
        assert!(run(&sv(&["query", "--data", "/nonexistent"]), &mut out).is_err());
        // help works
        run(&sv(&["help"]), &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("USAGE"));
    }

    /// The multi-city surface end to end at the CLI: a registry served
    /// from a `--cities`-style directory, `loadgen --cities` verifying
    /// round-robin across tenants, and the `cities` subcommand
    /// listing, unloading and reloading a city.
    #[test]
    fn multi_city_serve_loadgen_and_admin_roundtrip() {
        let dir = std::env::temp_dir().join("atsq_cli_test_cities");
        std::fs::remove_dir_all(&dir).ok();
        for (name, seed) in [("kyoto", "21"), ("osaka", "22")] {
            let city_dir = dir.join(name);
            std::fs::create_dir_all(&city_dir).unwrap();
            let snap = city_dir.join(atsq_tenant::CITY_DATASET_FILE);
            run_ok(&[
                "generate",
                "--city",
                "tiny",
                "--seed",
                seed,
                "--out",
                snap.to_str().unwrap(),
            ]);
        }

        let registry =
            atsq_tenant::registry_from_dir(&dir, &atsq_tenant::DiskRegistryOptions::default())
                .unwrap();
        let service = Service::start_registry(
            std::sync::Arc::new(registry),
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        );
        let server = Server::bind(service.handle(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr().to_string();

        let report = run_ok(&[
            "loadgen",
            "--cities",
            dir.to_str().unwrap(),
            "--addr",
            &addr,
            "--concurrency",
            "4",
            "--requests",
            "40",
            "--pool",
            "8",
            "--k",
            "5",
            "--verify",
        ]);
        assert!(
            report.contains("round-robin across cities: kyoto, osaka"),
            "{report}"
        );
        assert!(report.contains("incorrect 0"), "{report}");

        let listing = run_ok(&["cities", "--addr", &addr]);
        assert!(listing.contains("kyoto"), "{listing}");
        assert!(listing.contains("osaka"), "{listing}");
        assert!(listing.contains("ready"), "{listing}");

        // The last reply's lease drops just after loadgen returns, so
        // an immediate unload can race a still-draining request.
        let unload = (0..100)
            .find_map(|_| {
                let mut out = Vec::new();
                match run(
                    &sv(&["cities", "--addr", &addr, "--unload", "osaka"]),
                    &mut out,
                ) {
                    Ok(()) => Some(String::from_utf8(out).unwrap()),
                    Err(_) => {
                        std::thread::sleep(Duration::from_millis(20));
                        None
                    }
                }
            })
            .expect("unload should succeed once in-flight requests drain");
        assert!(unload.contains("osaka: ok"), "{unload}");
        let listing = run_ok(&["cities", "--addr", &addr]);
        assert!(listing.contains("evicted"), "{listing}");
        let load = run_ok(&["cities", "--addr", &addr, "--load", "osaka"]);
        assert!(load.contains("osaka: ok (cold load)"), "{load}");

        // Usage errors: exclusive flag pairs and orphaned --city.
        let mut out = Vec::new();
        assert!(run(
            &sv(&["cities", "--addr", &addr, "--load", "a", "--unload", "b"]),
            &mut out
        )
        .is_err());
        assert!(run(
            &sv(&["loadgen", "--addr", &addr, "--city", "kyoto"]),
            &mut out
        )
        .is_err());
        assert!(run(
            &sv(&[
                "serve",
                "--data",
                "x",
                "--cities",
                "y",
                "--addr",
                "127.0.0.1:0"
            ]),
            &mut out
        )
        .is_err());

        server.stop();
        service.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    /// `serve --cities` itself boots a registry, announces its
    /// tenants, and answers for the bounded duration.
    #[test]
    fn serve_cities_runs_for_a_bounded_duration() {
        let dir = std::env::temp_dir().join("atsq_cli_test_serve_cities");
        std::fs::remove_dir_all(&dir).ok();
        let city_dir = dir.join("nara");
        std::fs::create_dir_all(&city_dir).unwrap();
        run_ok(&[
            "generate",
            "--city",
            "tiny",
            "--out",
            city_dir
                .join(atsq_tenant::CITY_DATASET_FILE)
                .to_str()
                .unwrap(),
        ]);
        let msg = run_ok(&[
            "serve",
            "--cities",
            dir.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--duration-s",
            "1",
            "--tenant-memory-budget",
            "64mb",
        ]);
        assert!(msg.contains("hosting 1 cities"), "{msg}");
        assert!(msg.contains("nara"), "{msg}");
        assert!(msg.contains("serving"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_bytes_accepts_suffixes() {
        assert_eq!(parse_bytes("1024").unwrap(), 1024);
        assert_eq!(parse_bytes("2kb").unwrap(), 2 * 1024);
        assert_eq!(parse_bytes("3MB").unwrap(), 3 * 1024 * 1024);
        assert_eq!(parse_bytes("1gb").unwrap(), 1024 * 1024 * 1024);
        assert!(parse_bytes("lots").is_err());
    }

    #[test]
    fn parse_stop_validates() {
        let dataset = atsq_datagen::generate(&CityConfig::tiny(1)).unwrap();
        assert!(parse_stop("1,2:act000000", &dataset).is_ok());
        assert!(parse_stop("1;2:act000000", &dataset).is_err());
        assert!(parse_stop("1,2:", &dataset).is_err());
        assert!(parse_stop("1,2:not-an-activity", &dataset).is_err());
        assert!(parse_stop("x,2:act000000", &dataset).is_err());
        assert!(parse_stop("no-colon", &dataset).is_err());
    }
}
