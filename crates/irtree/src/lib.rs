//! The IR-tree (Cong, Jensen & Wu, VLDB 2009 — reference \[22\] of the
//! paper): an R-tree whose every node carries an inverted file over the
//! text (here: activity) descriptions of the objects below it (§III-C).
//!
//! This crate instantiates the generic `atsq-rtree` with an
//! [`ActivityFile`] summary. Each node's summary is the union of the
//! activity sets of all venues beneath it, so a best-first traversal
//! can skip any subtree that contains none of the query activities —
//! exactly the pruning rule the paper's IRT baseline adds on top of the
//! plain R-tree search.

#![warn(missing_docs)]
#![warn(clippy::all)]

use atsq_rtree::{NearestIter, NodeSummary, RTree};
use atsq_types::{ActivitySet, Point, Rect};

/// The per-node inverted file: which activities occur anywhere below
/// this node. A real IR-tree maps each activity to a posting list of
/// child pointers; for containment pruning only the key set matters,
/// so we store the activity set (the posting-list payloads would only
/// be consulted by text-relevance scoring, which ATSQ does not use).
#[derive(Debug, Clone, Default)]
pub struct ActivityFile {
    activities: ActivitySet,
}

impl ActivityFile {
    /// The activities present below the summarised node.
    pub fn activities(&self) -> &ActivitySet {
        &self.activities
    }

    /// Whether the node's subtree contains at least one activity of
    /// `wanted` — the §III-C pruning test.
    pub fn intersects(&self, wanted: &ActivitySet) -> bool {
        self.activities.intersects(wanted)
    }
}

/// Payload trait: any item that exposes an activity set can be indexed.
pub trait HasActivities {
    /// The activity set attached to this item.
    fn activities(&self) -> &ActivitySet;
}

impl<P: HasActivities> NodeSummary<P> for ActivityFile {
    fn add(&mut self, item: &P) {
        self.activities.extend_from(item.activities());
    }
    fn merge(&mut self, other: &Self) {
        self.activities.extend_from(&other.activities);
    }
}

/// An IR-tree over payloads with activities.
#[derive(Debug, Clone)]
pub struct IrTree<P: HasActivities> {
    tree: RTree<P, ActivityFile>,
}

impl<P: HasActivities> Default for IrTree<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: HasActivities> IrTree<P> {
    /// An empty IR-tree.
    pub fn new() -> Self {
        IrTree { tree: RTree::new() }
    }

    /// Bulk-loads from `(rect, payload)` pairs (STR packing).
    pub fn bulk_load(items: Vec<(Rect, P)>) -> Self {
        IrTree {
            tree: RTree::bulk_load(items),
        }
    }

    /// Inserts one payload.
    pub fn insert(&mut self, rect: Rect, payload: P) {
        self.tree.insert(rect, payload);
    }

    /// Number of stored payloads.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Raw access to the underlying R-tree (tests, invariants).
    pub fn inner(&self) -> &RTree<P, ActivityFile> {
        &self.tree
    }

    /// Incremental nearest-neighbour iteration that prunes subtrees
    /// containing none of `wanted` — the IRT candidate generator.
    pub fn nearest_with_any_activity<'a>(
        &'a self,
        q: Point,
        wanted: &'a ActivitySet,
    ) -> NearestIter<'a, P, ActivityFile> {
        self.tree
            .nearest_iter_filtered(q, Box::new(move |s: &ActivityFile| s.intersects(wanted)))
    }

    /// Plain (unpruned) nearest-neighbour iteration.
    pub fn nearest_iter(&self, q: Point) -> NearestIter<'_, P, ActivityFile> {
        self.tree.nearest_iter(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone)]
    struct Venue {
        id: u32,
        acts: ActivitySet,
    }

    impl HasActivities for Venue {
        fn activities(&self) -> &ActivitySet {
            &self.acts
        }
    }

    fn venue(id: u32, acts: &[u32]) -> Venue {
        Venue {
            id,
            acts: ActivitySet::from_raw(acts.iter().copied()),
        }
    }

    fn build(n: u32) -> IrTree<Venue> {
        let mut t = IrTree::new();
        for i in 0..n {
            // Activity = i % 5; position along a line.
            t.insert(
                Rect::from_point(Point::new(f64::from(i), 0.0)),
                venue(i, &[i % 5]),
            );
        }
        t
    }

    #[test]
    fn summary_unions_activities() {
        let t = build(100);
        t.inner().check_invariants().unwrap();
        let root = t.inner().root().unwrap();
        let all = root.summary().activities();
        assert_eq!(all, &ActivitySet::from_raw([0, 1, 2, 3, 4]));
    }

    #[test]
    fn filtered_nn_only_yields_matching_subtrees() {
        let t = build(200);
        let wanted = ActivitySet::from_raw([3]);
        let q = Point::new(77.0, 0.0);
        let hits: Vec<u32> = t
            .nearest_with_any_activity(q, &wanted)
            .map(|n| n.data.id)
            .take(10)
            .collect();
        // Summary pruning is per-subtree; individual non-matching
        // venues inside kept leaves may still be yielded, so we check
        // that every venue with activity 3 near q arrives in order.
        let matching: Vec<u32> = hits.iter().copied().filter(|i| i % 5 == 3).collect();
        assert!(!matching.is_empty());
        // Nearest matching venue to 77 with id%5==3 is 78.
        assert!(matching.contains(&78));
    }

    #[test]
    fn filtered_nn_rare_activity_prunes_everything_else() {
        let mut t = build(100);
        // One venue with a unique activity far away.
        t.insert(Rect::from_point(Point::new(1000.0, 0.0)), venue(999, &[42]));
        let wanted = ActivitySet::from_raw([42]);
        let found: Vec<u32> = t
            .nearest_with_any_activity(Point::new(0.0, 0.0), &wanted)
            .filter(|n| n.data.acts.intersects(&wanted))
            .map(|n| n.data.id)
            .collect();
        assert_eq!(found, vec![999]);
    }

    #[test]
    fn no_activity_match_yields_nothing() {
        let t = build(50);
        let wanted = ActivitySet::from_raw([99]);
        let count = t
            .nearest_with_any_activity(Point::new(0.0, 0.0), &wanted)
            .count();
        assert_eq!(count, 0, "root summary should prune the entire tree");
    }

    #[test]
    fn bulk_load_equivalent_to_inserts() {
        let items: Vec<(Rect, Venue)> = (0..150u32)
            .map(|i| {
                (
                    Rect::from_point(Point::new(f64::from(i % 13), f64::from(i % 7))),
                    venue(i, &[i % 4]),
                )
            })
            .collect();
        let bulk = IrTree::bulk_load(items.clone());
        bulk.inner().check_invariants().unwrap();
        let mut incr = IrTree::new();
        for (r, v) in items {
            incr.insert(r, v);
        }
        let wanted = ActivitySet::from_raw([2]);
        let q = Point::new(5.0, 3.0);
        let mut a: Vec<u32> = bulk
            .nearest_with_any_activity(q, &wanted)
            .filter(|n| n.data.acts.intersects(&wanted))
            .map(|n| n.data.id)
            .collect();
        let mut b: Vec<u32> = incr
            .nearest_with_any_activity(q, &wanted)
            .filter(|n| n.data.acts.intersects(&wanted))
            .map(|n| n.data.id)
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "same matching venues regardless of build path");
    }
}
