//! Parallel batch query execution.
//!
//! Every engine in this workspace is read-only after construction
//! (`&self` queries; the GAT I/O counters are atomics), so a batch of
//! queries parallelises trivially across threads. This module provides
//! a scoped-thread executor (`std::thread::scope`, no external
//! runtime) that preserves the input order of results — useful for
//! benchmark sweeps and for serving workloads without an async
//! runtime. The `atsq-service` crate builds its micro-batching on top
//! of this.

use crate::QueryEngine;
use atsq_obs::{CounterScope, CounterSink};
use atsq_types::{Dataset, Query, QueryResult};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Which of the paper's two query types to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// Order-free ATSQ (§II).
    Atsq,
    /// Order-sensitive OATSQ (§VI).
    Oatsq,
}

/// Runs `queries` against `engine` on `threads` worker threads,
/// returning the per-query top-`k` lists in input order.
///
/// Work is distributed by an atomic cursor, so skewed per-query costs
/// (common with OATSQ) still balance. `threads = 1` degenerates to a
/// sequential loop with no thread spawn.
pub fn run_batch<E: QueryEngine + Sync>(
    engine: &E,
    dataset: &Dataset,
    queries: &[Query],
    k: usize,
    kind: QueryKind,
    threads: usize,
) -> Vec<Vec<QueryResult>> {
    run_batch_with_sinks(engine, dataset, queries, k, kind, threads, None)
}

/// [`run_batch`] with optional per-query counter attribution: when
/// `sinks` is given (one [`CounterSink`] per query, same order), each
/// query executes inside a [`CounterScope`] targeting its own sink, so
/// the engine work counters of every batch member are attributed
/// individually even though members run concurrently. This is how the
/// serving layer keeps per-request pruning numbers exact for queries
/// that share one grouped batch execution.
pub fn run_batch_with_sinks<E: QueryEngine + Sync>(
    engine: &E,
    dataset: &Dataset,
    queries: &[Query],
    k: usize,
    kind: QueryKind,
    threads: usize,
    sinks: Option<&[Arc<CounterSink>]>,
) -> Vec<Vec<QueryResult>> {
    if let Some(sinks) = sinks {
        assert_eq!(
            sinks.len(),
            queries.len(),
            "one counter sink per batched query"
        );
    }
    let threads = threads.max(1);
    let run_one = |i: usize, q: &Query| {
        let _ctx = sinks.map(|s| CounterScope::enter(s[i].clone()));
        match kind {
            QueryKind::Atsq => engine.atsq(dataset, q, k),
            QueryKind::Oatsq => engine.oatsq(dataset, q, k),
        }
    };
    if threads == 1 || queries.len() <= 1 {
        return queries
            .iter()
            .enumerate()
            .map(|(i, q)| run_one(i, q))
            .collect();
    }

    let slots: Vec<parking_lot::Mutex<Option<Vec<QueryResult>>>> = queries
        .iter()
        .map(|_| parking_lot::Mutex::new(None))
        .collect();
    let cursor = AtomicUsize::new(0);

    // `std::thread::scope` joins all workers before returning and
    // re-raises any worker panic, so every slot is filled on exit.
    std::thread::scope(|scope| {
        for _ in 0..threads.min(queries.len()) {
            scope.spawn(|| loop {
                // ordering: Relaxed — work-stealing cursor; atomicity
                // alone hands each index to exactly one worker, and
                // results travel through the slot mutexes, not this.
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= queries.len() {
                    break;
                }
                let out = run_one(i, &queries[i]);
                *slots[i].lock() = Some(out);
            });
        }
    });

    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("invariant: scope joins all workers, so every query slot is filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GatEngine;
    use atsq_datagen::{generate, generate_queries, CityConfig, QueryGenConfig};

    #[test]
    fn parallel_matches_sequential() {
        let dataset = generate(&CityConfig::tiny(5)).unwrap();
        let engine = GatEngine::build(&dataset).unwrap();
        let queries = generate_queries(&dataset, &QueryGenConfig::default(), 12);
        for kind in [QueryKind::Atsq, QueryKind::Oatsq] {
            let seq = run_batch(&engine, &dataset, &queries, 5, kind, 1);
            let par = run_batch(&engine, &dataset, &queries, 5, kind, 4);
            assert_eq!(seq, par, "{kind:?} results diverge under threading");
        }
    }

    #[test]
    fn more_threads_than_queries() {
        let dataset = generate(&CityConfig::tiny(6)).unwrap();
        let engine = GatEngine::build(&dataset).unwrap();
        let queries = generate_queries(&dataset, &QueryGenConfig::default(), 2);
        let out = run_batch(&engine, &dataset, &queries, 3, QueryKind::Atsq, 16);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn empty_batch() {
        let dataset = generate(&CityConfig::tiny(7)).unwrap();
        let engine = GatEngine::build(&dataset).unwrap();
        let out = run_batch(&engine, &dataset, &[], 3, QueryKind::Atsq, 4);
        assert!(out.is_empty());
    }

    /// Per-query sink attribution: every batch member's counter delta
    /// lands in its own sink, and the deltas sum to the engine's total
    /// for the batch (checked from a clean engine, which nothing else
    /// is querying).
    #[test]
    fn per_query_sinks_attribute_exactly() {
        use crate::Profiled;
        let dataset = generate(&CityConfig::tiny(9)).unwrap();
        let engine = GatEngine::build(&dataset).unwrap();
        let queries = generate_queries(&dataset, &QueryGenConfig::default(), 10);
        engine.reset_counters();
        let sinks: Vec<_> = queries.iter().map(|_| CounterSink::new()).collect();
        let out = run_batch_with_sinks(
            &engine,
            &dataset,
            &queries,
            5,
            QueryKind::Atsq,
            4,
            Some(&sinks),
        );
        assert_eq!(out.len(), queries.len());
        let summed = sinks
            .iter()
            .fold(atsq_obs::QueryCounters::default(), |acc, s| {
                acc.add(&s.counters())
            });
        let total = engine.counters();
        assert_eq!(summed.candidates, total.candidates);
        assert_eq!(summed.distance_evals, total.distance_evals);
        assert_eq!(summed.apl_reads, total.apl_reads);
        assert!(summed.candidates > 0, "batch must have done engine work");
        // The per-query split is real, not all-on-one-sink.
        let with_work = sinks.iter().filter(|s| !s.counters().is_zero()).count();
        assert!(with_work > 1, "work attributed to {with_work} sink(s)");
    }

    /// Per-query attribution survives the sharded engine's shared
    /// traversal: each query's counter delta (router traversal work
    /// plus owner-shard verification, wherever the threads ran) lands
    /// in its own sink, and the deltas sum to the engine totals —
    /// which for the sharded engine include the router's counters.
    #[test]
    fn sharded_per_query_sinks_attribute_exactly() {
        use crate::{Partition, Profiled, ShardedEngine};
        let dataset = generate(&CityConfig::tiny(9)).unwrap();
        let engine = ShardedEngine::build(&dataset, 4, Partition::Hash).unwrap();
        assert!(engine.shared_traversal());
        let queries = generate_queries(&dataset, &QueryGenConfig::default(), 10);
        engine.reset_counters();
        let sinks: Vec<_> = queries.iter().map(|_| CounterSink::new()).collect();
        let out = run_batch_with_sinks(
            &engine,
            &dataset,
            &queries,
            5,
            QueryKind::Atsq,
            4,
            Some(&sinks),
        );
        assert_eq!(out.len(), queries.len());
        let summed = sinks
            .iter()
            .fold(atsq_obs::QueryCounters::default(), |acc, s| {
                acc.add(&s.counters())
            });
        let total = engine.counters();
        assert_eq!(summed.candidates, total.candidates);
        assert_eq!(summed.distance_evals, total.distance_evals);
        assert_eq!(summed.apl_reads, total.apl_reads);
        assert_eq!(summed.cold_reads, total.cold_reads);
        assert!(summed.candidates > 0, "batch must have done engine work");
        let with_work = sinks.iter().filter(|s| !s.counters().is_zero()).count();
        assert!(with_work > 1, "work attributed to {with_work} sink(s)");
    }

    /// The batch executor is engine-generic: running a batch through
    /// the sharded engine (itself parallel per query) equals the
    /// single-index engine, for both query kinds.
    #[test]
    fn sharded_engine_batches_match_single_index() {
        use crate::{Partition, ShardedEngine};
        let dataset = generate(&CityConfig::tiny(8)).unwrap();
        let single = GatEngine::build(&dataset).unwrap();
        let sharded = ShardedEngine::build(&dataset, 3, Partition::Spatial).unwrap();
        let queries = generate_queries(&dataset, &QueryGenConfig::default(), 8);
        for kind in [QueryKind::Atsq, QueryKind::Oatsq] {
            let want = run_batch(&single, &dataset, &queries, 5, kind, 1);
            let got = run_batch(&sharded, &dataset, &queries, 5, kind, 4);
            assert_eq!(got, want, "{kind:?} diverged through the sharded engine");
        }
    }
}
