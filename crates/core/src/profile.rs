//! Unified per-engine work counters.
//!
//! The paper argues GAT wins because it prunes with location and
//! activity *simultaneously*; wall-clock alone cannot show that. Every
//! engine already counts its work (trajectory fetches in the baselines,
//! the full [`atsq_gat::IoStats`] pipeline in GAT); this module puts
//! those counters behind one [`EngineCounters`] snapshot so experiments
//! can report pruning power next to latency.

use crate::{Engine, GatEngine, ShardedEngine};
use atsq_baselines::{IlEngine, IrtEngine, RtEngine};

/// Work performed by an engine since the last reset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineCounters {
    /// Candidate trajectories considered.
    pub candidates: u64,
    /// Full match-distance evaluations (`Dmm` / `Dmom`).
    pub distance_evals: u64,
    /// Candidates discarded by the TAS sketch before touching data
    /// (GAT only; zero elsewhere).
    pub tas_pruned: u64,
    /// TAS passes later refuted by the APL (sketch false positives).
    pub tas_false_positives: u64,
    /// APL posting-list fetches (GAT only).
    pub apl_reads: u64,
    /// Cold HICL accesses — index pages the paper serves from disk
    /// (GAT only).
    pub cold_reads: u64,
}

impl EngineCounters {
    /// Fraction of candidates eliminated before a distance evaluation,
    /// clamped to `[0, 1]`. The raw counters can transiently report
    /// `distance_evals > candidates` when a reset races in-flight
    /// queries (see `IoStats::reset` in `atsq-gat`); a monitoring
    /// ratio must saturate at zero rather than go negative.
    pub fn prune_ratio(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            (1.0 - self.distance_evals as f64 / self.candidates as f64).max(0.0)
        }
    }
}

/// A per-query counter delta from `atsq-obs` maps onto the same
/// vocabulary as the engine-lifetime counters, including the derived
/// TAS-pruned figure.
impl From<atsq_obs::QueryCounters> for EngineCounters {
    fn from(c: atsq_obs::QueryCounters) -> EngineCounters {
        EngineCounters {
            candidates: c.candidates,
            distance_evals: c.distance_evals,
            tas_pruned: c.tas_checks.saturating_sub(c.apl_reads),
            tas_false_positives: c.tas_false_positives,
            apl_reads: c.apl_reads,
            cold_reads: c.cold_reads,
        }
    }
}

/// Engines that expose their work counters.
pub trait Profiled {
    /// Snapshot of the counters since the last reset.
    fn counters(&self) -> EngineCounters;
    /// Zeroes the counters.
    fn reset_counters(&self);
}

impl Profiled for GatEngine {
    fn counters(&self) -> EngineCounters {
        counters_from_io(self.index().stats().snapshot())
    }
    fn reset_counters(&self) {
        self.index().stats().reset();
        self.index().apl().reset_pool_stats();
    }
}

fn counters_from_io(s: atsq_gat::stats::IoSnapshot) -> EngineCounters {
    EngineCounters {
        candidates: s.candidates_retrieved,
        distance_evals: s.distances_computed,
        // Every candidate that passes the sketch proceeds to the APL,
        // so the TAS discards are checks minus APL reads.
        tas_pruned: s.tas_checks.saturating_sub(s.apl_reads),
        tas_false_positives: s.tas_false_positives,
        apl_reads: s.apl_reads,
        cold_reads: s.hicl_cold_reads,
    }
}

impl EngineCounters {
    /// Component-wise sum — aggregates per-shard counters into one.
    pub fn sum(counters: impl IntoIterator<Item = EngineCounters>) -> EngineCounters {
        counters
            .into_iter()
            .fold(EngineCounters::default(), |a, b| EngineCounters {
                candidates: a.candidates + b.candidates,
                distance_evals: a.distance_evals + b.distance_evals,
                tas_pruned: a.tas_pruned + b.tas_pruned,
                tas_false_positives: a.tas_false_positives + b.tas_false_positives,
                apl_reads: a.apl_reads + b.apl_reads,
                cold_reads: a.cold_reads + b.cold_reads,
            })
    }
}

impl Profiled for ShardedEngine {
    fn counters(&self) -> EngineCounters {
        // Shard counters plus the shared-traversal router's: candidates
        // are charged to their owner shard at routing time, but cold
        // HICL reads during the single shared traversal land on the
        // router and must not vanish from engine totals.
        EngineCounters::sum(
            self.per_shard_stats()
                .into_iter()
                .chain(std::iter::once(self.router_stats()))
                .map(counters_from_io),
        )
    }
    fn reset_counters(&self) {
        self.reset_stats();
    }
}

/// The baselines evaluate the distance of every trajectory they fetch,
/// so `candidates == distance_evals == fetches`.
macro_rules! profiled_baseline {
    ($engine:ty) => {
        impl Profiled for $engine {
            fn counters(&self) -> EngineCounters {
                let fetches = self.fetches();
                EngineCounters {
                    candidates: fetches,
                    distance_evals: fetches,
                    ..EngineCounters::default()
                }
            }
            fn reset_counters(&self) {
                self.reset_fetches();
            }
        }
    };
}

profiled_baseline!(IlEngine);
profiled_baseline!(RtEngine);
profiled_baseline!(IrtEngine);

impl Profiled for Engine {
    fn counters(&self) -> EngineCounters {
        match self {
            Engine::Gat(e) => e.counters(),
            Engine::Il(e) => e.counters(),
            Engine::Rt(e) => e.counters(),
            Engine::Irt(e) => e.counters(),
            Engine::Sharded(e) => e.counters(),
        }
    }
    fn reset_counters(&self) {
        match self {
            Engine::Gat(e) => e.reset_counters(),
            Engine::Il(e) => e.reset_counters(),
            Engine::Rt(e) => e.reset_counters(),
            Engine::Irt(e) => e.reset_counters(),
            Engine::Sharded(e) => e.reset_counters(),
        }
    }
}

impl Engine {
    /// Work counters broken out per shard — one entry per shard for
    /// the sharded engine, a single entry otherwise. Serving stats use
    /// this to expose per-shard candidate counts.
    pub fn per_shard_counters(&self) -> Vec<EngineCounters> {
        match self {
            Engine::Sharded(e) => e
                .per_shard_stats()
                .into_iter()
                .map(counters_from_io)
                .collect(),
            other => vec![other.counters()],
        }
    }

    /// Accumulated engine busy time per shard in nanoseconds — one
    /// entry per shard for the sharded engine, empty otherwise (an
    /// unsharded engine has no internal parallelism to account).
    pub fn per_shard_busy_ns(&self) -> Vec<u64> {
        match self {
            Engine::Sharded(e) => e.per_shard_busy_ns(),
            _ => Vec::new(),
        }
    }

    /// Counters of the sharded engine's shared-traversal router (cold
    /// HICL reads spent generating candidates); `None` for unsharded
    /// engines. The router never records candidates — each candidate
    /// is charged to its owner shard at routing time — so folding this
    /// into an aggregate never perturbs per-shard candidate sums.
    pub fn router_counters(&self) -> Option<EngineCounters> {
        match self {
            Engine::Sharded(e) => Some(counters_from_io(e.router_stats())),
            _ => None,
        }
    }

    /// Accumulated shared-traversal router busy time in nanoseconds;
    /// `None` for unsharded engines.
    pub fn router_busy_ns(&self) -> Option<u64> {
        match self {
            Engine::Sharded(e) => Some(e.router_busy_ns()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueryEngine;
    use atsq_datagen::{generate, generate_queries, CityConfig, QueryGenConfig};

    #[test]
    fn counters_track_work_and_reset() {
        let dataset = generate(&CityConfig::tiny(5)).unwrap();
        let engines = Engine::build_all(&dataset).unwrap();
        let queries = generate_queries(&dataset, &QueryGenConfig::default(), 4);
        for e in &engines {
            e.reset_counters();
            assert_eq!(e.counters(), EngineCounters::default(), "{}", e.name());
            let mut results = 0;
            for q in &queries {
                results += e.atsq(&dataset, q, 5).len();
            }
            let c = e.counters();
            if results > 0 {
                assert!(c.candidates > 0, "{} saw no candidates", e.name());
                assert!(c.distance_evals > 0, "{}", e.name());
                assert!(c.distance_evals <= c.candidates, "{}", e.name());
            }
            e.reset_counters();
            assert_eq!(e.counters(), EngineCounters::default());
        }
    }

    #[test]
    fn gat_prunes_where_baselines_cannot() {
        let dataset = generate(&CityConfig::tiny(21)).unwrap();
        let engines = Engine::build_all(&dataset).unwrap();
        let queries = generate_queries(&dataset, &QueryGenConfig::default(), 6);
        let mut by_name = std::collections::HashMap::new();
        for e in &engines {
            e.reset_counters();
            for q in &queries {
                let _ = e.atsq(&dataset, q, 5);
            }
            by_name.insert(e.name(), e.counters());
        }
        let gat = by_name["GAT"];
        let il = by_name["IL"];
        // GAT's pipeline counters only exist for GAT.
        assert!(gat.apl_reads > 0);
        assert_eq!(il.apl_reads, 0);
        assert_eq!(il.prune_ratio(), 0.0);
        // GAT evaluates no more distances than the activity-only
        // baseline, which must refine every activity match.
        assert!(gat.distance_evals <= il.distance_evals);
    }

    #[test]
    fn prune_ratio_bounds() {
        let c = EngineCounters {
            candidates: 10,
            distance_evals: 3,
            ..EngineCounters::default()
        };
        assert!((c.prune_ratio() - 0.7).abs() < 1e-12);
        assert_eq!(EngineCounters::default().prune_ratio(), 0.0);
    }

    /// A reset racing in-flight queries can leave
    /// `distance_evals > candidates`; the ratio must clamp at zero,
    /// not report a negative pruning fraction.
    #[test]
    fn prune_ratio_clamps_at_zero_under_torn_counters() {
        let torn = EngineCounters {
            candidates: 3,
            distance_evals: 10,
            ..EngineCounters::default()
        };
        assert_eq!(torn.prune_ratio(), 0.0);
        // And a fully-unpruned engine reports exactly zero.
        let even = EngineCounters {
            candidates: 5,
            distance_evals: 5,
            ..EngineCounters::default()
        };
        assert_eq!(even.prune_ratio(), 0.0);
    }

    /// The obs-layer per-query delta converts with the same derived
    /// TAS-pruned rule as the engine-lifetime mapping.
    #[test]
    fn query_counters_convert_to_engine_counters() {
        let qc = atsq_obs::QueryCounters {
            candidates: 10,
            distance_evals: 4,
            tas_checks: 9,
            tas_false_positives: 1,
            apl_reads: 6,
            cold_reads: 2,
        };
        let ec = EngineCounters::from(qc);
        assert_eq!(ec.candidates, 10);
        assert_eq!(ec.distance_evals, 4);
        assert_eq!(ec.tas_pruned, 3);
        assert_eq!(ec.tas_false_positives, 1);
        assert_eq!(ec.apl_reads, 6);
        assert_eq!(ec.cold_reads, 2);
    }
}
