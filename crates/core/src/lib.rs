//! `atsq-core` — the public facade of the activity-trajectory search
//! library, reproducing *Towards Efficient Search for Activity
//! Trajectories* (Zheng, Shang, Yuan & Yang, ICDE 2013).
//!
//! # Quickstart
//!
//! ```
//! use atsq_core::prelude::*;
//!
//! // Build a small dataset by hand (normally: atsq-datagen or your
//! // own check-in import).
//! let mut b = DatasetBuilder::new();
//! let coffee = b.observe_activity("coffee");
//! let art = b.observe_activity("art");
//! b.push_trajectory(vec![
//!     TrajectoryPoint::new(Point::new(0.0, 0.0), ActivitySet::from_ids([coffee])),
//!     TrajectoryPoint::new(Point::new(1.0, 0.0), ActivitySet::from_ids([art])),
//! ]);
//! let dataset = b.finish().unwrap();
//!
//! // Index it with GAT and run an ATSQ.
//! let engine = GatEngine::build(&dataset).unwrap();
//! let coffee = dataset.vocabulary().get("coffee").unwrap();
//! let art = dataset.vocabulary().get("art").unwrap();
//! let query = Query::new(vec![
//!     QueryPoint::new(Point::new(0.1, 0.0), ActivitySet::from_ids([coffee])),
//!     QueryPoint::new(Point::new(0.9, 0.0), ActivitySet::from_ids([art])),
//! ]).unwrap();
//! let top = engine.atsq(&dataset, &query, 1);
//! assert_eq!(top.len(), 1);
//! ```
//!
//! # Engines
//!
//! Four interchangeable [`QueryEngine`] implementations exist, matching
//! the paper's evaluation line-up:
//!
//! | Engine | Index | Paper section |
//! |---|---|---|
//! | [`GatEngine`] | hierarchical grid + HICL/ITL/TAS/APL | §IV–§VI |
//! | [`IlEngine`] | per-activity inverted lists | §III-A |
//! | [`RtEngine`] | R-tree over points | §III-B |
//! | [`IrtEngine`] | IR-tree (R-tree + inverted files) | §III-C |
//!
//! All four return *identical* results for the same query; they differ
//! only in how fast they prune. Property tests in `tests/` assert this
//! agreement.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod batch;
pub mod profile;

pub use atsq_baselines::{IlEngine, IrtEngine, RtEngine};
pub use atsq_gat::{
    snapshot, CacheOutcome, GatConfig, GatIndex, IndexCache, PagedAplConfig, PagedBacking,
    Partition, ShardedEngine,
};
pub use atsq_matching as matching;
pub use atsq_types as types;
pub use batch::{run_batch, run_batch_with_sinks, QueryKind};
pub use profile::{EngineCounters, Profiled};

use atsq_types::{Dataset, Query, QueryResult, Result};

/// A ready-to-use prelude: the types needed by typical applications.
pub mod prelude {
    pub use crate::{Engine, GatEngine, QueryEngine};
    pub use atsq_baselines::{IlEngine, IrtEngine, RtEngine};
    pub use atsq_gat::{GatConfig, Partition, ShardedEngine};
    pub use atsq_types::{
        ActivityId, ActivitySet, Dataset, DatasetBuilder, Point, Query, QueryPoint, QueryResult,
        Rect, Trajectory, TrajectoryId, TrajectoryPoint,
    };
}

/// The two query types of the paper behind one interface, plus their
/// threshold (range) variants.
pub trait QueryEngine {
    /// Activity Trajectory Similarity Query: top-`k` by `Dmm`.
    fn atsq(&self, dataset: &Dataset, query: &Query, k: usize) -> Vec<QueryResult>;
    /// Order-sensitive ATSQ: top-`k` by `Dmom`.
    fn oatsq(&self, dataset: &Dataset, query: &Query, k: usize) -> Vec<QueryResult>;
    /// Every trajectory with `Dmm(Q, Tr) ≤ tau`, ascending.
    fn atsq_range(&self, dataset: &Dataset, query: &Query, tau: f64) -> Vec<QueryResult>;
    /// Every trajectory with `Dmom(Q, Tr) ≤ tau`, ascending.
    fn oatsq_range(&self, dataset: &Dataset, query: &Query, tau: f64) -> Vec<QueryResult>;
    /// Short engine label for reports ("GAT", "IL", "RT", "IRT").
    fn name(&self) -> &'static str;
}

/// The paper's proposed engine: a [`GatIndex`] behind [`QueryEngine`].
#[derive(Debug)]
pub struct GatEngine {
    index: GatIndex,
}

impl GatEngine {
    /// Builds the GAT index with default (paper) configuration.
    pub fn build(dataset: &Dataset) -> Result<Self> {
        Ok(GatEngine {
            index: GatIndex::build(dataset)?,
        })
    }

    /// Builds with an explicit configuration.
    pub fn build_with(dataset: &Dataset, config: GatConfig) -> Result<Self> {
        Ok(GatEngine {
            index: GatIndex::build_with(dataset, config)?,
        })
    }

    /// Builds with the APL on real pages behind a buffer pool. Results
    /// are identical to the in-memory backends; the buffer-pool
    /// counters (`engine.index().apl().pool_stats()`) report measured
    /// page traffic.
    pub fn build_paged(
        dataset: &Dataset,
        config: GatConfig,
        apl_config: &PagedAplConfig,
    ) -> Result<Self> {
        Ok(GatEngine {
            index: GatIndex::build_paged(dataset, config, apl_config)?,
        })
    }

    /// Wraps an already built (or snapshot-loaded) index.
    pub fn from_index(index: GatIndex) -> Self {
        GatEngine { index }
    }

    /// The underlying index (stats, memory reports).
    pub fn index(&self) -> &GatIndex {
        &self.index
    }
}

impl QueryEngine for GatEngine {
    fn atsq(&self, dataset: &Dataset, query: &Query, k: usize) -> Vec<QueryResult> {
        atsq_gat::atsq(&self.index, dataset, query, k)
    }
    fn oatsq(&self, dataset: &Dataset, query: &Query, k: usize) -> Vec<QueryResult> {
        atsq_gat::oatsq(&self.index, dataset, query, k)
    }
    fn atsq_range(&self, dataset: &Dataset, query: &Query, tau: f64) -> Vec<QueryResult> {
        atsq_gat::atsq_range(&self.index, dataset, query, tau)
    }
    fn oatsq_range(&self, dataset: &Dataset, query: &Query, tau: f64) -> Vec<QueryResult> {
        atsq_gat::oatsq_range(&self.index, dataset, query, tau)
    }
    fn name(&self) -> &'static str {
        "GAT"
    }
}

impl QueryEngine for IlEngine {
    fn atsq(&self, dataset: &Dataset, query: &Query, k: usize) -> Vec<QueryResult> {
        IlEngine::atsq(self, dataset, query, k)
    }
    fn oatsq(&self, dataset: &Dataset, query: &Query, k: usize) -> Vec<QueryResult> {
        IlEngine::oatsq(self, dataset, query, k)
    }
    fn atsq_range(&self, dataset: &Dataset, query: &Query, tau: f64) -> Vec<QueryResult> {
        IlEngine::atsq_range(self, dataset, query, tau)
    }
    fn oatsq_range(&self, dataset: &Dataset, query: &Query, tau: f64) -> Vec<QueryResult> {
        IlEngine::oatsq_range(self, dataset, query, tau)
    }
    fn name(&self) -> &'static str {
        "IL"
    }
}

impl QueryEngine for RtEngine {
    fn atsq(&self, dataset: &Dataset, query: &Query, k: usize) -> Vec<QueryResult> {
        RtEngine::atsq(self, dataset, query, k)
    }
    fn oatsq(&self, dataset: &Dataset, query: &Query, k: usize) -> Vec<QueryResult> {
        RtEngine::oatsq(self, dataset, query, k)
    }
    fn atsq_range(&self, dataset: &Dataset, query: &Query, tau: f64) -> Vec<QueryResult> {
        RtEngine::atsq_range(self, dataset, query, tau)
    }
    fn oatsq_range(&self, dataset: &Dataset, query: &Query, tau: f64) -> Vec<QueryResult> {
        RtEngine::oatsq_range(self, dataset, query, tau)
    }
    fn name(&self) -> &'static str {
        "RT"
    }
}

impl QueryEngine for IrtEngine {
    fn atsq(&self, dataset: &Dataset, query: &Query, k: usize) -> Vec<QueryResult> {
        IrtEngine::atsq(self, dataset, query, k)
    }
    fn oatsq(&self, dataset: &Dataset, query: &Query, k: usize) -> Vec<QueryResult> {
        IrtEngine::oatsq(self, dataset, query, k)
    }
    fn atsq_range(&self, dataset: &Dataset, query: &Query, tau: f64) -> Vec<QueryResult> {
        IrtEngine::atsq_range(self, dataset, query, tau)
    }
    fn oatsq_range(&self, dataset: &Dataset, query: &Query, tau: f64) -> Vec<QueryResult> {
        IrtEngine::oatsq_range(self, dataset, query, tau)
    }
    fn name(&self) -> &'static str {
        "IRT"
    }
}

/// The sharded GAT engine behind the common interface. The trait
/// passes the *global* dataset; the engine answers from its own shard
/// copies, so only the length is cross-checked.
impl QueryEngine for ShardedEngine {
    fn atsq(&self, dataset: &Dataset, query: &Query, k: usize) -> Vec<QueryResult> {
        debug_assert_eq!(dataset.len(), self.len(), "dataset/engine mismatch");
        ShardedEngine::atsq(self, query, k)
    }
    fn oatsq(&self, dataset: &Dataset, query: &Query, k: usize) -> Vec<QueryResult> {
        debug_assert_eq!(dataset.len(), self.len(), "dataset/engine mismatch");
        ShardedEngine::oatsq(self, query, k)
    }
    fn atsq_range(&self, dataset: &Dataset, query: &Query, tau: f64) -> Vec<QueryResult> {
        debug_assert_eq!(dataset.len(), self.len(), "dataset/engine mismatch");
        ShardedEngine::atsq_range(self, query, tau)
    }
    fn oatsq_range(&self, dataset: &Dataset, query: &Query, tau: f64) -> Vec<QueryResult> {
        debug_assert_eq!(dataset.len(), self.len(), "dataset/engine mismatch");
        ShardedEngine::oatsq_range(self, query, tau)
    }
    fn name(&self) -> &'static str {
        "GAT-SHARDED"
    }
}

/// Owned enum over the engines, convenient for benchmark sweeps and
/// for serving one concrete type.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // engines are built once and never moved
pub enum Engine {
    /// The paper's GAT engine.
    Gat(GatEngine),
    /// Inverted-list baseline.
    Il(IlEngine),
    /// R-tree baseline.
    Rt(RtEngine),
    /// IR-tree baseline.
    Irt(IrtEngine),
    /// Sharded parallel GAT (one index per shard, shared k-th-best
    /// bound). Not part of [`Engine::build_all`]'s paper line-up.
    Sharded(ShardedEngine),
}

impl Engine {
    /// Builds the serving engine — a single [`GatEngine`], or a
    /// [`ShardedEngine`] when `shards > 1` — optionally through a
    /// persistent [`IndexCache`]. With a cache, a valid snapshot keyed
    /// by the dataset's content hash is *loaded* (answers are
    /// byte-identical to a fresh build); a missing, stale or corrupt
    /// snapshot triggers a fresh build whose snapshot is saved for the
    /// next start. Returns the engine plus the cache outcome (`None`
    /// when no cache was used).
    pub fn build_gat(
        dataset: &Dataset,
        shards: usize,
        partition: Partition,
        cache: Option<&IndexCache>,
    ) -> Result<(Engine, Option<CacheOutcome>)> {
        let config = GatConfig::default();
        match (cache, shards > 1) {
            (None, false) => Ok((Engine::Gat(GatEngine::build(dataset)?), None)),
            (None, true) => Ok((
                Engine::Sharded(ShardedEngine::build(dataset, shards, partition)?),
                None,
            )),
            (Some(cache), false) => {
                let (index, outcome) = cache.load_or_build(dataset, config)?;
                Ok((Engine::Gat(GatEngine::from_index(index)), Some(outcome)))
            }
            (Some(cache), true) => {
                let (engine, outcome) =
                    cache.load_or_build_sharded(dataset, shards, partition, config)?;
                Ok((Engine::Sharded(engine), Some(outcome)))
            }
        }
    }

    /// Estimated resident bytes of the engine itself (the serving
    /// dataset is accounted separately): every index component for
    /// GAT, and per-shard dataset copies plus indexes for the sharded
    /// engine. The baselines are not served multi-tenant and report
    /// zero. Feeds the tenancy layer's memory-budget accountant.
    pub fn approx_resident_bytes(&self) -> usize {
        match self {
            Engine::Gat(e) => e.index().memory_report().total_bytes(),
            Engine::Sharded(e) => e.approx_resident_bytes(),
            Engine::Il(_) | Engine::Rt(_) | Engine::Irt(_) => 0,
        }
    }

    /// Builds every engine for a dataset, in the paper's order
    /// (IL, RT, IRT, GAT).
    pub fn build_all(dataset: &Dataset) -> Result<Vec<Engine>> {
        Ok(vec![
            Engine::Il(IlEngine::build(dataset)),
            Engine::Rt(RtEngine::build(dataset)),
            Engine::Irt(IrtEngine::build(dataset)),
            Engine::Gat(GatEngine::build(dataset)?),
        ])
    }
}

impl QueryEngine for Engine {
    fn atsq(&self, dataset: &Dataset, query: &Query, k: usize) -> Vec<QueryResult> {
        match self {
            Engine::Gat(e) => e.atsq(dataset, query, k),
            Engine::Il(e) => QueryEngine::atsq(e, dataset, query, k),
            Engine::Rt(e) => QueryEngine::atsq(e, dataset, query, k),
            Engine::Irt(e) => QueryEngine::atsq(e, dataset, query, k),
            Engine::Sharded(e) => QueryEngine::atsq(e, dataset, query, k),
        }
    }
    fn oatsq(&self, dataset: &Dataset, query: &Query, k: usize) -> Vec<QueryResult> {
        match self {
            Engine::Gat(e) => e.oatsq(dataset, query, k),
            Engine::Il(e) => QueryEngine::oatsq(e, dataset, query, k),
            Engine::Rt(e) => QueryEngine::oatsq(e, dataset, query, k),
            Engine::Irt(e) => QueryEngine::oatsq(e, dataset, query, k),
            Engine::Sharded(e) => QueryEngine::oatsq(e, dataset, query, k),
        }
    }
    fn atsq_range(&self, dataset: &Dataset, query: &Query, tau: f64) -> Vec<QueryResult> {
        match self {
            Engine::Gat(e) => QueryEngine::atsq_range(e, dataset, query, tau),
            Engine::Il(e) => QueryEngine::atsq_range(e, dataset, query, tau),
            Engine::Rt(e) => QueryEngine::atsq_range(e, dataset, query, tau),
            Engine::Irt(e) => QueryEngine::atsq_range(e, dataset, query, tau),
            Engine::Sharded(e) => QueryEngine::atsq_range(e, dataset, query, tau),
        }
    }
    fn oatsq_range(&self, dataset: &Dataset, query: &Query, tau: f64) -> Vec<QueryResult> {
        match self {
            Engine::Gat(e) => QueryEngine::oatsq_range(e, dataset, query, tau),
            Engine::Il(e) => QueryEngine::oatsq_range(e, dataset, query, tau),
            Engine::Rt(e) => QueryEngine::oatsq_range(e, dataset, query, tau),
            Engine::Irt(e) => QueryEngine::oatsq_range(e, dataset, query, tau),
            Engine::Sharded(e) => QueryEngine::oatsq_range(e, dataset, query, tau),
        }
    }
    fn name(&self) -> &'static str {
        match self {
            Engine::Gat(e) => e.name(),
            Engine::Il(e) => e.name(),
            Engine::Rt(e) => e.name(),
            Engine::Irt(e) => e.name(),
            Engine::Sharded(e) => e.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsq_datagen::{generate, generate_queries, CityConfig, QueryGenConfig};

    #[test]
    fn all_engines_agree_on_generated_data() {
        let dataset = generate(&CityConfig::tiny(17)).unwrap();
        let engines = Engine::build_all(&dataset).unwrap();
        let queries = generate_queries(
            &dataset,
            &QueryGenConfig {
                query_points: 2,
                acts_per_point: 2,
                ..Default::default()
            },
            5,
        );
        for q in &queries {
            let reference = engines[0].atsq(&dataset, q, 5);
            for e in &engines[1..] {
                assert_eq!(e.atsq(&dataset, q, 5), reference, "{} diverged", e.name());
            }
            let reference_o = engines[0].oatsq(&dataset, q, 5);
            for e in &engines[1..] {
                assert_eq!(
                    e.oatsq(&dataset, q, 5),
                    reference_o,
                    "{} diverged (ordered)",
                    e.name()
                );
            }
        }
    }

    #[test]
    fn build_gat_through_cache_matches_direct_build() {
        let dataset = generate(&CityConfig::tiny(29)).unwrap();
        let queries = generate_queries(&dataset, &QueryGenConfig::default(), 4);
        let dir = std::env::temp_dir().join(format!("atsq-core-cache-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cache = IndexCache::new(&dir);
        for shards in [1usize, 3] {
            let (direct, outcome) =
                Engine::build_gat(&dataset, shards, Partition::Hash, None).unwrap();
            assert!(outcome.is_none());
            let (cold, outcome) =
                Engine::build_gat(&dataset, shards, Partition::Hash, Some(&cache)).unwrap();
            assert!(!outcome.unwrap().loaded(), "cold cache must build");
            let (warm, outcome) =
                Engine::build_gat(&dataset, shards, Partition::Hash, Some(&cache)).unwrap();
            assert!(outcome.unwrap().loaded(), "warm cache must load");
            for q in &queries {
                let want = direct.atsq(&dataset, q, 5);
                assert_eq!(cold.atsq(&dataset, q, 5), want);
                assert_eq!(warm.atsq(&dataset, q, 5), want);
                let want = direct.oatsq_range(&dataset, q, 40.0);
                assert_eq!(warm.oatsq_range(&dataset, q, 40.0), want);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn engine_names() {
        let dataset = generate(&CityConfig::tiny(1)).unwrap();
        let engines = Engine::build_all(&dataset).unwrap();
        let names: Vec<&str> = engines.iter().map(|e| e.name()).collect();
        assert_eq!(names, vec!["IL", "RT", "IRT", "GAT"]);
    }
}
