//! `atsq-obs` — observability primitives for the serving stack.
//!
//! The engine crates count their work in process-lifetime atomics
//! ([`atsq_gat::IoStats`]-style counters); that answers "how much work
//! has this index done", never "how much work did *this* query do".
//! This crate provides the missing per-request layer, with no
//! dependencies beyond `std`:
//!
//! * [`counters`] — a **per-query counter context**: a thread-local
//!   accumulator plus a [`CounterScope`] guard that flushes the delta
//!   observed inside the scope into an [`Arc`]'d [`CounterSink`].
//!   Engine hot paths call the free `record_*` functions (one
//!   thread-local read and branch when no scope is active); concurrent
//!   queries each carry their own sink, so their numbers never smear
//!   the way global-snapshot diffs would. Scopes propagate across the
//!   engines' scoped worker threads via [`current_sink`].
//! * [`span`] — monotone **stage clocks**: a [`StageClock`] marks
//!   request stages (admission → queue → cache → assembly → engine →
//!   reply) whose durations telescope exactly to the end-to-end
//!   latency, and a [`TraceReport`] carries the breakdown together
//!   with the query's counter delta and per-shard busy time.
//! * [`slowlog`] — a bounded **slow-query ring buffer** with a
//!   latency threshold and a force flag for always-sampling the tail.
//! * [`prom`] — a tiny **Prometheus text-format** writer (counters,
//!   gauges, histograms, labels).
//!
//! [`atsq_gat::IoStats`]: https://docs.rs/atsq-gat
//! [`Arc`]: std::sync::Arc

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod counters;
pub mod prom;
pub mod slowlog;
pub mod span;

pub use counters::{
    current_sink, record_apl_read, record_candidate, record_cold_read, record_distance_eval,
    record_shard_busy, record_tas_check, record_tas_false_positive, CounterScope, CounterSink,
    QueryCounters,
};
pub use prom::PromText;
pub use slowlog::{SlowEntry, SlowLog};
pub use span::{Stage, StageClock, TraceReport, STAGES};
