//! Per-query work-counter contexts.
//!
//! The engines' own counters are process-lifetime atomics shared by
//! every concurrent query; diffing snapshots around one query's
//! execution attributes *everyone's* work to it. The scheme here keeps
//! attribution exact under concurrency:
//!
//! 1. The engine hot paths call the free `record_*` functions below at
//!    the same call sites that bump the lifetime atomics. Each call is
//!    one thread-local increment — no atomics, no locks.
//! 2. A request's executor wraps the query in a
//!    [`CounterScope::enter`] guard pointing at the request's own
//!    [`CounterSink`]. On drop, the guard flushes the thread-local
//!    *delta* accumulated since entry into the sink.
//! 3. Engines that fan work out to scoped worker threads propagate the
//!    context by capturing [`current_sink`] on the coordinating thread
//!    and entering a scope with the same sink inside each worker; the
//!    per-thread deltas sum in the shared sink.
//!
//! Scopes nest (inner work is visible to outer scopes, since an outer
//! baseline is older), and when no scope is active a `record_*` call
//! is a thread-local flag test — cheap enough to leave enabled on
//! every engine path.

use atsq_model::atomic::{AtomicU64, Ordering};
use atsq_model::sync::Mutex;
use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::sync::Arc;

/// One query's work-counter delta. Field names follow
/// `EngineCounters` in `atsq-core`, with the raw TAS check count kept
/// (the derived "pruned" figure is checks minus APL reads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryCounters {
    /// Candidate trajectories entering the candidate set.
    pub candidates: u64,
    /// Full match-distance evaluations.
    pub distance_evals: u64,
    /// TAS containment checks performed.
    pub tas_checks: u64,
    /// TAS passes later refuted by the APL.
    pub tas_false_positives: u64,
    /// APL posting-list fetches.
    pub apl_reads: u64,
    /// Cold HICL accesses.
    pub cold_reads: u64,
}

impl QueryCounters {
    /// Component-wise saturating difference (`self - earlier`).
    fn delta_since(&self, earlier: &QueryCounters) -> QueryCounters {
        QueryCounters {
            candidates: self.candidates.saturating_sub(earlier.candidates),
            distance_evals: self.distance_evals.saturating_sub(earlier.distance_evals),
            tas_checks: self.tas_checks.saturating_sub(earlier.tas_checks),
            tas_false_positives: self
                .tas_false_positives
                .saturating_sub(earlier.tas_false_positives),
            apl_reads: self.apl_reads.saturating_sub(earlier.apl_reads),
            cold_reads: self.cold_reads.saturating_sub(earlier.cold_reads),
        }
    }

    /// Component-wise sum.
    pub fn add(&self, other: &QueryCounters) -> QueryCounters {
        QueryCounters {
            candidates: self.candidates + other.candidates,
            distance_evals: self.distance_evals + other.distance_evals,
            tas_checks: self.tas_checks + other.tas_checks,
            tas_false_positives: self.tas_false_positives + other.tas_false_positives,
            apl_reads: self.apl_reads + other.apl_reads,
            cold_reads: self.cold_reads + other.cold_reads,
        }
    }

    /// Whether every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == QueryCounters::default()
    }
}

/// The destination of one query's counter deltas. Atomic because
/// several worker threads (sharded engine, batch executor) may flush
/// into the same query's sink concurrently.
#[derive(Debug, Default)]
pub struct CounterSink {
    candidates: AtomicU64,
    distance_evals: AtomicU64,
    tas_checks: AtomicU64,
    tas_false_positives: AtomicU64,
    apl_reads: AtomicU64,
    cold_reads: AtomicU64,
    /// Busy nanoseconds per engine shard for this query, indexed by
    /// shard. Cold path (one update per shard per query), so a mutex
    /// is fine.
    shard_busy_ns: Mutex<Vec<u64>>,
}

impl CounterSink {
    /// A fresh shared sink.
    pub fn new() -> Arc<CounterSink> {
        Arc::new(CounterSink::default())
    }

    fn flush(&self, delta: &QueryCounters) {
        if delta.is_zero() {
            return;
        }
        // ordering: Relaxed — independent monotone tallies; the sink
        // is read after the query's worker threads are joined, and
        // the join itself provides the happens-before edge.
        self.candidates
            .fetch_add(delta.candidates, Ordering::Relaxed);
        self.distance_evals
            .fetch_add(delta.distance_evals, Ordering::Relaxed);
        // ordering: Relaxed — as above.
        self.tas_checks
            .fetch_add(delta.tas_checks, Ordering::Relaxed);
        self.tas_false_positives
            .fetch_add(delta.tas_false_positives, Ordering::Relaxed);
        // ordering: Relaxed — as above.
        self.apl_reads.fetch_add(delta.apl_reads, Ordering::Relaxed);
        self.cold_reads
            .fetch_add(delta.cold_reads, Ordering::Relaxed);
    }

    /// Adds busy time for one engine shard.
    pub fn add_shard_busy(&self, shard: usize, ns: u64) {
        let mut busy = self.shard_busy_ns.lock();
        if busy.len() <= shard {
            busy.resize(shard + 1, 0);
        }
        busy[shard] += ns;
    }

    /// The accumulated counter delta.
    pub fn counters(&self) -> QueryCounters {
        // coherence: not a point-in-time cut across the six counters —
        // callers read the sink after joining (or dropping the scopes
        // of) the threads that flush into it, so by then the values
        // are quiescent; mid-flight reads are advisory progress only.
        // ordering: Relaxed — see the coherence note above.
        QueryCounters {
            candidates: self.candidates.load(Ordering::Relaxed),
            distance_evals: self.distance_evals.load(Ordering::Relaxed),
            tas_checks: self.tas_checks.load(Ordering::Relaxed),
            tas_false_positives: self.tas_false_positives.load(Ordering::Relaxed),
            apl_reads: self.apl_reads.load(Ordering::Relaxed),
            cold_reads: self.cold_reads.load(Ordering::Relaxed),
        }
    }

    /// The accumulated per-shard busy time (empty for unsharded
    /// engines).
    pub fn shard_busy_ns(&self) -> Vec<u64> {
        self.shard_busy_ns.lock().clone()
    }
}

struct Frame {
    sink: Arc<CounterSink>,
    baseline: QueryCounters,
}

struct LocalCtx {
    active: Cell<bool>,
    candidates: Cell<u64>,
    distance_evals: Cell<u64>,
    tas_checks: Cell<u64>,
    tas_false_positives: Cell<u64>,
    apl_reads: Cell<u64>,
    cold_reads: Cell<u64>,
    stack: RefCell<Vec<Frame>>,
}

impl LocalCtx {
    const fn new() -> LocalCtx {
        LocalCtx {
            active: Cell::new(false),
            candidates: Cell::new(0),
            distance_evals: Cell::new(0),
            tas_checks: Cell::new(0),
            tas_false_positives: Cell::new(0),
            apl_reads: Cell::new(0),
            cold_reads: Cell::new(0),
            stack: RefCell::new(Vec::new()),
        }
    }

    fn totals(&self) -> QueryCounters {
        QueryCounters {
            candidates: self.candidates.get(),
            distance_evals: self.distance_evals.get(),
            tas_checks: self.tas_checks.get(),
            tas_false_positives: self.tas_false_positives.get(),
            apl_reads: self.apl_reads.get(),
            cold_reads: self.cold_reads.get(),
        }
    }
}

thread_local! {
    static CTX: LocalCtx = const { LocalCtx::new() };
}

macro_rules! record_fn {
    ($(#[$doc:meta])* $name:ident, $field:ident) => {
        $(#[$doc])*
        #[inline]
        pub fn $name() {
            CTX.with(|c| {
                if c.active.get() {
                    c.$field.set(c.$field.get() + 1);
                }
            });
        }
    };
}

record_fn!(
    /// Records one candidate retrieval into the active scope (no-op
    /// without one).
    record_candidate,
    candidates
);
record_fn!(
    /// Records one full distance evaluation.
    record_distance_eval,
    distance_evals
);
record_fn!(
    /// Records one TAS containment check.
    record_tas_check,
    tas_checks
);
record_fn!(
    /// Records one TAS false positive.
    record_tas_false_positive,
    tas_false_positives
);
record_fn!(
    /// Records one APL posting-list fetch.
    record_apl_read,
    apl_reads
);
record_fn!(
    /// Records one cold HICL access.
    record_cold_read,
    cold_reads
);

/// Adds `ns` of busy time for engine shard `shard` to the innermost
/// active scope's sink. No-op without an active scope.
pub fn record_shard_busy(shard: usize, ns: u64) {
    CTX.with(|c| {
        if !c.active.get() {
            return;
        }
        let stack = c.stack.borrow();
        if let Some(frame) = stack.last() {
            frame.sink.add_shard_busy(shard, ns);
        }
    });
}

/// The sink of the innermost active scope on this thread, if any.
/// Engines that fan a query out to worker threads capture this on the
/// coordinating thread and [`CounterScope::enter`] it inside each
/// worker, so the workers' counts land in the same query's sink.
pub fn current_sink() -> Option<Arc<CounterSink>> {
    CTX.with(|c| c.stack.borrow().last().map(|f| f.sink.clone()))
}

/// An RAII counter scope: everything recorded on this thread between
/// `enter` and drop is flushed into the given sink.
///
/// Scopes nest LIFO per thread; an outer scope's baseline is older, so
/// inner work is included in the outer delta as well (a query's total
/// includes its sub-spans). The guard is `!Send` — it must drop on the
/// thread that entered it.
#[must_use = "the scope flushes its delta on drop"]
pub struct CounterScope {
    _not_send: PhantomData<*const ()>,
}

impl CounterScope {
    /// Opens a scope targeting `sink` on the current thread.
    pub fn enter(sink: Arc<CounterSink>) -> CounterScope {
        CTX.with(|c| {
            c.stack.borrow_mut().push(Frame {
                sink,
                baseline: c.totals(),
            });
            c.active.set(true);
        });
        CounterScope {
            _not_send: PhantomData,
        }
    }
}

impl Drop for CounterScope {
    fn drop(&mut self) {
        CTX.with(|c| {
            let frame = c
                .stack
                .borrow_mut()
                .pop()
                .expect("counter scope stack underflow");
            frame.sink.flush(&c.totals().delta_since(&frame.baseline));
            c.active.set(!c.stack.borrow().is_empty());
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_records_are_no_ops() {
        record_candidate();
        record_distance_eval();
        let sink = CounterSink::new();
        {
            let _scope = CounterScope::enter(sink.clone());
        }
        assert!(sink.counters().is_zero());
    }

    #[test]
    fn scope_captures_only_its_own_window() {
        // Counts recorded before the scope must not leak into it.
        record_candidate();
        let sink = CounterSink::new();
        {
            let _scope = CounterScope::enter(sink.clone());
            record_candidate();
            record_candidate();
            record_apl_read();
            record_tas_check();
            record_tas_false_positive();
            record_distance_eval();
            record_cold_read();
        }
        // And counts after it must not either.
        record_candidate();
        let c = sink.counters();
        assert_eq!(c.candidates, 2);
        assert_eq!(c.apl_reads, 1);
        assert_eq!(c.tas_checks, 1);
        assert_eq!(c.tas_false_positives, 1);
        assert_eq!(c.distance_evals, 1);
        assert_eq!(c.cold_reads, 1);
    }

    #[test]
    fn nested_scopes_both_see_inner_work() {
        let outer = CounterSink::new();
        let inner = CounterSink::new();
        {
            let _o = CounterScope::enter(outer.clone());
            record_candidate();
            {
                let _i = CounterScope::enter(inner.clone());
                record_candidate();
                record_candidate();
            }
            record_candidate();
        }
        assert_eq!(inner.counters().candidates, 2);
        assert_eq!(outer.counters().candidates, 4);
    }

    #[test]
    fn sink_propagates_across_threads() {
        let sink = CounterSink::new();
        {
            let _scope = CounterScope::enter(sink.clone());
            record_candidate();
            let shared = current_sink().expect("active scope");
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    let shared = shared.clone();
                    scope.spawn(move || {
                        let _s = CounterScope::enter(shared);
                        record_candidate();
                        record_distance_eval();
                        record_shard_busy(1, 10);
                    });
                }
            });
        }
        let c = sink.counters();
        assert_eq!(c.candidates, 5);
        assert_eq!(c.distance_evals, 4);
        assert_eq!(sink.shard_busy_ns(), vec![0, 40]);
    }

    #[test]
    fn no_scope_means_no_current_sink() {
        assert!(current_sink().is_none());
        let sink = CounterSink::new();
        let scope = CounterScope::enter(sink);
        assert!(current_sink().is_some());
        drop(scope);
        assert!(current_sink().is_none());
    }
}
