//! Stage clocks and per-request trace reports.
//!
//! A request's life is a chain of stages; the clock here records each
//! stage as the time between consecutive [`StageClock::mark`] calls,
//! so the per-stage durations **telescope**: their sum is exactly the
//! time from [`StageClock::start`] to the last mark. That is the
//! property that lets a slow-log entry's stage breakdown be audited
//! against its end-to-end latency with no epsilon games.

use crate::counters::QueryCounters;
use std::time::Instant;

/// Number of request stages.
pub const STAGES: usize = 6;

/// One stage of a request's life inside the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Submission: cache-key canonicalisation and queue admission.
    Admission = 0,
    /// Waiting in the bounded queue for a worker.
    Queue = 1,
    /// Deadline check and result-cache lookup at batch admission.
    Cache = 2,
    /// Waiting for the request's micro-batch group to start executing
    /// (includes earlier groups of the same drained batch).
    Assembly = 3,
    /// Engine execution.
    Engine = 4,
    /// From execution end (or cache hit) to the reply send. For
    /// requests coalesced onto an in-batch duplicate this includes the
    /// wait for the primary's execution.
    Reply = 5,
}

impl Stage {
    /// All stages, in request-lifecycle order.
    pub const ALL: [Stage; STAGES] = [
        Stage::Admission,
        Stage::Queue,
        Stage::Cache,
        Stage::Assembly,
        Stage::Engine,
        Stage::Reply,
    ];

    /// Stable lowercase stage name (metric label / wire field).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Admission => "admission",
            Stage::Queue => "queue",
            Stage::Cache => "cache",
            Stage::Assembly => "assembly",
            Stage::Engine => "engine",
            Stage::Reply => "reply",
        }
    }
}

/// A monotone per-request stage timer.
#[derive(Debug)]
pub struct StageClock {
    last: Instant,
    stage_ns: [u64; STAGES],
}

impl StageClock {
    /// Starts the clock; the first `mark` closes the first stage.
    pub fn start() -> StageClock {
        StageClock {
            last: Instant::now(),
            stage_ns: [0; STAGES],
        }
    }

    /// Attributes the time since the previous mark (or start) to
    /// `stage`. A stage may be marked more than once; durations add.
    pub fn mark(&mut self, stage: Stage) {
        let now = Instant::now();
        self.stage_ns[stage as usize] += now.duration_since(self.last).as_nanos() as u64;
        self.last = now;
    }

    /// Per-stage nanoseconds recorded so far.
    pub fn stage_ns(&self) -> [u64; STAGES] {
        self.stage_ns
    }

    /// Closes the clock into a [`TraceReport`]. `total_ns` is the sum
    /// of the stage durations — exactly the start→last-mark span.
    pub fn finish(
        self,
        request_id: u64,
        op: &'static str,
        status: &'static str,
        cached: bool,
        counters: QueryCounters,
        shard_busy_ns: Vec<u64>,
    ) -> TraceReport {
        TraceReport {
            request_id,
            op,
            status,
            cached,
            total_ns: self.stage_ns.iter().sum(),
            stage_ns: self.stage_ns,
            counters,
            shard_busy_ns,
        }
    }
}

/// The full trace of one served request.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// The service-assigned request id (echoed on the wire).
    pub request_id: u64,
    /// Request op label (`atsq`, `oatsq`, …).
    pub op: &'static str,
    /// Outcome: `ok`, `expired` or `failed`.
    pub status: &'static str,
    /// Whether the answer came from the result cache.
    pub cached: bool,
    /// End-to-end submit→reply nanoseconds (the exact stage sum).
    pub total_ns: u64,
    /// Per-stage nanoseconds, indexed by [`Stage`].
    pub stage_ns: [u64; STAGES],
    /// This query's engine work-counter delta.
    pub counters: QueryCounters,
    /// Engine busy nanoseconds per shard for this query (empty when
    /// the engine is unsharded or the query never reached the engine).
    pub shard_busy_ns: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_durations_telescope_to_total() {
        let mut clock = StageClock::start();
        clock.mark(Stage::Admission);
        std::thread::sleep(std::time::Duration::from_millis(2));
        clock.mark(Stage::Queue);
        clock.mark(Stage::Cache);
        std::thread::sleep(std::time::Duration::from_millis(1));
        clock.mark(Stage::Engine);
        clock.mark(Stage::Reply);
        let report = clock.finish(7, "atsq", "ok", false, QueryCounters::default(), vec![]);
        assert_eq!(report.request_id, 7);
        assert_eq!(report.stage_ns.iter().sum::<u64>(), report.total_ns);
        assert!(report.stage_ns[Stage::Queue as usize] >= 1_000_000);
        assert!(report.stage_ns[Stage::Engine as usize] >= 500_000);
        assert_eq!(report.stage_ns[Stage::Assembly as usize], 0);
    }

    #[test]
    fn repeated_marks_accumulate() {
        let mut clock = StageClock::start();
        clock.mark(Stage::Engine);
        clock.mark(Stage::Engine);
        let ns = clock.stage_ns();
        assert_eq!(ns.iter().sum::<u64>(), ns[Stage::Engine as usize]);
    }

    #[test]
    fn stage_names_are_stable() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            ["admission", "queue", "cache", "assembly", "engine", "reply"]
        );
    }
}
