//! Prometheus text-format (version 0.0.4) rendering.
//!
//! A tiny writer for the exposition format scrapers expect: `# HELP` /
//! `# TYPE` headers followed by sample lines, with optional labels and
//! cumulative histogram buckets. No escaping surprises: metric and
//! label names must be valid identifiers (the callers use literals),
//! label *values* are escaped per the spec.

use std::fmt::Write as _;

/// An in-progress Prometheus text exposition.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

impl PromText {
    /// An empty exposition.
    pub fn new() -> PromText {
        PromText::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    fn sample(&mut self, name: &str, labels: &[(&str, String)], value: f64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                let _ = write!(self.out, "{k}=\"{}\"", escape_label(v));
            }
            self.out.push('}');
        }
        let _ = writeln!(self.out, " {}", format_value(value));
    }

    /// A single-sample counter.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        self.sample(name, &[], value as f64);
    }

    /// A counter family with one label dimension.
    pub fn counter_family(
        &mut self,
        name: &str,
        help: &str,
        label: &str,
        samples: impl IntoIterator<Item = (String, u64)>,
    ) {
        self.header(name, help, "counter");
        for (value, count) in samples {
            self.sample(name, &[(label, value)], count as f64);
        }
    }

    /// A single-sample counter with a fractional value (totals in base
    /// units, e.g. seconds).
    pub fn counter_f64(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "counter");
        self.sample(name, &[], value);
    }

    /// A counter family with one label dimension and fractional values.
    pub fn counter_family_f64(
        &mut self,
        name: &str,
        help: &str,
        label: &str,
        samples: impl IntoIterator<Item = (String, f64)>,
    ) {
        self.header(name, help, "counter");
        for (value, count) in samples {
            self.sample(name, &[(label, value)], count);
        }
    }

    /// A single-sample gauge.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "gauge");
        self.sample(name, &[], value);
    }

    /// A gauge family with one label dimension (e.g. per-city resident
    /// bytes).
    pub fn gauge_family(
        &mut self,
        name: &str,
        help: &str,
        label: &str,
        samples: impl IntoIterator<Item = (String, f64)>,
    ) {
        self.header(name, help, "gauge");
        for (value, sample) in samples {
            self.sample(name, &[(label, value)], sample);
        }
    }

    /// A cumulative histogram from per-bucket (non-cumulative) counts.
    /// `upper_bounds[i]` is bucket `i`'s inclusive upper bound; a final
    /// `+Inf` bucket, `_sum` and `_count` samples are emitted per the
    /// exposition format.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        upper_bounds: &[f64],
        bucket_counts: &[u64],
        sum: f64,
        count: u64,
    ) {
        assert_eq!(upper_bounds.len(), bucket_counts.len());
        self.header(name, help, "histogram");
        let mut cumulative = 0u64;
        for (le, n) in upper_bounds.iter().zip(bucket_counts) {
            cumulative += n;
            self.sample(
                &format!("{name}_bucket"),
                &[("le", format_value(*le))],
                cumulative as f64,
            );
        }
        self.sample(
            &format!("{name}_bucket"),
            &[("le", "+Inf".to_owned())],
            count as f64,
        );
        self.sample(&format!("{name}_sum"), &[], sum);
        self.sample(&format!("{name}_count"), &[], count as f64);
    }

    /// The rendered exposition text.
    pub fn finish(self) -> String {
        self.out
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Prometheus-friendly number formatting: integral values print
/// without a fractional part, everything else uses Rust's shortest
/// round-trip `f64` form.
fn format_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render() {
        let mut p = PromText::new();
        p.counter("atsq_requests_total", "Requests admitted.", 42);
        p.gauge("atsq_queue_depth", "Queued requests.", 3.0);
        let text = p.finish();
        assert!(text.contains("# HELP atsq_requests_total Requests admitted.\n"));
        assert!(text.contains("# TYPE atsq_requests_total counter\n"));
        assert!(
            text.contains("\natsq_requests_total 42\n")
                || text.starts_with("atsq_requests_total 42\n")
                || text.contains("atsq_requests_total 42\n")
        );
        assert!(text.contains("atsq_queue_depth 3\n"));
    }

    #[test]
    fn families_carry_labels() {
        let mut p = PromText::new();
        p.counter_family(
            "atsq_shard_candidates_total",
            "Candidates per shard.",
            "shard",
            [("0".to_owned(), 5), ("1".to_owned(), 7)],
        );
        let text = p.finish();
        assert!(text.contains("atsq_shard_candidates_total{shard=\"0\"} 5\n"));
        assert!(text.contains("atsq_shard_candidates_total{shard=\"1\"} 7\n"));
    }

    #[test]
    fn gauge_families_carry_labels() {
        let mut p = PromText::new();
        p.gauge_family(
            "atsq_city_resident_bytes",
            "Resident bytes per city.",
            "city",
            [("tokyo".to_owned(), 1024.0), ("osaka".to_owned(), 0.0)],
        );
        let text = p.finish();
        assert!(text.contains("# TYPE atsq_city_resident_bytes gauge\n"));
        assert!(text.contains("atsq_city_resident_bytes{city=\"tokyo\"} 1024\n"));
        assert!(text.contains("atsq_city_resident_bytes{city=\"osaka\"} 0\n"));
    }

    #[test]
    fn histograms_are_cumulative_with_inf() {
        let mut p = PromText::new();
        p.histogram(
            "atsq_latency_seconds",
            "Latency.",
            &[0.001, 0.01],
            &[3, 2],
            0.25,
            6, // one observation beyond the last finite bucket
        );
        let text = p.finish();
        assert!(text.contains("atsq_latency_seconds_bucket{le=\"0.001\"} 3\n"));
        assert!(text.contains("atsq_latency_seconds_bucket{le=\"0.01\"} 5\n"));
        assert!(text.contains("atsq_latency_seconds_bucket{le=\"+Inf\"} 6\n"));
        assert!(text.contains("atsq_latency_seconds_sum 0.25\n"));
        assert!(text.contains("atsq_latency_seconds_count 6\n"));
    }

    #[test]
    fn label_values_escape() {
        let mut p = PromText::new();
        p.counter_family("x_total", "X.", "who", [("a\"b\\c\nd".to_owned(), 1)]);
        assert!(p.finish().contains("x_total{who=\"a\\\"b\\\\c\\nd\"} 1\n"));
    }
}
