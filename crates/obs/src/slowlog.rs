//! A bounded slow-query log.
//!
//! A fixed-capacity ring of [`TraceReport`]s. The policy is
//! *threshold + always-sample-the-tail*: a request is recorded when
//! its end-to-end latency crosses the configured threshold, **or**
//! when the caller forces it (the service forces requests at or above
//! the current p99 bucket, so the tail is represented even when the
//! threshold is set high). The ring evicts oldest-first, so memory is
//! bounded no matter the traffic.

use crate::span::TraceReport;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::time::Instant;

/// One recorded slow request.
#[derive(Debug, Clone)]
pub struct SlowEntry {
    /// The request's trace.
    pub report: TraceReport,
    /// When the entry was recorded (for age reporting).
    pub recorded_at: Instant,
}

/// Bounded ring buffer of slow-request traces.
#[derive(Debug)]
pub struct SlowLog {
    threshold_ns: u64,
    inner: Mutex<VecDeque<SlowEntry>>,
    capacity: usize,
}

impl SlowLog {
    /// A log holding at most `capacity` entries, recording requests
    /// slower than `threshold_ns` (zero records everything). Capacity
    /// zero disables the log entirely.
    pub fn new(capacity: usize, threshold_ns: u64) -> SlowLog {
        SlowLog {
            threshold_ns,
            inner: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity,
        }
    }

    /// The configured latency threshold in nanoseconds.
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns
    }

    /// Offers a trace. Recorded when `force` is set or the trace's
    /// total latency is at or above the threshold; the oldest entry is
    /// evicted when the ring is full. Returns whether it was recorded.
    pub fn offer(&self, report: TraceReport, force: bool) -> bool {
        if self.capacity == 0 || (!force && report.total_ns < self.threshold_ns) {
            return false;
        }
        let mut ring = self.inner.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(SlowEntry {
            report,
            recorded_at: Instant::now(),
        });
        true
    }

    /// Entries oldest-first.
    pub fn entries(&self) -> Vec<SlowEntry> {
        self.inner.lock().iter().cloned().collect()
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the log holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::QueryCounters;

    fn report(id: u64, total_ns: u64) -> TraceReport {
        TraceReport {
            request_id: id,
            op: "atsq",
            status: "ok",
            cached: false,
            total_ns,
            stage_ns: [0, 0, 0, 0, total_ns, 0],
            counters: QueryCounters::default(),
            shard_busy_ns: Vec::new(),
        }
    }

    #[test]
    fn threshold_filters_and_force_overrides() {
        let log = SlowLog::new(8, 1_000_000);
        assert!(!log.offer(report(1, 10), false), "below threshold");
        assert!(log.offer(report(2, 2_000_000), false), "above threshold");
        assert!(log.offer(report(3, 10), true), "forced");
        let ids: Vec<u64> = log.entries().iter().map(|e| e.report.request_id).collect();
        assert_eq!(ids, [2, 3]);
    }

    #[test]
    fn ring_evicts_oldest_first() {
        let log = SlowLog::new(3, 0);
        for id in 1..=5 {
            assert!(log.offer(report(id, id), false));
        }
        let ids: Vec<u64> = log.entries().iter().map(|e| e.report.request_id).collect();
        assert_eq!(ids, [3, 4, 5], "oldest entries evicted, order preserved");
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn zero_capacity_disables() {
        let log = SlowLog::new(0, 0);
        assert!(!log.offer(report(1, u64::MAX), true));
        assert!(log.is_empty());
    }

    #[test]
    fn zero_threshold_records_everything() {
        let log = SlowLog::new(4, 0);
        assert!(log.offer(report(1, 0), false));
        assert_eq!(log.len(), 1);
    }
}
