//! Property tests: ActivitySet algebra laws and geometry invariants.

use atsq_types::{ActivitySet, Point, Rect};
use proptest::prelude::*;

fn arb_set() -> impl Strategy<Value = ActivitySet> {
    prop::collection::vec(0u32..40, 0..12).prop_map(ActivitySet::from_raw)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn union_is_commutative_and_idempotent(a in arb_set(), b in arb_set()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&a), a.clone());
    }

    #[test]
    fn intersection_distributes_over_union(a in arb_set(), b in arb_set(), c in arb_set()) {
        let left = a.intersection(&b.union(&c));
        let right = a.intersection(&b).union(&a.intersection(&c));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn subset_iff_union_absorbs(a in arb_set(), b in arb_set()) {
        prop_assert_eq!(a.is_subset_of(&b), a.union(&b) == b);
        prop_assert!(a.intersection(&b).is_subset_of(&a));
        prop_assert!(a.is_subset_of(&a.union(&b)));
    }

    #[test]
    fn intersects_iff_nonempty_intersection(a in arb_set(), b in arb_set()) {
        prop_assert_eq!(a.intersects(&b), !a.intersection(&b).is_empty());
    }

    #[test]
    fn membership_consistent_with_iteration(a in arb_set()) {
        for id in a.iter() {
            prop_assert!(a.contains(id));
        }
        // ids are strictly ascending (sorted, deduped).
        let ids = a.ids();
        prop_assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn rect_union_contains_operands(
        ax in -50.0f64..50.0, ay in -50.0f64..50.0,
        bx in -50.0f64..50.0, by in -50.0f64..50.0,
        cx in -50.0f64..50.0, cy in -50.0f64..50.0,
        dx in -50.0f64..50.0, dy in -50.0f64..50.0,
    ) {
        let r1 = Rect::new(Point::new(ax, ay), Point::new(bx, by));
        let r2 = Rect::new(Point::new(cx, cy), Point::new(dx, dy));
        let u = r1.union(&r2);
        prop_assert!(u.contains_rect(&r1));
        prop_assert!(u.contains_rect(&r2));
        prop_assert!(u.area() + 1e-12 >= r1.area().max(r2.area()));
    }

    #[test]
    fn min_dist_triangle_consistency(
        px in -100.0f64..100.0, py in -100.0f64..100.0,
        ax in -50.0f64..50.0, ay in -50.0f64..50.0,
        bx in -50.0f64..50.0, by in -50.0f64..50.0,
        ix in 0.0f64..1.0, iy in 0.0f64..1.0,
    ) {
        let r = Rect::new(Point::new(ax, ay), Point::new(bx, by));
        let p = Point::new(px, py);
        // Any point inside the rect is at least min_dist away and at
        // most max_dist away.
        let inside = Point::new(
            r.min.x + ix * r.width(),
            r.min.y + iy * r.height(),
        );
        prop_assert!(r.min_dist(&p) <= p.dist(&inside) + 1e-9);
        prop_assert!(r.max_dist(&p) + 1e-9 >= p.dist(&inside));
    }
}
