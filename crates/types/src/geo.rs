//! Planar geometry primitives.
//!
//! All spatial computation in the workspace happens on a local planar
//! projection measured in kilometres. City-scale check-in data (the paper
//! uses Los Angeles and New York, diameters below ~100 km) is accurately
//! represented by an equirectangular projection onto a plane, and Euclidean
//! distance on that plane approximates great-circle distance to well under
//! one percent at these extents. [`GeoPoint::project`] performs that
//! projection for callers importing raw latitude/longitude check-ins.

use std::fmt;

/// A point on the planar (kilometre) coordinate system.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// East-west coordinate in kilometres.
    pub x: f64,
    /// North-south coordinate in kilometres.
    pub y: f64,
}

impl Point {
    /// Creates a point from planar kilometre coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`, in kilometres.
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Useful for comparisons where the monotone square root can be
    /// skipped (e.g. nearest-neighbour orderings).
    #[inline]
    pub fn dist_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Minimum distance from this point to the rectangle `rect`
    /// (zero when the point lies inside it).
    #[inline]
    pub fn min_dist_rect(&self, rect: &Rect) -> f64 {
        rect.min_dist(self)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

/// An axis-aligned rectangle, closed on all sides.
///
/// Used both as R-tree bounding boxes and as grid-cell extents. The empty
/// rectangle (used as the identity for unions) has `min > max` on both
/// axes and is produced by [`Rect::empty`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Default for Rect {
    /// The default rectangle is the empty rectangle, the identity for
    /// [`Rect::union`].
    fn default() -> Self {
        Rect::empty()
    }
}

impl Rect {
    /// Creates a rectangle from two corner points, normalising the order.
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Creates the rectangle spanning `[min_x, max_x] × [min_y, max_y]`.
    pub fn from_bounds(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        Rect::new(Point::new(min_x, min_y), Point::new(max_x, max_y))
    }

    /// The empty rectangle: the identity element for [`Rect::union`].
    pub fn empty() -> Self {
        Rect {
            min: Point::new(f64::INFINITY, f64::INFINITY),
            max: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// The degenerate rectangle covering a single point.
    pub fn from_point(p: Point) -> Self {
        Rect { min: p, max: p }
    }

    /// Whether this rectangle is the empty rectangle.
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Width along the x axis (zero for the empty rectangle).
    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    /// Height along the y axis (zero for the empty rectangle).
    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    /// Area of the rectangle (zero for the empty rectangle).
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half the perimeter; the classic R-tree "margin" measure.
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Centre point of the rectangle.
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }

    /// Whether `p` lies inside the closed rectangle.
    pub fn contains_point(&self, p: &Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Whether `other` lies entirely inside this rectangle.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.is_empty()
            || (other.min.x >= self.min.x
                && other.max.x <= self.max.x
                && other.min.y >= self.min.y
                && other.max.y <= self.max.y)
    }

    /// Whether the two closed rectangles share at least one point.
    pub fn intersects(&self, other: &Rect) -> bool {
        !(self.is_empty()
            || other.is_empty()
            || self.min.x > other.max.x
            || other.min.x > self.max.x
            || self.min.y > other.max.y
            || other.min.y > self.max.y)
    }

    /// Smallest rectangle covering both operands.
    pub fn union(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Rect {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Grows the rectangle in place to cover `p`.
    pub fn extend_point(&mut self, p: &Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// How much the area would grow if `other` were unioned in.
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Minimum distance from `p` to this rectangle (zero if inside).
    pub fn min_dist(&self, p: &Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        (dx * dx + dy * dy).sqrt()
    }

    /// Maximum distance from `p` to any point of this rectangle.
    pub fn max_dist(&self, p: &Point) -> f64 {
        let dx = (p.x - self.min.x).abs().max((p.x - self.max.x).abs());
        let dy = (p.y - self.min.y).abs().max((p.y - self.max.y).abs());
        (dx * dx + dy * dy).sqrt()
    }
}

/// Mean Earth radius in kilometres, used by the haversine helpers.
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// A raw WGS-84 coordinate, for importing real check-in data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPoint {
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a geographic point from degrees.
    pub const fn new(lat: f64, lon: f64) -> Self {
        GeoPoint { lat, lon }
    }

    /// Great-circle (haversine) distance to `other`, in kilometres.
    pub fn haversine_km(&self, other: &GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }

    /// Equirectangular projection onto a kilometre plane anchored at
    /// `origin`. Accurate to a fraction of a percent at city scale.
    pub fn project(&self, origin: &GeoPoint) -> Point {
        let mean_lat = ((self.lat + origin.lat) / 2.0).to_radians();
        let x = (self.lon - origin.lon).to_radians() * mean_lat.cos() * EARTH_RADIUS_KM;
        let y = (self.lat - origin.lat).to_radians() * EARTH_RADIUS_KM;
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist_sq(&b), 25.0);
        assert_eq!(b.dist(&a), 5.0);
    }

    #[test]
    fn point_distance_to_self_is_zero() {
        let a = Point::new(1.5, -2.5);
        assert_eq!(a.dist(&a), 0.0);
    }

    #[test]
    fn rect_normalises_corners() {
        let r = Rect::new(Point::new(5.0, 1.0), Point::new(2.0, 7.0));
        assert_eq!(r.min, Point::new(2.0, 1.0));
        assert_eq!(r.max, Point::new(5.0, 7.0));
    }

    #[test]
    fn empty_rect_properties() {
        let e = Rect::empty();
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        assert_eq!(e.width(), 0.0);
        assert_eq!(e.height(), 0.0);
        let r = Rect::from_bounds(0.0, 0.0, 1.0, 1.0);
        assert_eq!(e.union(&r), r);
        assert_eq!(r.union(&e), r);
        assert!(!e.intersects(&r));
        assert!(r.contains_rect(&e));
    }

    #[test]
    fn rect_contains_and_intersects() {
        let r = Rect::from_bounds(0.0, 0.0, 10.0, 10.0);
        assert!(r.contains_point(&Point::new(0.0, 0.0)));
        assert!(r.contains_point(&Point::new(10.0, 10.0)));
        assert!(!r.contains_point(&Point::new(10.01, 5.0)));
        let inner = Rect::from_bounds(2.0, 2.0, 3.0, 3.0);
        assert!(r.contains_rect(&inner));
        assert!(!inner.contains_rect(&r));
        assert!(r.intersects(&inner));
        let disjoint = Rect::from_bounds(11.0, 11.0, 12.0, 12.0);
        assert!(!r.intersects(&disjoint));
        // Touching edges count as intersecting (closed rectangles).
        let touching = Rect::from_bounds(10.0, 0.0, 12.0, 10.0);
        assert!(r.intersects(&touching));
    }

    #[test]
    fn rect_union_and_enlargement() {
        let a = Rect::from_bounds(0.0, 0.0, 1.0, 1.0);
        let b = Rect::from_bounds(2.0, 2.0, 3.0, 3.0);
        let u = a.union(&b);
        assert_eq!(u, Rect::from_bounds(0.0, 0.0, 3.0, 3.0));
        assert_eq!(a.enlargement(&b), 9.0 - 1.0);
        assert_eq!(a.enlargement(&a), 0.0);
    }

    #[test]
    fn rect_min_dist() {
        let r = Rect::from_bounds(0.0, 0.0, 2.0, 2.0);
        // Inside -> 0.
        assert_eq!(r.min_dist(&Point::new(1.0, 1.0)), 0.0);
        // Directly right of the rectangle.
        assert_eq!(r.min_dist(&Point::new(5.0, 1.0)), 3.0);
        // Diagonal from the corner.
        let d = r.min_dist(&Point::new(5.0, 6.0));
        assert!((d - 5.0).abs() < 1e-12);
        // On the boundary -> 0.
        assert_eq!(r.min_dist(&Point::new(2.0, 2.0)), 0.0);
    }

    #[test]
    fn rect_max_dist_bounds_min_dist() {
        let r = Rect::from_bounds(0.0, 0.0, 2.0, 3.0);
        let p = Point::new(4.0, 4.0);
        assert!(r.max_dist(&p) >= r.min_dist(&p));
        let corner = Point::new(0.0, 0.0);
        let d = r.max_dist(&corner);
        assert!((d - (4.0 + 9.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn extend_point_grows() {
        let mut r = Rect::empty();
        r.extend_point(&Point::new(1.0, 2.0));
        assert!(!r.is_empty());
        assert_eq!(r, Rect::from_point(Point::new(1.0, 2.0)));
        r.extend_point(&Point::new(-1.0, 5.0));
        assert_eq!(r, Rect::from_bounds(-1.0, 2.0, 1.0, 5.0));
    }

    #[test]
    fn haversine_known_distance() {
        // LA city hall to NYC city hall, roughly 3940 km.
        let la = GeoPoint::new(34.0537, -118.2428);
        let ny = GeoPoint::new(40.7128, -74.0060);
        let d = la.haversine_km(&ny);
        assert!((3900.0..4000.0).contains(&d), "got {d}");
        assert!((la.haversine_km(&la)).abs() < 1e-9);
    }

    #[test]
    fn projection_preserves_local_distance() {
        let origin = GeoPoint::new(34.0, -118.3);
        let a = GeoPoint::new(34.05, -118.25);
        let b = GeoPoint::new(34.10, -118.20);
        let planar = a.project(&origin).dist(&b.project(&origin));
        let sphere = a.haversine_km(&b);
        assert!(
            (planar - sphere).abs() / sphere < 0.01,
            "planar {planar} vs sphere {sphere}"
        );
    }
}
