//! Error type shared across the workspace.

use std::fmt;

/// Errors raised by dataset construction and query validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A query was structurally invalid (e.g. no query points, or a
    /// query point with an empty activity set where one is required).
    InvalidQuery(String),
    /// A dataset invariant was violated during construction.
    InvalidDataset(String),
    /// An index was configured with unusable parameters.
    InvalidConfig(String),
    /// A storage backend (paged APL, snapshot file) failed. Carries the
    /// rendered storage error; the structured form lives in
    /// `atsq-storage`, which this crate deliberately does not depend on.
    Storage(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            Error::InvalidDataset(msg) => write!(f, "invalid dataset: {msg}"),
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::Storage(msg) => write!(f, "storage failure: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            Error::InvalidQuery("empty".into()).to_string(),
            "invalid query: empty"
        );
        assert_eq!(
            Error::InvalidDataset("x".into()).to_string(),
            "invalid dataset: x"
        );
        assert_eq!(
            Error::InvalidConfig("d=0".into()).to_string(),
            "invalid configuration: d=0"
        );
        assert_eq!(
            Error::Storage("page 3 corrupt".into()).to_string(),
            "storage failure: page 3 corrupt"
        );
    }
}
