//! Activities and activity sets (Definition 1 of the paper).
//!
//! Activities are interned into dense `u32` identifiers by a
//! [`Vocabulary`]. Following §IV of the paper (the TAS component), the
//! vocabulary can re-rank identifiers by *descending global frequency*
//! so that ids of frequently co-occurring activities are numerically
//! close, which makes the interval sketch compact.

use std::collections::HashMap;
use std::fmt;

/// Dense identifier of an activity in the vocabulary.
///
/// Identifiers are assigned by [`Vocabulary`], and after
/// [`Vocabulary::rank_by_frequency`] they are ordered by descending
/// occurrence count (id 0 = most frequent activity), as required by the
/// trajectory activity sketch of §IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActivityId(pub u32);

impl ActivityId {
    /// The raw index value.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ActivityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// A set of activities attached to a trajectory point or query location.
///
/// Stored as a sorted, deduplicated vector: point activity sets in
/// check-in data are tiny (typically 1–5 entries), so a sorted vec beats
/// a hash set on every operation that matters here and keeps iteration
/// deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct ActivitySet {
    ids: Vec<ActivityId>,
}

impl ActivitySet {
    /// The empty set.
    pub const fn new() -> Self {
        ActivitySet { ids: Vec::new() }
    }

    /// Builds a set from arbitrary ids, sorting and deduplicating.
    pub fn from_ids<I: IntoIterator<Item = ActivityId>>(ids: I) -> Self {
        let mut ids: Vec<ActivityId> = ids.into_iter().collect();
        ids.sort_unstable();
        ids.dedup();
        ActivitySet { ids }
    }

    /// Builds a set from raw `u32` ids (test/datagen convenience).
    pub fn from_raw<I: IntoIterator<Item = u32>>(ids: I) -> Self {
        Self::from_ids(ids.into_iter().map(ActivityId))
    }

    /// Number of distinct activities in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Sorted slice of the member ids.
    #[inline]
    pub fn ids(&self) -> &[ActivityId] {
        &self.ids
    }

    /// Iterates over the member ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = ActivityId> + '_ {
        self.ids.iter().copied()
    }

    /// Membership test (binary search).
    #[inline]
    pub fn contains(&self, id: ActivityId) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Inserts an id, keeping the representation sorted. Returns `true`
    /// if the id was not already present.
    pub fn insert(&mut self, id: ActivityId) -> bool {
        match self.ids.binary_search(&id) {
            Ok(_) => false,
            Err(pos) => {
                self.ids.insert(pos, id);
                true
            }
        }
    }

    /// Whether `self ⊆ other` (linear merge over the sorted vecs).
    pub fn is_subset_of(&self, other: &ActivitySet) -> bool {
        if self.ids.len() > other.ids.len() {
            return false;
        }
        let mut it = other.ids.iter();
        'outer: for id in &self.ids {
            for cand in it.by_ref() {
                match cand.cmp(id) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Whether the two sets share at least one activity.
    pub fn intersects(&self, other: &ActivitySet) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// The intersection `self ∩ other` as a new set.
    pub fn intersection(&self, other: &ActivitySet) -> ActivitySet {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::new();
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.ids[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        ActivitySet { ids: out }
    }

    /// The union `self ∪ other` as a new set.
    pub fn union(&self, other: &ActivitySet) -> ActivitySet {
        let mut out = Vec::with_capacity(self.ids.len() + other.ids.len());
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.ids[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.ids[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.ids[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.ids[i..]);
        out.extend_from_slice(&other.ids[j..]);
        ActivitySet { ids: out }
    }

    /// Absorbs every id of `other` into `self`.
    pub fn extend_from(&mut self, other: &ActivitySet) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            self.ids = other.ids.clone();
            return;
        }
        *self = self.union(other);
    }
}

impl FromIterator<ActivityId> for ActivitySet {
    fn from_iter<T: IntoIterator<Item = ActivityId>>(iter: T) -> Self {
        ActivitySet::from_ids(iter)
    }
}

impl<'a> IntoIterator for &'a ActivitySet {
    type Item = ActivityId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, ActivityId>>;
    fn into_iter(self) -> Self::IntoIter {
        self.ids.iter().copied()
    }
}

impl fmt::Display for ActivitySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, id) in self.ids.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{id}")?;
        }
        write!(f, "}}")
    }
}

/// The pre-defined activity vocabulary `A` (Definition 1): an interner
/// from activity names to dense ids, with per-activity occurrence counts.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    names: Vec<String>,
    by_name: HashMap<String, ActivityId>,
    counts: Vec<u64>,
}

impl Vocabulary {
    /// An empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id (existing or fresh).
    pub fn intern(&mut self, name: &str) -> ActivityId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = ActivityId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        self.counts.push(0);
        id
    }

    /// Interns `name` and records one occurrence.
    pub fn observe(&mut self, name: &str) -> ActivityId {
        let id = self.intern(name);
        self.counts[id.index()] += 1;
        id
    }

    /// Records `n` additional occurrences of an existing id.
    pub fn add_count(&mut self, id: ActivityId, n: u64) {
        self.counts[id.index()] += n;
    }

    /// Rough resident heap size in bytes. Each name is stored twice
    /// (the `names` vec and the `by_name` key) alongside its id and
    /// count slot; allocator overhead is not modelled.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut bytes = size_of::<Vocabulary>();
        for name in &self.names {
            bytes += 2 * (size_of::<String>() + name.len());
            bytes += size_of::<ActivityId>() + size_of::<u64>();
        }
        bytes
    }

    /// Looks up an id by name.
    pub fn get(&self, name: &str) -> Option<ActivityId> {
        self.by_name.get(name).copied()
    }

    /// The name of `id`, if in range.
    pub fn name(&self, id: ActivityId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Occurrence count of `id`.
    pub fn count(&self, id: ActivityId) -> u64 {
        self.counts.get(id.index()).copied().unwrap_or(0)
    }

    /// Number of distinct activities (the cardinality `C` of §IV).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Re-assigns ids so that id 0 is the most frequent activity, id 1
    /// the next, and so on — the frequency ranking §IV prescribes for
    /// the trajectory activity sketch. Returns the remapping table
    /// `old id index → new id`, which callers must apply to every
    /// stored [`ActivitySet`].
    pub fn rank_by_frequency(&mut self) -> Vec<ActivityId> {
        let n = self.names.len();
        let mut order: Vec<usize> = (0..n).collect();
        // Stable tie-break on the old id keeps the remap deterministic.
        order.sort_by(|&a, &b| self.counts[b].cmp(&self.counts[a]).then(a.cmp(&b)));
        let mut remap = vec![ActivityId(0); n];
        let mut names = Vec::with_capacity(n);
        let mut counts = Vec::with_capacity(n);
        for (new_idx, &old_idx) in order.iter().enumerate() {
            remap[old_idx] = ActivityId(new_idx as u32);
            names.push(std::mem::take(&mut self.names[old_idx]));
            counts.push(self.counts[old_idx]);
        }
        self.names = names;
        self.counts = counts;
        self.by_name = self
            .names
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), ActivityId(i as u32)))
            .collect();
        remap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> ActivitySet {
        ActivitySet::from_raw(ids.iter().copied())
    }

    #[test]
    fn from_ids_sorts_and_dedups() {
        let s = set(&[5, 1, 3, 1, 5]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.ids(), &[ActivityId(1), ActivityId(3), ActivityId(5)]);
    }

    #[test]
    fn contains_and_insert() {
        let mut s = set(&[2, 4]);
        assert!(s.contains(ActivityId(2)));
        assert!(!s.contains(ActivityId(3)));
        assert!(s.insert(ActivityId(3)));
        assert!(!s.insert(ActivityId(3)));
        assert_eq!(s.ids(), &[ActivityId(2), ActivityId(3), ActivityId(4)]);
    }

    #[test]
    fn subset_relation() {
        let small = set(&[1, 3]);
        let big = set(&[0, 1, 2, 3, 4]);
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(set(&[]).is_subset_of(&small));
        assert!(small.is_subset_of(&small));
        assert!(!set(&[1, 5]).is_subset_of(&big));
    }

    #[test]
    fn intersection_union() {
        let a = set(&[1, 2, 3]);
        let b = set(&[2, 3, 4]);
        assert_eq!(a.intersection(&b), set(&[2, 3]));
        assert_eq!(a.union(&b), set(&[1, 2, 3, 4]));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&set(&[7])));
        assert_eq!(a.intersection(&set(&[])), set(&[]));
    }

    #[test]
    fn extend_from_merges() {
        let mut a = set(&[1, 5]);
        a.extend_from(&set(&[2, 5, 9]));
        assert_eq!(a, set(&[1, 2, 5, 9]));
        let mut e = ActivitySet::new();
        e.extend_from(&a);
        assert_eq!(e, a);
    }

    #[test]
    fn vocabulary_interns_and_counts() {
        let mut v = Vocabulary::new();
        let food = v.observe("food");
        let food2 = v.observe("food");
        let art = v.observe("art");
        assert_eq!(food, food2);
        assert_ne!(food, art);
        assert_eq!(v.count(food), 2);
        assert_eq!(v.count(art), 1);
        assert_eq!(v.len(), 2);
        assert_eq!(v.name(food), Some("food"));
        assert_eq!(v.get("art"), Some(art));
        assert_eq!(v.get("nope"), None);
    }

    #[test]
    fn rank_by_frequency_orders_ids() {
        let mut v = Vocabulary::new();
        let rare = v.observe("rare");
        for _ in 0..10 {
            v.observe("common");
        }
        let common = v.get("common").unwrap();
        for _ in 0..5 {
            v.observe("mid");
        }
        let mid = v.get("mid").unwrap();
        let remap = v.rank_by_frequency();
        assert_eq!(remap[common.index()], ActivityId(0));
        assert_eq!(remap[mid.index()], ActivityId(1));
        assert_eq!(remap[rare.index()], ActivityId(2));
        assert_eq!(v.name(ActivityId(0)), Some("common"));
        assert_eq!(v.count(ActivityId(0)), 10);
        assert_eq!(v.get("rare"), Some(ActivityId(2)));
    }

    #[test]
    fn rank_by_frequency_is_stable_on_ties() {
        let mut v = Vocabulary::new();
        let a = v.observe("a");
        let b = v.observe("b");
        let remap = v.rank_by_frequency();
        // Equal counts: original order preserved.
        assert_eq!(remap[a.index()], ActivityId(0));
        assert_eq!(remap[b.index()], ActivityId(1));
    }
}
