//! Trajectory simplification (Douglas–Peucker).
//!
//! Check-in streams often contain long runs of near-collinear,
//! activity-free points (GPS breadcrumbs between venues). Simplifying
//! them shrinks indexes without affecting query answers, *provided*
//! points carrying activities are never dropped — activity points are
//! what the match distances are computed from, so this module treats
//! them as mandatory anchors and only thins activity-free points.

use crate::geo::Point;
use crate::trajectory::TrajectoryPoint;

/// Perpendicular distance from `p` to the segment `a`–`b`.
fn segment_dist(p: &Point, a: &Point, b: &Point) -> f64 {
    let (dx, dy) = (b.x - a.x, b.y - a.y);
    let len_sq = dx * dx + dy * dy;
    if len_sq == 0.0 {
        return p.dist(a);
    }
    let t = (((p.x - a.x) * dx + (p.y - a.y) * dy) / len_sq).clamp(0.0, 1.0);
    p.dist(&Point::new(a.x + t * dx, a.y + t * dy))
}

/// Classic Douglas–Peucker over a slice of points, marking keepers.
fn dp_mark(points: &[TrajectoryPoint], lo: usize, hi: usize, eps: f64, keep: &mut [bool]) {
    if hi <= lo + 1 {
        return;
    }
    let (a, b) = (&points[lo].loc, &points[hi].loc);
    let mut worst = 0.0;
    let mut worst_idx = lo;
    for (i, p) in points.iter().enumerate().take(hi).skip(lo + 1) {
        let d = segment_dist(&p.loc, a, b);
        if d > worst {
            worst = d;
            worst_idx = i;
        }
    }
    if worst > eps {
        keep[worst_idx] = true;
        dp_mark(points, lo, worst_idx, eps, keep);
        dp_mark(points, worst_idx, hi, eps, keep);
    }
}

/// Simplifies a trajectory with tolerance `eps` (km), never dropping
/// points that carry activities. Returns the surviving points in
/// order. The first and last points are always kept.
///
/// Query results over the simplified trajectory are identical to the
/// original whenever every query activity set is non-empty (the ATSQ /
/// OATSQ definitions only ever consult activity-bearing points).
pub fn simplify(points: &[TrajectoryPoint], eps: f64) -> Vec<TrajectoryPoint> {
    if points.len() <= 2 {
        return points.to_vec();
    }
    let mut keep = vec![false; points.len()];
    keep[0] = true;
    *keep.last_mut().expect("non-empty") = true;
    for (i, p) in points.iter().enumerate() {
        if !p.activities.is_empty() {
            keep[i] = true;
        }
    }
    // Run DP between consecutive mandatory anchors so geometry between
    // venues is preserved to within eps.
    let anchors: Vec<usize> = keep
        .iter()
        .enumerate()
        .filter(|(_, &k)| k)
        .map(|(i, _)| i)
        .collect();
    for w in anchors.windows(2) {
        dp_mark(points, w[0], w[1], eps, &mut keep);
    }
    points
        .iter()
        .zip(keep.iter())
        .filter(|(_, &k)| k)
        .map(|(p, _)| p.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::ActivitySet;

    fn plain(x: f64, y: f64) -> TrajectoryPoint {
        TrajectoryPoint::new(Point::new(x, y), ActivitySet::new())
    }

    fn venue(x: f64, y: f64, act: u32) -> TrajectoryPoint {
        TrajectoryPoint::new(Point::new(x, y), ActivitySet::from_raw([act]))
    }

    #[test]
    fn collinear_breadcrumbs_collapse() {
        let pts: Vec<TrajectoryPoint> = (0..10).map(|i| plain(f64::from(i), 0.0)).collect();
        let s = simplify(&pts, 0.1);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].loc, Point::new(0.0, 0.0));
        assert_eq!(s[1].loc, Point::new(9.0, 0.0));
    }

    #[test]
    fn corners_above_tolerance_survive() {
        let pts = vec![
            plain(0.0, 0.0),
            plain(5.0, 5.0), // 5 km off the straight line
            plain(10.0, 0.0),
        ];
        assert_eq!(simplify(&pts, 1.0).len(), 3);
        assert_eq!(simplify(&pts, 10.0).len(), 2);
    }

    #[test]
    fn activity_points_are_never_dropped() {
        let pts = vec![
            plain(0.0, 0.0),
            venue(1.0, 0.0001, 7), // nearly collinear but a venue
            plain(2.0, 0.0),
            plain(3.0, 0.0),
            venue(4.0, 0.0, 8),
            plain(5.0, 0.0),
        ];
        let s = simplify(&pts, 0.5);
        let venues: Vec<_> = s.iter().filter(|p| !p.activities.is_empty()).collect();
        assert_eq!(venues.len(), 2);
        // Activity-free collinear points between venues vanish.
        assert!(s.len() < pts.len());
    }

    #[test]
    fn tiny_inputs_pass_through() {
        assert!(simplify(&[], 1.0).is_empty());
        let one = vec![plain(1.0, 1.0)];
        assert_eq!(simplify(&one, 1.0).len(), 1);
        let two = vec![plain(0.0, 0.0), plain(1.0, 1.0)];
        assert_eq!(simplify(&two, 1.0).len(), 2);
    }

    #[test]
    fn segment_dist_basics() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        assert_eq!(segment_dist(&Point::new(5.0, 3.0), &a, &b), 3.0);
        // Beyond the endpoints the distance is to the endpoint.
        assert_eq!(segment_dist(&Point::new(13.0, 4.0), &a, &b), 5.0);
        // Degenerate segment.
        assert_eq!(segment_dist(&Point::new(3.0, 4.0), &a, &a), 5.0);
    }

    #[test]
    fn simplified_error_is_bounded() {
        // Every dropped point must be within eps of the simplified
        // polyline (checked against its own bracketing kept segment).
        let pts: Vec<TrajectoryPoint> = (0..50)
            .map(|i| {
                let x = f64::from(i) * 0.5;
                plain(x, (x * 0.7).sin() * 0.3)
            })
            .collect();
        let eps = 0.2;
        let s = simplify(&pts, eps);
        for p in &pts {
            let min_d = s
                .windows(2)
                .map(|w| segment_dist(&p.loc, &w[0].loc, &w[1].loc))
                .fold(f64::INFINITY, f64::min);
            assert!(min_d <= eps + 1e-9, "point {} off by {min_d}", p.loc);
        }
    }
}
