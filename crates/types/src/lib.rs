//! Core domain types for the activity-trajectory search library.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: planar [`geo::Point`]s and [`geo::Rect`]s, interned
//! [`activity::ActivityId`] identifiers and [`activity::ActivitySet`]s, the
//! [`trajectory::Trajectory`] model of the paper (Definition 2), and the
//! [`dataset::Dataset`] container with Table-IV-style statistics.
//!
//! Everything downstream — the GAT index, the R-tree / IR-tree baselines
//! and the matching kernels — is written against these types.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod activity;
pub mod dataset;
pub mod error;
pub mod geo;
pub mod query;
pub mod simplify;
pub mod trajectory;

pub use activity::{ActivityId, ActivitySet, Vocabulary};
pub use dataset::{Dataset, DatasetBuilder, DatasetStats, Fnv64};
pub use error::{Error, Result};
pub use geo::{Point, Rect};
pub use query::{rank_top_k, Query, QueryPoint, QueryResult};
pub use trajectory::{Trajectory, TrajectoryId, TrajectoryPoint};
