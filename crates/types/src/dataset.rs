//! The trajectory database `D` and its summary statistics (Table IV).

use crate::activity::{ActivityId, ActivitySet, Vocabulary};
use crate::error::{Error, Result};
use crate::geo::Rect;
use crate::trajectory::{Trajectory, TrajectoryId, TrajectoryPoint};
use std::fmt;

/// An immutable activity-trajectory database, the `D` of the paper.
///
/// Construction goes through [`DatasetBuilder`], which interns activity
/// names, assigns dense trajectory ids, and (by default) re-ranks
/// activity ids by descending frequency as §IV requires for the TAS
/// sketch.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    trajectories: Vec<Trajectory>,
    vocabulary: Vocabulary,
    bounds: Rect,
}

impl Dataset {
    /// All trajectories, indexable by [`TrajectoryId::index`].
    #[inline]
    pub fn trajectories(&self) -> &[Trajectory] {
        &self.trajectories
    }

    /// The trajectory with the given id.
    #[inline]
    pub fn trajectory(&self, id: TrajectoryId) -> &Trajectory {
        &self.trajectories[id.index()]
    }

    /// Number of trajectories (`|D|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.trajectories.len()
    }

    /// Whether the dataset holds no trajectories.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.trajectories.is_empty()
    }

    /// The activity vocabulary `A`.
    #[inline]
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocabulary
    }

    /// Bounding rectangle of every point in the dataset.
    #[inline]
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Summary statistics in the shape of the paper's Table IV.
    pub fn stats(&self) -> DatasetStats {
        let mut venues = 0usize;
        let mut activities = 0usize;
        for tr in &self.trajectories {
            venues += tr.len();
            for p in &tr.points {
                activities += p.activities.len();
            }
        }
        DatasetStats {
            trajectories: self.trajectories.len(),
            venues,
            activity_occurrences: activities,
            distinct_activities: self.vocabulary.len(),
        }
    }

    /// Appends one trajectory to an existing dataset, returning its id.
    ///
    /// All activity ids must already exist in the vocabulary (intern
    /// new names through [`Dataset::vocabulary_mut`] first). Activity
    /// ids are *not* re-ranked by frequency — the ranking reflects the
    /// corpus at build time, which keeps existing TAS sketches valid;
    /// rebuild periodically if the activity distribution drifts.
    pub fn append_trajectory(
        &mut self,
        points: Vec<crate::trajectory::TrajectoryPoint>,
    ) -> Result<TrajectoryId> {
        for p in &points {
            for a in p.activities.iter() {
                if a.index() >= self.vocabulary.len() {
                    return Err(Error::InvalidDataset(format!(
                        "appended trajectory references unknown activity {a}"
                    )));
                }
                self.vocabulary.add_count(a, 1);
            }
            self.bounds.extend_point(&p.loc);
        }
        let id = TrajectoryId(self.trajectories.len() as u32);
        self.trajectories.push(Trajectory::new(id, points));
        Ok(id)
    }

    /// Mutable vocabulary access, for interning new activity names
    /// before [`Dataset::append_trajectory`].
    pub fn vocabulary_mut(&mut self) -> &mut Vocabulary {
        &mut self.vocabulary
    }

    /// Restricts the dataset to its first `n` trajectories — the
    /// sampling protocol behind the paper's Fig. 7 scalability sweep.
    /// Vocabulary and bounds are retained; counts are not re-derived
    /// (only structure matters for the sweep).
    pub fn sample_prefix(&self, n: usize) -> Dataset {
        let n = n.min(self.trajectories.len());
        Dataset {
            trajectories: self.trajectories[..n].to_vec(),
            vocabulary: self.vocabulary.clone(),
            bounds: self.bounds,
        }
    }

    /// Rough resident heap size of the dataset in bytes: trajectory
    /// and point storage, activity-set ids, and the interned
    /// vocabulary. This is the dataset half of the tenancy layer's
    /// memory-budget accounting — an estimate (no allocator overhead),
    /// not a measurement.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut bytes = size_of::<Dataset>();
        for tr in &self.trajectories {
            bytes += size_of::<Trajectory>() + tr.points.len() * size_of::<TrajectoryPoint>();
            for p in &tr.points {
                bytes += p.activities.len() * size_of::<ActivityId>();
            }
        }
        bytes + self.vocabulary.approx_bytes()
    }

    /// A deterministic 64-bit fingerprint of the dataset's full
    /// content: vocabulary (names, counts, id order), every trajectory
    /// point (exact coordinate bits) and every activity set.
    ///
    /// The hash is FNV-1a over a canonical byte stream, so it is stable
    /// across processes, platforms and re-loads of the same snapshot —
    /// which is what lets persisted index snapshots be keyed by the
    /// dataset they were built from and invalidated when the data
    /// changes. It is a corruption/staleness check, not a cryptographic
    /// commitment.
    pub fn content_hash(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.vocabulary.len() as u64);
        for i in 0..self.vocabulary.len() as u32 {
            let id = ActivityId(i);
            let name = self.vocabulary.name(id).expect("dense vocabulary ids");
            h.write_u64(name.len() as u64);
            h.write(name.as_bytes());
            h.write_u64(self.vocabulary.count(id));
        }
        h.write_u64(self.trajectories.len() as u64);
        for tr in &self.trajectories {
            h.write_u64(tr.points.len() as u64);
            for p in &tr.points {
                h.write_u64(p.loc.x.to_bits());
                h.write_u64(p.loc.y.to_bits());
                h.write_u64(p.activities.len() as u64);
                for a in p.activities.iter() {
                    h.write_u64(u64::from(a.0));
                }
            }
        }
        h.finish()
    }

    /// Extracts the sub-dataset holding exactly `members`, re-assigning
    /// dense local ids `0..members.len()` in the order given. The
    /// vocabulary (ids, names, frequency ranking) is retained, so
    /// activity ids stay interchangeable across subsets; bounds are
    /// recomputed from the member points, so an index over a spatially
    /// coherent subset covers only that subset's region (a sharded
    /// engine's per-shard grids get finer effective resolution this
    /// way). This is the partitioning primitive behind the sharded
    /// engine; callers that care about deterministic ranking
    /// tie-breaks should pass `members` in ascending id order.
    pub fn subset(&self, members: &[TrajectoryId]) -> Dataset {
        let mut bounds = Rect::empty();
        let trajectories = members
            .iter()
            .enumerate()
            .map(|(local, &id)| {
                let points = self.trajectories[id.index()].points.clone();
                for p in &points {
                    bounds.extend_point(&p.loc);
                }
                Trajectory::new(TrajectoryId(local as u32), points)
            })
            .collect();
        Dataset {
            trajectories,
            vocabulary: self.vocabulary.clone(),
            bounds,
        }
    }
}

/// FNV-1a (64-bit): tiny, dependency-free, deterministic. Quality is
/// ample for content-addressed cache keys — [`Dataset::content_hash`]
/// and the index-snapshot subsystem both hash through this one
/// implementation so the constants can never diverge.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Absorbs one `u64` as little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Table-IV-style dataset statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetStats {
    /// `#trajectory` — number of trajectories.
    pub trajectories: usize,
    /// `#venue` — total number of trajectory points.
    pub venues: usize,
    /// `#activity` — total activity occurrences over all points.
    pub activity_occurrences: usize,
    /// `#distinct activity` — vocabulary cardinality.
    pub distinct_activities: usize,
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "#trajectory        {:>10}", self.trajectories)?;
        writeln!(f, "#venue             {:>10}", self.venues)?;
        writeln!(f, "#activity          {:>10}", self.activity_occurrences)?;
        write!(f, "#distinct activity {:>10}", self.distinct_activities)
    }
}

/// Incremental builder for [`Dataset`].
#[derive(Debug, Default)]
pub struct DatasetBuilder {
    trajectories: Vec<Trajectory>,
    vocabulary: Vocabulary,
    bounds: Rect,
    rank_by_frequency: bool,
}

impl DatasetBuilder {
    /// A fresh builder that will frequency-rank activity ids on finish.
    pub fn new() -> Self {
        DatasetBuilder {
            trajectories: Vec::new(),
            vocabulary: Vocabulary::new(),
            bounds: Rect::empty(),
            rank_by_frequency: true,
        }
    }

    /// Disables the final frequency re-ranking (ids keep insertion
    /// order). Useful in tests that hand-pick ids.
    pub fn without_frequency_ranking(mut self) -> Self {
        self.rank_by_frequency = false;
        self
    }

    /// Interns an activity name, counting one occurrence.
    pub fn observe_activity(&mut self, name: &str) -> ActivityId {
        self.vocabulary.observe(name)
    }

    /// Access to the vocabulary mid-build (datagen convenience).
    pub fn vocabulary_mut(&mut self) -> &mut Vocabulary {
        &mut self.vocabulary
    }

    /// Appends a trajectory built from `(point, activities)` pairs whose
    /// activity ids were previously obtained from this builder.
    pub fn push_trajectory(
        &mut self,
        points: Vec<crate::trajectory::TrajectoryPoint>,
    ) -> TrajectoryId {
        let id = TrajectoryId(self.trajectories.len() as u32);
        for p in &points {
            self.bounds.extend_point(&p.loc);
        }
        self.trajectories.push(Trajectory::new(id, points));
        id
    }

    /// Number of trajectories added so far.
    pub fn len(&self) -> usize {
        self.trajectories.len()
    }

    /// Whether no trajectory has been added yet.
    pub fn is_empty(&self) -> bool {
        self.trajectories.is_empty()
    }

    /// Finalises the dataset: validates invariants and (unless disabled)
    /// re-ranks activity ids by descending frequency, rewriting every
    /// stored activity set.
    pub fn finish(mut self) -> Result<Dataset> {
        for tr in &self.trajectories {
            for p in &tr.points {
                for a in p.activities.iter() {
                    if a.index() >= self.vocabulary.len() {
                        return Err(Error::InvalidDataset(format!(
                            "trajectory {} references unknown activity {}",
                            tr.id, a
                        )));
                    }
                }
            }
        }
        if self.rank_by_frequency {
            let remap = self.vocabulary.rank_by_frequency();
            for tr in &mut self.trajectories {
                for p in &mut tr.points {
                    p.activities =
                        ActivitySet::from_ids(p.activities.iter().map(|a| remap[a.index()]));
                }
            }
        }
        Ok(Dataset {
            trajectories: self.trajectories,
            vocabulary: self.vocabulary,
            bounds: self.bounds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::Point;
    use crate::trajectory::TrajectoryPoint;

    fn tp(x: f64, y: f64, acts: &[ActivityId]) -> TrajectoryPoint {
        TrajectoryPoint::new(
            Point::new(x, y),
            ActivitySet::from_ids(acts.iter().copied()),
        )
    }

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut b = DatasetBuilder::new().without_frequency_ranking();
        let a = b.observe_activity("a");
        let id0 = b.push_trajectory(vec![tp(0.0, 0.0, &[a])]);
        let id1 = b.push_trajectory(vec![tp(1.0, 1.0, &[a])]);
        assert_eq!(id0, TrajectoryId(0));
        assert_eq!(id1, TrajectoryId(1));
        let d = b.finish().unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.trajectory(id1).id, id1);
    }

    #[test]
    fn builder_tracks_bounds() {
        let mut b = DatasetBuilder::new().without_frequency_ranking();
        let a = b.observe_activity("a");
        b.push_trajectory(vec![tp(-2.0, 3.0, &[a]), tp(5.0, -1.0, &[a])]);
        let d = b.finish().unwrap();
        assert_eq!(d.bounds(), Rect::from_bounds(-2.0, -1.0, 5.0, 3.0));
    }

    #[test]
    fn finish_rejects_unknown_activity() {
        let mut b = DatasetBuilder::new();
        b.push_trajectory(vec![tp(0.0, 0.0, &[ActivityId(5)])]);
        assert!(matches!(b.finish(), Err(Error::InvalidDataset(_))));
    }

    #[test]
    fn frequency_ranking_rewrites_sets() {
        let mut b = DatasetBuilder::new();
        let rare = b.observe_activity("rare");
        let common = b.observe_activity("common");
        b.vocabulary_mut().add_count(common, 100);
        b.push_trajectory(vec![tp(0.0, 0.0, &[rare, common])]);
        let d = b.finish().unwrap();
        // "common" should now be id 0, "rare" id 1.
        assert_eq!(d.vocabulary().get("common"), Some(ActivityId(0)));
        assert_eq!(d.vocabulary().get("rare"), Some(ActivityId(1)));
        assert_eq!(
            d.trajectory(TrajectoryId(0)).points[0].activities,
            ActivitySet::from_raw([0, 1])
        );
    }

    #[test]
    fn stats_match_table_iv_shape() {
        let mut b = DatasetBuilder::new().without_frequency_ranking();
        let a = b.observe_activity("a");
        let c = b.observe_activity("c");
        b.push_trajectory(vec![tp(0.0, 0.0, &[a, c]), tp(1.0, 0.0, &[c])]);
        b.push_trajectory(vec![tp(2.0, 2.0, &[a])]);
        let d = b.finish().unwrap();
        let s = d.stats();
        assert_eq!(s.trajectories, 2);
        assert_eq!(s.venues, 3);
        assert_eq!(s.activity_occurrences, 4);
        assert_eq!(s.distinct_activities, 2);
        let rendered = s.to_string();
        assert!(rendered.contains("#venue"));
    }

    #[test]
    fn subset_relabels_and_keeps_vocab_and_bounds() {
        let mut b = DatasetBuilder::new().without_frequency_ranking();
        let a = b.observe_activity("a");
        for i in 0..5 {
            b.push_trajectory(vec![tp(i as f64, 0.0, &[a])]);
        }
        let d = b.finish().unwrap();
        let sub = d.subset(&[TrajectoryId(1), TrajectoryId(4)]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.trajectory(TrajectoryId(0)).id, TrajectoryId(0));
        assert_eq!(sub.trajectory(TrajectoryId(0)).points[0].loc.x, 1.0);
        assert_eq!(sub.trajectory(TrajectoryId(1)).points[0].loc.x, 4.0);
        assert_eq!(sub.vocabulary().len(), d.vocabulary().len());
        // Bounds cover the members only.
        assert_eq!(sub.bounds(), Rect::from_bounds(1.0, 0.0, 4.0, 0.0));
        assert!(d.subset(&[]).is_empty());
    }

    #[test]
    fn content_hash_is_stable_and_content_sensitive() {
        let build = |names: &[&str], x0: f64| {
            let mut b = DatasetBuilder::new().without_frequency_ranking();
            let ids: Vec<ActivityId> = names.iter().map(|n| b.observe_activity(n)).collect();
            b.push_trajectory(vec![tp(x0, 0.0, &ids), tp(1.0, 2.0, &ids[..1])]);
            b.push_trajectory(vec![tp(5.0, 5.0, &ids[1..])]);
            b.finish().unwrap()
        };
        let d = build(&["a", "b"], 0.0);
        // Identical construction hashes identically.
        assert_eq!(d.content_hash(), build(&["a", "b"], 0.0).content_hash());
        // Any content change — a coordinate, an activity name — changes it.
        assert_ne!(d.content_hash(), build(&["a", "b"], 0.25).content_hash());
        assert_ne!(d.content_hash(), build(&["a", "c"], 0.0).content_hash());
        // Appending a trajectory changes it.
        let mut grown = d.clone();
        let a = grown.vocabulary().get("a").unwrap();
        grown.append_trajectory(vec![tp(9.0, 9.0, &[a])]).unwrap();
        assert_ne!(d.content_hash(), grown.content_hash());
        // The hash survives a clone (pure function of content).
        assert_eq!(d.content_hash(), d.clone().content_hash());
        // Empty dataset has a well-defined hash distinct from non-empty.
        let empty = DatasetBuilder::new().finish().unwrap();
        assert_eq!(empty.content_hash(), empty.content_hash());
        assert_ne!(empty.content_hash(), d.content_hash());
    }

    #[test]
    fn sample_prefix_truncates() {
        let mut b = DatasetBuilder::new().without_frequency_ranking();
        let a = b.observe_activity("a");
        for i in 0..5 {
            b.push_trajectory(vec![tp(i as f64, 0.0, &[a])]);
        }
        let d = b.finish().unwrap();
        assert_eq!(d.sample_prefix(3).len(), 3);
        assert_eq!(d.sample_prefix(100).len(), 5);
        assert_eq!(d.sample_prefix(0).len(), 0);
    }
}
