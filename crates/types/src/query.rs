//! Query model: a sequence of locations with desired activities (§II).

use crate::activity::ActivitySet;
use crate::error::{Error, Result};
use crate::geo::Point;
use crate::trajectory::TrajectoryId;

/// One query location `q` with its desired activity set `q.Φ`.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPoint {
    /// The intended location.
    pub loc: Point,
    /// The activities the user wants to perform there (`q.Φ`).
    pub activities: ActivitySet,
}

impl QueryPoint {
    /// Creates a query point.
    pub fn new(loc: Point, activities: ActivitySet) -> Self {
        QueryPoint { loc, activities }
    }
}

/// A similarity query `Q = (q1, …, qm)`.
///
/// For **ATSQ** the order of the points is irrelevant; for **OATSQ**
/// the point order is the intended visiting order.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The query locations in intended order.
    pub points: Vec<QueryPoint>,
}

impl Query {
    /// Creates a query, validating that it is non-empty and that every
    /// query point requests at least one activity (a query point with
    /// an empty `q.Φ` has no point match by Definition 3).
    pub fn new(points: Vec<QueryPoint>) -> Result<Self> {
        if points.is_empty() {
            return Err(Error::InvalidQuery("query has no locations".into()));
        }
        for (i, q) in points.iter().enumerate() {
            if q.activities.is_empty() {
                return Err(Error::InvalidQuery(format!(
                    "query point {i} has an empty activity set"
                )));
            }
        }
        Ok(Query { points })
    }

    /// Number of query locations (`|Q|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the query has no points (never true for validated queries).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Union of all requested activities (`Q.Φ`).
    pub fn all_activities(&self) -> ActivitySet {
        let mut out = ActivitySet::new();
        for q in &self.points {
            out.extend_from(&q.activities);
        }
        out
    }

    /// The query diameter `δ(Q)`: the maximum pairwise distance between
    /// query locations (§VII, "Effect of δ(Q)"). Zero for single-point
    /// queries.
    pub fn diameter(&self) -> f64 {
        let mut best: f64 = 0.0;
        for i in 0..self.points.len() {
            for j in i + 1..self.points.len() {
                best = best.max(self.points[i].loc.dist(&self.points[j].loc));
            }
        }
        best
    }
}

/// One ranked answer of a similarity query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// The matched trajectory.
    pub trajectory: TrajectoryId,
    /// Its minimum (order-sensitive) match distance to the query.
    pub distance: f64,
}

impl QueryResult {
    /// Creates a result entry.
    pub fn new(trajectory: TrajectoryId, distance: f64) -> Self {
        QueryResult {
            trajectory,
            distance,
        }
    }
}

/// Sorts results ascending by distance with the trajectory id as a
/// deterministic tie-break, then truncates to `k` — the final step of
/// every engine, kept here so all engines rank identically.
pub fn rank_top_k(mut results: Vec<QueryResult>, k: usize) -> Vec<QueryResult> {
    results.sort_by(|a, b| {
        a.distance
            .partial_cmp(&b.distance)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.trajectory.cmp(&b.trajectory))
    });
    results.truncate(k);
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qp(x: f64, y: f64, acts: &[u32]) -> QueryPoint {
        QueryPoint::new(
            Point::new(x, y),
            ActivitySet::from_raw(acts.iter().copied()),
        )
    }

    #[test]
    fn new_rejects_empty_query() {
        assert!(Query::new(vec![]).is_err());
    }

    #[test]
    fn new_rejects_empty_activity_set() {
        assert!(Query::new(vec![qp(0.0, 0.0, &[])]).is_err());
        assert!(Query::new(vec![qp(0.0, 0.0, &[1]), qp(1.0, 1.0, &[])]).is_err());
    }

    #[test]
    fn all_activities_unions() {
        let q = Query::new(vec![qp(0.0, 0.0, &[1, 2]), qp(1.0, 1.0, &[2, 3])]).unwrap();
        assert_eq!(q.all_activities(), ActivitySet::from_raw([1, 2, 3]));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn diameter_is_max_pairwise() {
        let q = Query::new(vec![
            qp(0.0, 0.0, &[1]),
            qp(3.0, 4.0, &[1]),
            qp(1.0, 1.0, &[1]),
        ])
        .unwrap();
        assert!((q.diameter() - 5.0).abs() < 1e-12);
        let single = Query::new(vec![qp(0.0, 0.0, &[1])]).unwrap();
        assert_eq!(single.diameter(), 0.0);
    }

    #[test]
    fn rank_top_k_sorts_and_truncates() {
        let r = vec![
            QueryResult::new(TrajectoryId(2), 5.0),
            QueryResult::new(TrajectoryId(0), 1.0),
            QueryResult::new(TrajectoryId(1), 5.0),
            QueryResult::new(TrajectoryId(3), 0.5),
        ];
        let top = rank_top_k(r, 3);
        assert_eq!(
            top.iter().map(|x| x.trajectory.0).collect::<Vec<_>>(),
            vec![3, 0, 1]
        );
        assert_eq!(top.len(), 3);
    }
}
