//! Activity trajectories (Definition 2 of the paper).

use crate::activity::{ActivityId, ActivitySet};
use crate::geo::{Point, Rect};
use std::fmt;

/// Dense identifier of a trajectory within a [`crate::Dataset`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TrajectoryId(pub u32);

impl TrajectoryId {
    /// The raw index value.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TrajectoryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tr{}", self.0)
    }
}

/// One point of an activity trajectory: a geo-location plus the
/// (possibly empty) set of activities performed there.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrajectoryPoint {
    /// Planar location in kilometres.
    pub loc: Point,
    /// Activities performed at this location (`p.Φ` in the paper).
    pub activities: ActivitySet,
}

impl TrajectoryPoint {
    /// Creates a point with the given location and activities.
    pub fn new(loc: Point, activities: ActivitySet) -> Self {
        TrajectoryPoint { loc, activities }
    }
}

/// An activity trajectory `Tr = (p1, …, pn)`: the chronological check-in
/// history of one user (Definition 2).
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    /// Identifier within the owning dataset.
    pub id: TrajectoryId,
    /// The points, in chronological order.
    pub points: Vec<TrajectoryPoint>,
}

impl Trajectory {
    /// Creates a trajectory from its points.
    pub fn new(id: TrajectoryId, points: Vec<TrajectoryPoint>) -> Self {
        Trajectory { id, points }
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the trajectory has no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The union of all activities over all points of the trajectory —
    /// the raw material for the TAS sketch and the IL baseline.
    pub fn all_activities(&self) -> ActivitySet {
        let mut out = ActivitySet::new();
        for p in &self.points {
            out.extend_from(&p.activities);
        }
        out
    }

    /// Whether any point of the trajectory carries activity `id`.
    pub fn contains_activity(&self, id: ActivityId) -> bool {
        self.points.iter().any(|p| p.activities.contains(id))
    }

    /// Minimum bounding rectangle of all points (empty rect if no points).
    pub fn mbr(&self) -> Rect {
        let mut r = Rect::empty();
        for p in &self.points {
            r.extend_point(&p.loc);
        }
        r
    }

    /// Indices of the points whose activity set intersects `wanted`.
    pub fn points_with_any_of(&self, wanted: &ActivitySet) -> Vec<usize> {
        self.points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.activities.intersects(wanted))
            .map(|(i, _)| i)
            .collect()
    }

    /// The sub-trajectory `Tr[i, j]` (inclusive, 0-based) as a slice of
    /// points. Panics when the range is out of bounds, mirroring slice
    /// indexing semantics.
    pub fn sub(&self, i: usize, j: usize) -> &[TrajectoryPoint] {
        &self.points[i..=j]
    }

    /// Sum of consecutive point-to-point distances (the travelled length).
    pub fn path_length(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| w[0].loc.dist(&w[1].loc))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj() -> Trajectory {
        Trajectory::new(
            TrajectoryId(7),
            vec![
                TrajectoryPoint::new(Point::new(0.0, 0.0), ActivitySet::from_raw([0, 1])),
                TrajectoryPoint::new(Point::new(3.0, 4.0), ActivitySet::from_raw([2])),
                TrajectoryPoint::new(Point::new(3.0, 0.0), ActivitySet::from_raw([1, 3])),
            ],
        )
    }

    #[test]
    fn all_activities_unions_points() {
        let t = traj();
        assert_eq!(t.all_activities(), ActivitySet::from_raw([0, 1, 2, 3]));
    }

    #[test]
    fn contains_activity_checks_points() {
        let t = traj();
        assert!(t.contains_activity(ActivityId(3)));
        assert!(!t.contains_activity(ActivityId(9)));
    }

    #[test]
    fn mbr_covers_all_points() {
        let t = traj();
        let mbr = t.mbr();
        assert_eq!(mbr, Rect::from_bounds(0.0, 0.0, 3.0, 4.0));
        for p in &t.points {
            assert!(mbr.contains_point(&p.loc));
        }
        assert!(Trajectory::new(TrajectoryId(0), vec![]).mbr().is_empty());
    }

    #[test]
    fn points_with_any_of_filters() {
        let t = traj();
        let q = ActivitySet::from_raw([1]);
        assert_eq!(t.points_with_any_of(&q), vec![0, 2]);
        assert!(t
            .points_with_any_of(&ActivitySet::from_raw([42]))
            .is_empty());
    }

    #[test]
    fn sub_trajectory_is_inclusive() {
        let t = traj();
        let s = t.sub(1, 2);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].loc, Point::new(3.0, 4.0));
    }

    #[test]
    fn path_length_sums_segments() {
        let t = traj();
        assert!((t.path_length() - (5.0 + 4.0)).abs() < 1e-12);
        assert_eq!(Trajectory::new(TrajectoryId(0), vec![]).path_length(), 0.0);
    }
}
