//! Property tests: structural invariants and agreement with linear scan.

use atsq_rtree::RTree;
use atsq_types::{Point, Rect};
use proptest::prelude::*;

fn arb_points(max: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 0..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn insert_preserves_invariants(pts in arb_points(300)) {
        let mut t: RTree<usize> = RTree::new();
        for (i, &(x, y)) in pts.iter().enumerate() {
            t.insert(Rect::from_point(Point::new(x, y)), i);
        }
        prop_assert_eq!(t.len(), pts.len());
        prop_assert!(t.check_invariants().is_ok(), "{:?}", t.check_invariants());
    }

    #[test]
    fn bulk_load_preserves_invariants(pts in arb_points(300)) {
        let items: Vec<(Rect, usize)> = pts
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (Rect::from_point(Point::new(x, y)), i))
            .collect();
        let t: RTree<usize> = RTree::bulk_load(items);
        prop_assert_eq!(t.len(), pts.len());
        prop_assert!(t.check_invariants().is_ok(), "{:?}", t.check_invariants());
    }

    #[test]
    fn rect_search_matches_linear_scan(
        pts in arb_points(200),
        qx in -100.0f64..100.0,
        qy in -100.0f64..100.0,
        w in 0.0f64..80.0,
        h in 0.0f64..80.0,
    ) {
        let mut t: RTree<usize> = RTree::new();
        for (i, &(x, y)) in pts.iter().enumerate() {
            t.insert(Rect::from_point(Point::new(x, y)), i);
        }
        let q = Rect::from_bounds(qx, qy, qx + w, qy + h);
        let mut got: Vec<usize> = t.search_rect(&q).into_iter().copied().collect();
        got.sort_unstable();
        let mut want: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, &(x, y))| q.contains_point(&Point::new(x, y)))
            .map(|(i, _)| i)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn nn_iteration_matches_sorted_scan(
        pts in arb_points(150),
        qx in -100.0f64..100.0,
        qy in -100.0f64..100.0,
    ) {
        let mut t: RTree<usize> = RTree::new();
        for (i, &(x, y)) in pts.iter().enumerate() {
            t.insert(Rect::from_point(Point::new(x, y)), i);
        }
        let q = Point::new(qx, qy);
        let got: Vec<f64> = t.nearest_iter(q).map(|n| n.dist).collect();
        let mut want: Vec<f64> = pts.iter().map(|&(x, y)| q.dist(&Point::new(x, y))).collect();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want.iter()) {
            prop_assert!((g - w).abs() < 1e-9, "got {g} want {w}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Interleaved inserts and removes keep the tree consistent with a
    /// shadow model and preserve all structural invariants.
    #[test]
    fn insert_remove_matches_model(
        pts in arb_points(120),
        removals in prop::collection::vec(any::<prop::sample::Index>(), 0..60),
    ) {
        let mut tree: RTree<usize> = RTree::new();
        let mut model: Vec<(f64, f64, usize)> = Vec::new();
        for (i, &(x, y)) in pts.iter().enumerate() {
            tree.insert(Rect::from_point(Point::new(x, y)), i);
            model.push((x, y, i));
        }
        for idx in removals {
            if model.is_empty() {
                break;
            }
            let (x, y, id) = model.remove(idx.index(model.len()));
            let removed = tree.remove(
                &Rect::from_point(Point::new(x, y)),
                |&v| v == id,
            );
            prop_assert_eq!(removed, Some(id));
            prop_assert!(tree.check_invariants().is_ok(), "{:?}", tree.check_invariants());
        }
        prop_assert_eq!(tree.len(), model.len());
        // Remaining contents agree with the model.
        let q = Rect::from_bounds(-200.0, -200.0, 200.0, 200.0);
        let mut got: Vec<usize> = tree.search_rect(&q).into_iter().copied().collect();
        got.sort_unstable();
        let mut want: Vec<usize> = model.iter().map(|&(_, _, i)| i).collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Removing a missing item is a no-op that returns None.
    #[test]
    fn remove_missing_is_noop(pts in arb_points(50)) {
        let mut tree: RTree<usize> = RTree::new();
        for (i, &(x, y)) in pts.iter().enumerate() {
            tree.insert(Rect::from_point(Point::new(x, y)), i);
        }
        let before = tree.len();
        let gone = tree.remove(&Rect::from_point(Point::new(999.0, 999.0)), |_| true);
        prop_assert_eq!(gone, None);
        prop_assert_eq!(tree.len(), before);
        prop_assert!(tree.check_invariants().is_ok());
    }

    /// nearest_k returns the k smallest distances.
    #[test]
    fn nearest_k_matches_sort(pts in arb_points(80), k in 0usize..20) {
        let mut tree: RTree<usize> = RTree::new();
        for (i, &(x, y)) in pts.iter().enumerate() {
            tree.insert(Rect::from_point(Point::new(x, y)), i);
        }
        let q = Point::new(0.0, 0.0);
        let got = tree.nearest_k(q, k);
        let mut want: Vec<f64> = pts.iter().map(|&(x, y)| q.dist(&Point::new(x, y))).collect();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        want.truncate(k);
        prop_assert_eq!(got.len(), want.len());
        for ((d, _), w) in got.iter().zip(want.iter()) {
            prop_assert!((d - w).abs() < 1e-9);
        }
    }
}
