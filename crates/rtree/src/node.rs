//! R-tree node representation and Guttman insertion.

use crate::split::split_entries;
use crate::summary::NodeSummary;
use crate::{MAX_ENTRIES, MIN_ENTRIES};
use atsq_types::Rect;

/// One leaf-level entry: a payload and its bounding rectangle.
#[derive(Debug, Clone)]
pub struct LeafEntry<T> {
    /// Bounding rectangle of the payload (a point rect for venues).
    pub rect: Rect,
    /// The payload.
    pub data: T,
}

/// An R-tree node: either a leaf holding payload entries or an internal
/// node holding child nodes. Every node caches its MBR and its payload
/// summary.
#[derive(Debug, Clone)]
pub enum Node<T, S: NodeSummary<T>> {
    /// Leaf node with payload entries.
    Leaf {
        /// Cached bounding rectangle of all entries.
        mbr: Rect,
        /// Cached summary over all entries.
        summary: S,
        /// The payload entries (≤ [`MAX_ENTRIES`]).
        entries: Vec<LeafEntry<T>>,
    },
    /// Internal node with children.
    Internal {
        /// Cached bounding rectangle of all children.
        mbr: Rect,
        /// Cached summary over all children.
        summary: S,
        /// The child nodes (≤ [`MAX_ENTRIES`]).
        children: Vec<Node<T, S>>,
    },
}

impl<T, S: NodeSummary<T>> Node<T, S> {
    /// A fresh empty leaf.
    pub fn new_leaf() -> Self {
        Node::Leaf {
            mbr: Rect::empty(),
            summary: S::default(),
            entries: Vec::with_capacity(MAX_ENTRIES + 1),
        }
    }

    /// A fresh empty internal node.
    pub fn new_internal() -> Self {
        Node::Internal {
            mbr: Rect::empty(),
            summary: S::default(),
            children: Vec::with_capacity(MAX_ENTRIES + 1),
        }
    }

    /// This node's cached bounding rectangle.
    #[inline]
    pub fn mbr(&self) -> Rect {
        match self {
            Node::Leaf { mbr, .. } | Node::Internal { mbr, .. } => *mbr,
        }
    }

    /// This node's cached summary.
    #[inline]
    pub fn summary(&self) -> &S {
        match self {
            Node::Leaf { summary, .. } | Node::Internal { summary, .. } => summary,
        }
    }

    /// Whether this is a leaf node.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf { .. })
    }

    /// Leaf entries (panics on internal nodes).
    pub fn entries(&self) -> &[LeafEntry<T>] {
        match self {
            Node::Leaf { entries, .. } => entries,
            Node::Internal { .. } => panic!("entries() on internal node"),
        }
    }

    /// Children (panics on leaf nodes).
    pub fn children(&self) -> &[Node<T, S>] {
        match self {
            Node::Internal { children, .. } => children,
            Node::Leaf { .. } => panic!("children() on leaf node"),
        }
    }

    /// Appends a leaf entry, updating MBR and summary (no split check).
    pub fn push_leaf_entry(&mut self, entry: LeafEntry<T>) {
        match self {
            Node::Leaf {
                mbr,
                summary,
                entries,
            } => {
                *mbr = mbr.union(&entry.rect);
                summary.add(&entry.data);
                entries.push(entry);
            }
            Node::Internal { .. } => panic!("push_leaf_entry on internal node"),
        }
    }

    /// Appends a child node, updating MBR and summary (no split check).
    pub fn push_child(&mut self, child: Node<T, S>) {
        match self {
            Node::Internal {
                mbr,
                summary,
                children,
            } => {
                *mbr = mbr.union(&child.mbr());
                summary.merge(child.summary());
                children.push(child);
            }
            Node::Leaf { .. } => panic!("push_child on leaf node"),
        }
    }

    /// Guttman insertion. Returns `Some(sibling)` when this node had to
    /// split; the caller links the sibling into the parent (or grows a
    /// new root).
    pub fn insert(&mut self, entry: LeafEntry<T>) -> Option<Node<T, S>> {
        match self {
            Node::Leaf {
                mbr,
                summary,
                entries,
            } => {
                *mbr = mbr.union(&entry.rect);
                summary.add(&entry.data);
                entries.push(entry);
                if entries.len() > MAX_ENTRIES {
                    let spilled = std::mem::take(entries);
                    let (left, right) = split_entries(spilled, |e| e.rect, MIN_ENTRIES);
                    let mut sibling = Node::new_leaf();
                    *mbr = Rect::empty();
                    *summary = S::default();
                    for e in left {
                        *mbr = mbr.union(&e.rect);
                        summary.add(&e.data);
                        entries.push(e);
                    }
                    for e in right {
                        sibling.push_leaf_entry(e);
                    }
                    Some(sibling)
                } else {
                    None
                }
            }
            Node::Internal {
                mbr,
                summary,
                children,
            } => {
                // ChooseLeaf: least enlargement, ties by smallest area.
                let mut best = 0usize;
                let mut best_enl = f64::INFINITY;
                let mut best_area = f64::INFINITY;
                for (i, c) in children.iter().enumerate() {
                    let enl = c.mbr().enlargement(&entry.rect);
                    let area = c.mbr().area();
                    if enl < best_enl || (enl == best_enl && area < best_area) {
                        best = i;
                        best_enl = enl;
                        best_area = area;
                    }
                }
                *mbr = mbr.union(&entry.rect);
                summary.add(&entry.data);
                let split = children[best].insert(entry);
                if let Some(new_child) = split {
                    children.push(new_child);
                    if children.len() > MAX_ENTRIES {
                        let spilled = std::mem::take(children);
                        let (left, right) = split_entries(spilled, |n| n.mbr(), MIN_ENTRIES);
                        let mut sibling = Node::new_internal();
                        *mbr = Rect::empty();
                        *summary = S::default();
                        for c in left {
                            *mbr = mbr.union(&c.mbr());
                            summary.merge(c.summary());
                            children.push(c);
                        }
                        for c in right {
                            sibling.push_child(c);
                        }
                        return Some(sibling);
                    }
                }
                None
            }
        }
    }

    /// Recomputes this node's cached MBR and summary from its direct
    /// contents (children summaries are already cached, so this is
    /// O(fanout)). Needed after removals, since summaries only grow.
    pub fn rebuild_meta(&mut self) {
        match self {
            Node::Leaf {
                mbr,
                summary,
                entries,
            } => {
                *mbr = Rect::empty();
                *summary = S::default();
                for e in entries.iter() {
                    *mbr = mbr.union(&e.rect);
                    summary.add(&e.data);
                }
            }
            Node::Internal {
                mbr,
                summary,
                children,
            } => {
                *mbr = Rect::empty();
                *summary = S::default();
                for c in children.iter() {
                    *mbr = mbr.union(&c.mbr());
                    summary.merge(c.summary());
                }
            }
        }
    }

    /// Drains every leaf entry in this subtree into `out` (used when a
    /// condensed node's survivors are reinserted).
    pub fn drain_entries(self, out: &mut Vec<LeafEntry<T>>) {
        match self {
            Node::Leaf { entries, .. } => out.extend(entries),
            Node::Internal { children, .. } => {
                for c in children {
                    c.drain_entries(out);
                }
            }
        }
    }

    /// Guttman deletion step: removes the first entry with an equal
    /// rectangle accepted by `matches`. Underflowing descendants are
    /// dissolved into `orphans` for reinsertion by the caller
    /// (CondenseTree). Returns the removed payload, if found here.
    pub fn remove(
        &mut self,
        rect: &Rect,
        matches: &impl Fn(&T) -> bool,
        orphans: &mut Vec<LeafEntry<T>>,
        min_fill: usize,
    ) -> Option<T> {
        match self {
            Node::Leaf { entries, .. } => {
                let pos = entries
                    .iter()
                    .position(|e| e.rect == *rect && matches(&e.data))?;
                let removed = entries.remove(pos);
                self.rebuild_meta();
                Some(removed.data)
            }
            Node::Internal { children, .. } => {
                let mut removed = None;
                let mut child_idx = None;
                for (i, c) in children.iter_mut().enumerate() {
                    if c.mbr().intersects(rect) {
                        if let Some(data) = c.remove(rect, matches, orphans, min_fill) {
                            removed = Some(data);
                            child_idx = Some(i);
                            break;
                        }
                    }
                }
                let data = removed?;
                let i = child_idx.expect("index recorded with removal");
                let underflow = match &children[i] {
                    Node::Leaf { entries, .. } => entries.len() < min_fill,
                    Node::Internal { children: cc, .. } => cc.len() < min_fill,
                };
                if underflow {
                    let dissolved = children.remove(i);
                    dissolved.drain_entries(orphans);
                }
                self.rebuild_meta();
                Some(data)
            }
        }
    }

    /// Recursive rectangle search.
    pub fn search_rect<'a>(&'a self, query: &Rect, out: &mut Vec<&'a T>) {
        match self {
            Node::Leaf { entries, .. } => {
                for e in entries {
                    if query.intersects(&e.rect) {
                        out.push(&e.data);
                    }
                }
            }
            Node::Internal { children, .. } => {
                for c in children {
                    if query.intersects(&c.mbr()) {
                        c.search_rect(query, out);
                    }
                }
            }
        }
    }

    /// Recursive full visit.
    pub fn for_each(&self, f: &mut impl FnMut(&Rect, &T)) {
        match self {
            Node::Leaf { entries, .. } => {
                for e in entries {
                    f(&e.rect, &e.data);
                }
            }
            Node::Internal { children, .. } => {
                for c in children {
                    c.for_each(f);
                }
            }
        }
    }

    /// Invariant check: MBRs cover contents, fanout bounds hold (root
    /// exempt from the minimum), all leaves at equal depth. Returns the
    /// subtree depth.
    pub fn check(&self, count: &mut usize, is_root: bool) -> Result<usize, String> {
        match self {
            Node::Leaf { mbr, entries, .. } => {
                if entries.is_empty() && !is_root {
                    return Err("empty non-root leaf".into());
                }
                if entries.len() > MAX_ENTRIES {
                    return Err(format!("leaf overflow: {}", entries.len()));
                }
                let mut real = Rect::empty();
                for e in entries {
                    real = real.union(&e.rect);
                }
                if !mbr.contains_rect(&real) {
                    return Err("leaf mbr does not cover entries".into());
                }
                *count += entries.len();
                Ok(1)
            }
            Node::Internal { mbr, children, .. } => {
                if children.len() < 2 {
                    return Err("internal node with < 2 children".into());
                }
                if children.len() > MAX_ENTRIES {
                    return Err(format!("internal overflow: {}", children.len()));
                }
                let mut depth = None;
                let mut real = Rect::empty();
                for c in children {
                    real = real.union(&c.mbr());
                    let d = c.check(count, false)?;
                    match depth {
                        None => depth = Some(d),
                        Some(prev) if prev != d => return Err("unbalanced subtree depths".into()),
                        _ => {}
                    }
                }
                if !mbr.contains_rect(&real) {
                    return Err("internal mbr does not cover children".into());
                }
                Ok(depth.unwrap_or(0) + 1)
            }
        }
    }
}
