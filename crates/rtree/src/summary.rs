//! Per-node aggregates.
//!
//! A [`NodeSummary`] is carried by every R-tree node and summarises the
//! payloads stored beneath it. Queries can prune whole subtrees by
//! inspecting the summary — exactly how the IR-tree attaches inverted
//! files to R-tree nodes (paper §III-C).

/// Aggregate over the payloads below an R-tree node.
///
/// Summaries only ever grow (insertion, merge); on node splits the
/// summaries of the two halves are rebuilt from scratch, so no
/// subtraction operation is needed.
pub trait NodeSummary<T>: Default + Clone {
    /// Folds one payload into the summary.
    fn add(&mut self, item: &T);
    /// Folds a child node's summary into this (parent) summary.
    fn merge(&mut self, other: &Self);
}

/// The unit summary: a plain R-tree with no per-node aggregate.
impl<T> NodeSummary<T> for () {
    #[inline]
    fn add(&mut self, _item: &T) {}
    #[inline]
    fn merge(&mut self, _other: &Self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default, Clone, PartialEq, Debug)]
    struct Count(usize);

    impl NodeSummary<u32> for Count {
        fn add(&mut self, _item: &u32) {
            self.0 += 1;
        }
        fn merge(&mut self, other: &Self) {
            self.0 += other.0;
        }
    }

    #[test]
    fn counting_summary_tracks_size() {
        use crate::RTree;
        use atsq_types::{Point, Rect};
        let mut t: RTree<u32, Count> = RTree::new();
        for i in 0..100u32 {
            t.insert(Rect::from_point(Point::new(f64::from(i), 0.0)), i);
        }
        t.check_invariants().unwrap();
        let root = t.root().unwrap();
        assert_eq!(root.summary().0, 100);
    }

    #[test]
    fn unit_summary_compiles_and_is_noop() {
        let mut s = ();
        NodeSummary::<u32>::add(&mut s, &1);
        NodeSummary::<u32>::merge(&mut s, &());
    }
}
