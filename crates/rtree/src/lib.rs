//! An R-tree built from scratch (Guttman, SIGMOD 1984 — reference \[21\]
//! of the paper), used by the RT and IRT baselines of §III.
//!
//! The tree is generic over a [`NodeSummary`]: an aggregate carried by
//! every node that summarises the items below it. The plain R-tree uses
//! the unit summary `()`; the IR-tree of Cong et al. (reference \[22\])
//! attaches an inverted file of activities per node and is obtained by
//! instantiating this same tree with an activity summary — see the
//! `atsq-irtree` crate.
//!
//! Provided operations:
//! * [`RTree::insert`] — Guttman insertion with quadratic split,
//! * [`RTree::bulk_load`] — Sort-Tile-Recursive packing,
//! * [`RTree::search_rect`] — rectangle intersection query,
//! * [`RTree::nearest_iter`] — incremental best-first nearest-neighbour
//!   traversal with optional summary-based pruning, the primitive the
//!   k-BCT search strategy of Chen et al. \[20\] is built on.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod nn;
pub mod node;
pub mod split;
pub mod summary;

pub use nn::NearestIter;
pub use node::{LeafEntry, Node};
pub use summary::NodeSummary;

use atsq_types::{Point, Rect};

/// Maximum entries per node (`M`).
pub const MAX_ENTRIES: usize = 16;
/// Minimum entries per node after a split (`m`), 40% of `M` as Guttman
/// recommends.
pub const MIN_ENTRIES: usize = 6;

/// Splits `n` items into `ceil(n / max)` chunks of near-equal size so
/// that STR packing never produces a node with fewer than two entries
/// (a 1-child internal node would violate the tree invariants).
fn chunk_sizes(n: usize, max: usize) -> Vec<usize> {
    if n == 0 {
        return Vec::new();
    }
    let chunks = n.div_ceil(max);
    let base = n / chunks;
    let extra = n % chunks;
    (0..chunks)
        .map(|i| if i < extra { base + 1 } else { base })
        .collect()
}

/// An in-memory R-tree mapping rectangles to payloads of type `T`,
/// with a per-node aggregate `S`.
#[derive(Debug, Clone)]
pub struct RTree<T, S: NodeSummary<T> = ()> {
    root: Option<Node<T, S>>,
    len: usize,
}

impl<T, S: NodeSummary<T>> Default for RTree<T, S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, S: NodeSummary<T>> RTree<T, S> {
    /// An empty tree.
    pub fn new() -> Self {
        RTree { root: None, len: 0 }
    }

    /// Number of stored items.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree stores no items.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bounding rectangle of everything stored (empty rect when empty).
    pub fn mbr(&self) -> Rect {
        self.root.as_ref().map_or_else(Rect::empty, |n| n.mbr())
    }

    /// The root node, for traversals that need raw access (tests,
    /// invariant checks).
    pub fn root(&self) -> Option<&Node<T, S>> {
        self.root.as_ref()
    }

    /// Inserts one item with its bounding rectangle.
    pub fn insert(&mut self, rect: Rect, data: T) {
        self.len += 1;
        let entry = LeafEntry { rect, data };
        match self.root.take() {
            None => {
                let mut leaf = Node::new_leaf();
                leaf.push_leaf_entry(entry);
                self.root = Some(leaf);
            }
            Some(mut root) => {
                if let Some(sibling) = root.insert(entry) {
                    // Root split: grow the tree by one level.
                    let mut new_root = Node::new_internal();
                    new_root.push_child(root);
                    new_root.push_child(sibling);
                    self.root = Some(new_root);
                } else {
                    self.root = Some(root);
                }
            }
        }
    }

    /// Builds a tree from items using Sort-Tile-Recursive packing —
    /// much faster and better-shaped than repeated insertion for bulk
    /// data.
    pub fn bulk_load(items: Vec<(Rect, T)>) -> Self {
        let len = items.len();
        if items.is_empty() {
            return Self::new();
        }
        let entries: Vec<LeafEntry<T>> = items
            .into_iter()
            .map(|(rect, data)| LeafEntry { rect, data })
            .collect();
        let root = Self::str_pack_leaves(entries);
        RTree {
            root: Some(root),
            len,
        }
    }

    fn str_pack_leaves(mut entries: Vec<LeafEntry<T>>) -> Node<T, S> {
        if entries.len() <= MAX_ENTRIES {
            let mut leaf = Node::new_leaf();
            for e in entries {
                leaf.push_leaf_entry(e);
            }
            return leaf;
        }
        // STR: sort by x-centre, slice into vertical strips, sort each
        // strip by y-centre, cut into nodes of MAX_ENTRIES.
        let n = entries.len();
        let node_count = n.div_ceil(MAX_ENTRIES);
        let strip_count = (node_count as f64).sqrt().ceil() as usize;
        let per_strip = n.div_ceil(strip_count);
        entries.sort_by(|a, b| {
            a.rect
                .center()
                .x
                .partial_cmp(&b.rect.center().x)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut leaves: Vec<Node<T, S>> = Vec::with_capacity(node_count);
        let mut rest = entries;
        for strip_len in chunk_sizes(n, per_strip) {
            let mut strip: Vec<LeafEntry<T>> = rest.drain(..strip_len).collect();
            strip.sort_by(|a, b| {
                a.rect
                    .center()
                    .y
                    .partial_cmp(&b.rect.center().y)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for take in chunk_sizes(strip.len(), MAX_ENTRIES) {
                let mut leaf = Node::new_leaf();
                for e in strip.drain(..take) {
                    leaf.push_leaf_entry(e);
                }
                leaves.push(leaf);
            }
        }
        Self::str_pack_internal(leaves)
    }

    fn str_pack_internal(mut nodes: Vec<Node<T, S>>) -> Node<T, S> {
        while nodes.len() > 1 {
            let n = nodes.len();
            if n <= MAX_ENTRIES {
                let mut parent = Node::new_internal();
                for child in nodes {
                    parent.push_child(child);
                }
                return parent;
            }
            let node_count = n.div_ceil(MAX_ENTRIES);
            let strip_count = (node_count as f64).sqrt().ceil() as usize;
            let per_strip = n.div_ceil(strip_count);
            nodes.sort_by(|a, b| {
                a.mbr()
                    .center()
                    .x
                    .partial_cmp(&b.mbr().center().x)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut next: Vec<Node<T, S>> = Vec::with_capacity(node_count);
            let mut rest = nodes;
            for strip_len in chunk_sizes(n, per_strip) {
                let mut strip: Vec<Node<T, S>> = rest.drain(..strip_len).collect();
                strip.sort_by(|a, b| {
                    a.mbr()
                        .center()
                        .y
                        .partial_cmp(&b.mbr().center().y)
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                for take in chunk_sizes(strip.len(), MAX_ENTRIES) {
                    let mut parent = Node::new_internal();
                    for child in strip.drain(..take) {
                        parent.push_child(child);
                    }
                    next.push(parent);
                }
            }
            nodes = next;
        }
        nodes.pop().expect("str_pack_internal requires ≥1 node")
    }

    /// Removes the first stored item whose rectangle equals `rect` and
    /// whose payload satisfies `matches`, returning it. Underflowing
    /// nodes are condensed and their surviving entries reinserted
    /// (Guttman's CondenseTree), so the tree stays balanced.
    pub fn remove(&mut self, rect: &Rect, matches: impl Fn(&T) -> bool) -> Option<T> {
        let mut root = self.root.take()?;
        let mut orphans = Vec::new();
        let removed = root.remove(rect, &matches, &mut orphans, MIN_ENTRIES);
        if removed.is_some() {
            self.len -= 1;
        }
        // Shrink the root: an internal root with one child hands the
        // tree down a level; an empty leaf root empties the tree.
        loop {
            match root {
                Node::Internal { mut children, .. } if children.len() == 1 => {
                    root = children.pop().expect("one child");
                }
                Node::Internal { ref children, .. } if children.is_empty() => {
                    self.root = None;
                    break;
                }
                Node::Leaf { ref entries, .. } if entries.is_empty() && orphans.is_empty() => {
                    self.root = None;
                    break;
                }
                _ => {
                    self.root = Some(root);
                    break;
                }
            }
        }
        // Reinsert orphans through the normal insertion path.
        self.len -= orphans.len();
        for e in orphans {
            self.insert(e.rect, e.data);
        }
        removed
    }

    /// The `k` nearest items to `q`, ascending by distance.
    pub fn nearest_k(&self, q: Point, k: usize) -> Vec<(f64, &T)> {
        self.nearest_iter(q)
            .take(k)
            .map(|n| (n.dist, n.data))
            .collect()
    }

    /// Collects references to every item whose rectangle intersects
    /// `query`.
    pub fn search_rect(&self, query: &Rect) -> Vec<&T> {
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            root.search_rect(query, &mut out);
        }
        out
    }

    /// Visits every item (in unspecified order).
    pub fn for_each(&self, mut f: impl FnMut(&Rect, &T)) {
        if let Some(root) = &self.root {
            root.for_each(&mut f);
        }
    }

    /// Incremental best-first nearest-neighbour iteration from `q`:
    /// yields items in ascending distance order, lazily.
    pub fn nearest_iter(&self, q: Point) -> NearestIter<'_, T, S> {
        NearestIter::new(self.root.as_ref(), q)
    }

    /// As [`RTree::nearest_iter`], but skips any subtree whose summary
    /// fails `keep` — the IR-tree pruning rule of §III-C.
    pub fn nearest_iter_filtered<'a>(
        &'a self,
        q: Point,
        keep: Box<dyn Fn(&S) -> bool + 'a>,
    ) -> NearestIter<'a, T, S> {
        NearestIter::with_filter(self.root.as_ref(), q, keep)
    }

    /// Checks structural invariants, returning a description of the
    /// first violation. Used by tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        let Some(root) = &self.root else {
            return if self.len == 0 {
                Ok(())
            } else {
                Err("len > 0 but no root".into())
            };
        };
        let mut count = 0usize;
        root.check(&mut count, true)?;
        if count != self.len {
            return Err(format!("len {} but counted {count}", self.len));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt_rect(x: f64, y: f64) -> Rect {
        Rect::from_point(Point::new(x, y))
    }

    #[test]
    fn empty_tree() {
        let t: RTree<u32> = RTree::new();
        assert!(t.is_empty());
        assert!(t.mbr().is_empty());
        assert!(t
            .search_rect(&Rect::from_bounds(0.0, 0.0, 1.0, 1.0))
            .is_empty());
        assert!(t.nearest_iter(Point::new(0.0, 0.0)).next().is_none());
        t.check_invariants().unwrap();
    }

    #[test]
    fn insert_and_search() {
        let mut t: RTree<u32> = RTree::new();
        for i in 0..100u32 {
            t.insert(pt_rect(f64::from(i), f64::from(i % 10)), i);
        }
        assert_eq!(t.len(), 100);
        t.check_invariants().unwrap();
        let hits = t.search_rect(&Rect::from_bounds(10.0, 0.0, 19.0, 9.0));
        assert_eq!(hits.len(), 10);
        assert!(hits.iter().all(|&&v| (10..20).contains(&v)));
    }

    #[test]
    fn bulk_load_matches_insert_results() {
        let items: Vec<(Rect, u32)> = (0..500u32)
            .map(|i| {
                let x = f64::from(i % 37) * 3.1;
                let y = f64::from(i % 23) * 5.7;
                (pt_rect(x, y), i)
            })
            .collect();
        let bulk: RTree<u32> = RTree::bulk_load(items.clone());
        bulk.check_invariants().unwrap();
        let mut incr: RTree<u32> = RTree::new();
        for (r, v) in items {
            incr.insert(r, v);
        }
        incr.check_invariants().unwrap();
        let q = Rect::from_bounds(10.0, 10.0, 60.0, 60.0);
        let mut a: Vec<u32> = bulk.search_rect(&q).into_iter().copied().collect();
        let mut b: Vec<u32> = incr.search_rect(&q).into_iter().copied().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn nearest_iter_orders_by_distance() {
        let mut t: RTree<u32> = RTree::new();
        for i in 0..50u32 {
            t.insert(pt_rect(f64::from(i), 0.0), i);
        }
        let q = Point::new(20.2, 0.0);
        let seq: Vec<u32> = t.nearest_iter(q).map(|n| *n.data).take(5).collect();
        assert_eq!(seq, vec![20, 21, 19, 22, 18]);
        // Distances are non-decreasing over the full iteration.
        let dists: Vec<f64> = t.nearest_iter(q).map(|n| n.dist).collect();
        assert_eq!(dists.len(), 50);
        assert!(dists.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn for_each_visits_all() {
        let mut t: RTree<u32> = RTree::new();
        for i in 0..40u32 {
            t.insert(pt_rect(f64::from(i), 1.0), i);
        }
        let mut seen = [false; 40];
        t.for_each(|_, &v| seen[v as usize] = true);
        assert!(seen.iter().all(|&s| s));
    }
}
