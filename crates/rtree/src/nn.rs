//! Incremental best-first nearest-neighbour traversal.
//!
//! A binary heap keyed by `mindist` interleaves internal nodes, leaves
//! and payload entries; popping yields items in globally ascending
//! distance order, lazily. This is the primitive behind the R-tree
//! baseline's k-BCT style search (§III-B): each query point owns one
//! such iterator and trajectories are discovered incrementally.

use crate::node::Node;
use crate::summary::NodeSummary;
use atsq_types::Point;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One yielded neighbour: the payload, its exact distance and a borrow
/// of the leaf entry's data.
#[derive(Debug)]
pub struct Neighbor<'a, T> {
    /// Distance from the query point to the entry's rectangle.
    pub dist: f64,
    /// The stored payload.
    pub data: &'a T,
}

enum HeapItem<'a, T, S: NodeSummary<T>> {
    Node(&'a Node<T, S>),
    Entry(&'a T),
}

struct Prioritized<'a, T, S: NodeSummary<T>> {
    dist: f64,
    item: HeapItem<'a, T, S>,
}

impl<T, S: NodeSummary<T>> PartialEq for Prioritized<'_, T, S> {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl<T, S: NodeSummary<T>> Eq for Prioritized<'_, T, S> {}
impl<T, S: NodeSummary<T>> PartialOrd for Prioritized<'_, T, S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T, S: NodeSummary<T>> Ord for Prioritized<'_, T, S> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap: reverse the distance ordering.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
    }
}

/// Summary predicate used to prune subtrees during traversal.
type SummaryFilter<'a, S> = Box<dyn Fn(&S) -> bool + 'a>;

/// Lazy ascending-distance iterator over the tree's payloads.
pub struct NearestIter<'a, T, S: NodeSummary<T>> {
    heap: BinaryHeap<Prioritized<'a, T, S>>,
    query: Point,
    filter: Option<SummaryFilter<'a, S>>,
}

impl<'a, T, S: NodeSummary<T>> NearestIter<'a, T, S> {
    pub(crate) fn new(root: Option<&'a Node<T, S>>, query: Point) -> Self {
        Self::build(root, query, None)
    }

    pub(crate) fn with_filter(
        root: Option<&'a Node<T, S>>,
        query: Point,
        filter: SummaryFilter<'a, S>,
    ) -> Self {
        Self::build(root, query, Some(filter))
    }

    fn build(
        root: Option<&'a Node<T, S>>,
        query: Point,
        filter: Option<SummaryFilter<'a, S>>,
    ) -> Self {
        let mut heap = BinaryHeap::new();
        if let Some(root) = root {
            let keep = filter.as_ref().is_none_or(|f| f(root.summary()));
            if keep {
                heap.push(Prioritized {
                    dist: root.mbr().min_dist(&query),
                    item: HeapItem::Node(root),
                });
            }
        }
        NearestIter {
            heap,
            query,
            filter,
        }
    }

    /// Distance of the next item without consuming it — the `mdist`
    /// peek the candidate-retrieval loop of §V-A uses to maintain its
    /// lower bound.
    pub fn peek_dist(&self) -> Option<f64> {
        self.heap.peek().map(|p| p.dist)
    }
}

impl<'a, T, S: NodeSummary<T>> Iterator for NearestIter<'a, T, S> {
    type Item = Neighbor<'a, T>;

    fn next(&mut self) -> Option<Self::Item> {
        while let Some(Prioritized { dist, item }) = self.heap.pop() {
            match item {
                HeapItem::Entry(data) => return Some(Neighbor { dist, data }),
                HeapItem::Node(node) => match node {
                    Node::Leaf { entries, .. } => {
                        for e in entries {
                            self.heap.push(Prioritized {
                                dist: e.rect.min_dist(&self.query),
                                item: HeapItem::Entry(&e.data),
                            });
                        }
                    }
                    Node::Internal { children, .. } => {
                        for c in children {
                            let keep = self.filter.as_ref().is_none_or(|f| f(c.summary()));
                            if keep {
                                self.heap.push(Prioritized {
                                    dist: c.mbr().min_dist(&self.query),
                                    item: HeapItem::Node(c),
                                });
                            }
                        }
                    }
                },
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use crate::RTree;
    use atsq_types::{Point, Rect};

    #[test]
    fn yields_exactly_all_items_in_order() {
        let mut t: RTree<usize> = RTree::new();
        let coords: Vec<(f64, f64)> = (0..200)
            .map(|i| ((i * 37 % 101) as f64, (i * 53 % 97) as f64))
            .collect();
        for (i, &(x, y)) in coords.iter().enumerate() {
            t.insert(Rect::from_point(Point::new(x, y)), i);
        }
        let q = Point::new(50.0, 50.0);
        let yielded: Vec<(f64, usize)> = t.nearest_iter(q).map(|n| (n.dist, *n.data)).collect();
        assert_eq!(yielded.len(), 200);
        assert!(yielded.windows(2).all(|w| w[0].0 <= w[1].0));
        // Against brute force.
        let mut brute: Vec<(f64, usize)> = coords
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (q.dist(&Point::new(x, y)), i))
            .collect();
        brute.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for (a, b) in yielded.iter().zip(brute.iter()) {
            assert!((a.0 - b.0).abs() < 1e-9);
        }
    }

    #[test]
    fn peek_dist_matches_next() {
        let mut t: RTree<u32> = RTree::new();
        for i in 0..20u32 {
            t.insert(Rect::from_point(Point::new(f64::from(i), 0.0)), i);
        }
        let mut it = t.nearest_iter(Point::new(5.4, 0.0));
        // peek may refer to an unexpanded node, so it lower-bounds the
        // next yielded distance.
        let peek = it.peek_dist().unwrap();
        let first = it.next().unwrap();
        assert!(peek <= first.dist + 1e-12);
        assert_eq!(*first.data, 5);
    }
}
