//! Guttman's quadratic split.
//!
//! When a node overflows, its entries are repartitioned into two
//! groups: first the pair of entries that would waste the most area if
//! kept together is chosen as seeds; remaining entries are assigned one
//! at a time, each time picking the entry with the greatest preference
//! for one group, with the minimum-fill constraint enforced.

use atsq_types::Rect;

/// Area-based enlargement with a margin (half-perimeter) fallback so
/// that degenerate zero-area rectangles — point data on a line is
/// common in trajectory workloads — still produce meaningful
/// preferences instead of all-zero ties.
fn grow_cost(base: &Rect, add: &Rect) -> f64 {
    let u = base.union(add);
    let by_area = u.area() - base.area();
    if by_area > 0.0 {
        by_area
    } else {
        u.margin() - base.margin()
    }
}

/// Splits `items` into two groups by the quadratic algorithm.
///
/// `rect_of` extracts each item's rectangle; `min_fill` is the minimum
/// group size (Guttman's `m`). The input must contain at least
/// `2 * min_fill` items.
pub fn split_entries<E>(
    mut items: Vec<E>,
    rect_of: impl Fn(&E) -> Rect,
    min_fill: usize,
) -> (Vec<E>, Vec<E>) {
    assert!(
        items.len() >= 2 * min_fill && items.len() >= 2,
        "cannot split {} items with min fill {min_fill}",
        items.len()
    );

    // PickSeeds: maximise dead area d = area(union) - area(a) - area(b).
    let (mut seed_a, mut seed_b) = (0usize, 1usize);
    let mut worst = f64::NEG_INFINITY;
    for i in 0..items.len() {
        for j in i + 1..items.len() {
            let ri = rect_of(&items[i]);
            let rj = rect_of(&items[j]);
            let u = ri.union(&rj);
            let mut d = u.area() - ri.area() - rj.area();
            if d <= 0.0 {
                d = u.margin() - ri.margin() - rj.margin();
            }
            if d > worst {
                worst = d;
                seed_a = i;
                seed_b = j;
            }
        }
    }

    // Remove seeds (larger index first to keep the other stable).
    let (hi, lo) = if seed_a > seed_b {
        (seed_a, seed_b)
    } else {
        (seed_b, seed_a)
    };
    let item_hi = items.swap_remove(hi);
    let item_lo = items.swap_remove(lo);

    let mut group_a = vec![item_lo];
    let mut group_b = vec![item_hi];
    let mut mbr_a = rect_of(&group_a[0]);
    let mut mbr_b = rect_of(&group_b[0]);
    let total = items.len() + 2;

    while let Some(next) = pick_next(&items, &rect_of, &mbr_a, &mbr_b) {
        // Minimum-fill guard: if one group must absorb everything left
        // to reach min_fill, hand the rest over wholesale.
        let remaining = items.len();
        if group_a.len() + remaining == min_fill {
            for it in items.drain(..) {
                mbr_a = mbr_a.union(&rect_of(&it));
                group_a.push(it);
            }
            break;
        }
        if group_b.len() + remaining == min_fill {
            for it in items.drain(..) {
                mbr_b = mbr_b.union(&rect_of(&it));
                group_b.push(it);
            }
            break;
        }

        let item = items.swap_remove(next);
        let r = rect_of(&item);
        let enl_a = grow_cost(&mbr_a, &r);
        let enl_b = grow_cost(&mbr_b, &r);
        // Prefer smaller enlargement; ties by area, then by count.
        let to_a = match enl_a.partial_cmp(&enl_b) {
            Some(std::cmp::Ordering::Less) => true,
            Some(std::cmp::Ordering::Greater) => false,
            _ => match mbr_a.area().partial_cmp(&mbr_b.area()) {
                Some(std::cmp::Ordering::Less) => true,
                Some(std::cmp::Ordering::Greater) => false,
                _ => group_a.len() <= group_b.len(),
            },
        };
        if to_a {
            mbr_a = mbr_a.union(&r);
            group_a.push(item);
        } else {
            mbr_b = mbr_b.union(&r);
            group_b.push(item);
        }
    }

    debug_assert_eq!(group_a.len() + group_b.len(), total);
    (group_a, group_b)
}

/// PickNext: the unassigned item with the largest |enlargement(A) −
/// enlargement(B)|, i.e. the strongest preference.
fn pick_next<E>(
    items: &[E],
    rect_of: &impl Fn(&E) -> Rect,
    mbr_a: &Rect,
    mbr_b: &Rect,
) -> Option<usize> {
    let mut best = None;
    let mut best_pref = f64::NEG_INFINITY;
    for (i, it) in items.iter().enumerate() {
        let r = rect_of(it);
        let pref = (grow_cost(mbr_a, &r) - grow_cost(mbr_b, &r)).abs();
        if pref > best_pref {
            best_pref = pref;
            best = Some(i);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsq_types::Point;

    fn pt(x: f64, y: f64) -> Rect {
        Rect::from_point(Point::new(x, y))
    }

    #[test]
    fn split_separates_clusters() {
        // Two well-separated clusters should end up in different groups.
        let mut items: Vec<Rect> = Vec::new();
        for i in 0..6 {
            items.push(pt(f64::from(i), 0.0));
        }
        for i in 0..6 {
            items.push(pt(100.0 + f64::from(i), 0.0));
        }
        let (a, b) = split_entries(items, |r| *r, 3);
        assert_eq!(a.len() + b.len(), 12);
        let (left, right) = if a[0].min.x < 50.0 { (a, b) } else { (b, a) };
        assert!(left.iter().all(|r| r.min.x < 50.0));
        assert!(right.iter().all(|r| r.min.x > 50.0));
    }

    #[test]
    fn split_respects_min_fill() {
        // A pathological layout (one far outlier) must still satisfy
        // the minimum fill on both sides.
        let mut items: Vec<Rect> = (0..11).map(|i| pt(f64::from(i) * 0.1, 0.0)).collect();
        items.push(pt(1000.0, 1000.0));
        let (a, b) = split_entries(items, |r| *r, 5);
        assert!(a.len() >= 5, "group a too small: {}", a.len());
        assert!(b.len() >= 5, "group b too small: {}", b.len());
        assert_eq!(a.len() + b.len(), 12);
    }

    #[test]
    fn split_handles_identical_rects() {
        let items: Vec<Rect> = (0..10).map(|_| pt(1.0, 1.0)).collect();
        let (a, b) = split_entries(items, |r| *r, 4);
        assert_eq!(a.len() + b.len(), 10);
        assert!(a.len() >= 4 && b.len() >= 4);
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn split_rejects_too_few_items() {
        let items = vec![pt(0.0, 0.0)];
        let _ = split_entries(items, |r| *r, 1);
    }
}
