//! Property tests for the storage substrate: the heap, slotted layout,
//! codec and buffer pool must behave like their obvious in-memory
//! models under arbitrary workloads.

use atsq_storage::{codec, BufferPool, MemPageStore, Page, PageId, RecordHeap, SlottedPage};
use proptest::prelude::*;

fn heap(page_size: usize, frames: usize) -> RecordHeap<MemPageStore> {
    let pool = BufferPool::new(MemPageStore::new(page_size).unwrap(), frames).unwrap();
    RecordHeap::new(pool)
}

proptest! {
    /// Every appended record reads back exactly, regardless of page
    /// size, pool size, and record length mix (inline + chained).
    #[test]
    fn heap_roundtrips_arbitrary_records(
        records in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..600), 1..40),
        page_size in 64usize..512,
        frames in 1usize..8,
    ) {
        let mut h = heap(page_size, frames);
        let ids: Vec<_> = records.iter().map(|r| h.append(r).unwrap()).collect();
        prop_assert_eq!(h.len(), records.len() as u64);
        // Read back in reverse to defeat any tail-page luck.
        for (id, rec) in ids.iter().zip(&records).rev() {
            prop_assert_eq!(&h.get(*id).unwrap(), rec);
        }
    }

    /// Deleting a random subset leaves exactly the survivors readable.
    #[test]
    fn heap_deletes_only_the_deleted(
        records in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..120), 1..30),
        seed in any::<u64>(),
    ) {
        let mut h = heap(128, 4);
        let ids: Vec<_> = records.iter().map(|r| h.append(r).unwrap()).collect();
        let doomed: Vec<bool> = (0..ids.len())
            .map(|i| (seed.rotate_left(i as u32) & 1) == 1)
            .collect();
        for (id, &kill) in ids.iter().zip(&doomed) {
            if kill && !id.is_chained() {
                h.delete(*id).unwrap();
            }
        }
        for ((id, rec), &kill) in ids.iter().zip(&records).zip(&doomed) {
            if kill && !id.is_chained() {
                prop_assert!(h.get(*id).is_err());
            } else {
                prop_assert_eq!(&h.get(*id).unwrap(), rec);
            }
        }
    }

    /// The slotted page agrees with a Vec<Option<record>> model under
    /// interleaved inserts and removes.
    #[test]
    fn slotted_page_matches_model(
        ops in prop::collection::vec(
            prop_oneof![
                prop::collection::vec(any::<u8>(), 0..40).prop_map(Some), // insert
                Just(None),                                               // remove oldest live
            ],
            1..60,
        )
    ) {
        let mut page = SlottedPage::init(vec![0u8; 1024]);
        let mut model: Vec<Option<Vec<u8>>> = Vec::new();
        for op in ops {
            match op {
                Some(rec) => {
                    match page.insert(&rec) {
                        Some(slot) => {
                            prop_assert_eq!(slot as usize, model.len());
                            model.push(Some(rec));
                        }
                        None => {
                            // Only legal when genuinely out of space.
                            prop_assert!(!page.fits(rec.len()));
                        }
                    }
                }
                None => {
                    if let Some(pos) = model.iter().position(Option::is_some) {
                        prop_assert!(page.remove(pos as u16));
                        model[pos] = None;
                    }
                }
            }
        }
        prop_assert_eq!(page.slot_count() as usize, model.len());
        for (slot, expect) in model.iter().enumerate() {
            prop_assert_eq!(page.get(slot as u16), expect.as_deref());
        }
        let live = model.iter().filter(|m| m.is_some()).count();
        prop_assert_eq!(page.live_count() as usize, live);
    }

    /// Varint roundtrip over arbitrary u32 values and buffers.
    #[test]
    fn varint_roundtrip(values in prop::collection::vec(any::<u32>(), 0..50)) {
        let mut buf = Vec::new();
        for &v in &values {
            codec::put_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            prop_assert_eq!(codec::get_varint(&buf, &mut pos), Some(v));
        }
        prop_assert_eq!(pos, buf.len());
    }

    /// Delta-coded ascending sequences roundtrip.
    #[test]
    fn ascending_roundtrip(mut values in prop::collection::vec(0u32..u32::MAX / 2, 0..200)) {
        values.sort_unstable();
        let mut buf = Vec::new();
        codec::put_ascending(&mut buf, &values);
        let mut pos = 0;
        prop_assert_eq!(codec::get_ascending(&buf, &mut pos), Some(values));
        prop_assert_eq!(pos, buf.len());
    }

    /// Decoding arbitrary garbage never panics (it may legitimately
    /// decode, but must never produce an inconsistent position).
    #[test]
    fn codec_never_panics_on_garbage(buf in prop::collection::vec(any::<u8>(), 0..100)) {
        let mut pos = 0;
        let _ = codec::get_varint(&buf, &mut pos);
        prop_assert!(pos <= buf.len());
        let mut pos = 0;
        let _ = codec::get_ascending(&buf, &mut pos);
        prop_assert!(pos <= buf.len());
    }

    /// A buffer pool of any capacity is transparent: page contents
    /// always match a plain Vec<Vec<u8>> model.
    #[test]
    fn buffer_pool_is_transparent(
        frames in 1usize..6,
        writes in prop::collection::vec((0u64..8, any::<u8>()), 1..80),
    ) {
        let pool = BufferPool::new(MemPageStore::new(128).unwrap(), frames).unwrap();
        let mut model = [0u8; 8];
        for _ in 0..8 {
            pool.allocate().unwrap();
        }
        for &(page, byte) in &writes {
            pool.with_page_mut(PageId(page), |pl| pl[0] = byte).unwrap();
            model[page as usize] = byte;
        }
        for (i, &expect) in model.iter().enumerate() {
            let got = pool.with_page(PageId(i as u64), |pl| pl[0]).unwrap();
            prop_assert_eq!(got, expect);
        }
        // Flush, then verify directly against the store.
        let mut store = pool.into_store().unwrap();
        use atsq_storage::PageStore;
        for (i, &expect) in model.iter().enumerate() {
            let mut page = Page::new(store.page_size());
            store.read(PageId(i as u64), &mut page).unwrap();
            prop_assert_eq!(page.payload()[0], expect);
        }
    }
}
