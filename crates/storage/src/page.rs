//! Fixed-size, checksummed pages.
//!
//! Every page starts with a 16-byte header:
//!
//! ```text
//! offset 0  u32  magic  ("ATSQ", little endian)
//! offset 4  u16  format version (currently 1)
//! offset 6  u16  flags (reserved, written as 0)
//! offset 8  u32  CRC-32 of the payload
//! offset 12 u32  reserved (written as 0)
//! ```
//!
//! The payload (everything after the header) belongs to the layer
//! above — the slotted layout, an overflow chunk, or raw bytes. Stores
//! call [`Page::seal`] before writing and [`Page::verify`] after
//! reading, so torn or bit-flipped pages surface as
//! [`crate::StorageError::Corrupt`] instead of silent garbage.

use crate::error::{StorageError, StorageResult};

/// Default page size in bytes (the classical 4 KiB).
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// Bytes reserved for the page header.
pub const PAGE_HEADER_LEN: usize = 16;

/// Smallest page size the crate accepts. Small enough for tests to
/// force multi-page records, large enough for the header plus one
/// slotted record.
pub const MIN_PAGE_SIZE: usize = 64;

const MAGIC: u32 = u32::from_le_bytes(*b"ATSQ");
const VERSION: u16 = 1;

/// Identifier of a page within one store (also its offset / page_size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl PageId {
    /// Byte offset of this page in a file of `page_size` pages.
    pub fn offset(self, page_size: usize) -> u64 {
        self.0 * page_size as u64
    }
}

/// CRC-32 (IEEE 802.3) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 over `bytes` (IEEE polynomial, the zlib convention).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// One in-memory page: a boxed buffer of the store's page size.
#[derive(Debug, Clone)]
pub struct Page {
    buf: Box<[u8]>,
}

impl Page {
    /// A zeroed page of `page_size` bytes with an initialized header.
    ///
    /// # Panics
    /// Panics if `page_size < MIN_PAGE_SIZE`; stores validate their
    /// page size once at construction.
    pub fn new(page_size: usize) -> Self {
        assert!(
            page_size >= MIN_PAGE_SIZE,
            "page size {page_size} below minimum {MIN_PAGE_SIZE}"
        );
        let mut p = Page {
            buf: vec![0u8; page_size].into_boxed_slice(),
        };
        p.buf[0..4].copy_from_slice(&MAGIC.to_le_bytes());
        p.buf[4..6].copy_from_slice(&VERSION.to_le_bytes());
        p
    }

    /// Total page size in bytes (header + payload).
    pub fn size(&self) -> usize {
        self.buf.len()
    }

    /// The caller-owned payload region.
    pub fn payload(&self) -> &[u8] {
        &self.buf[PAGE_HEADER_LEN..]
    }

    /// Mutable payload region.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buf[PAGE_HEADER_LEN..]
    }

    /// The raw page bytes, header included (what a store persists).
    pub fn raw(&self) -> &[u8] {
        &self.buf
    }

    /// Mutable raw bytes — used by stores when reading a page in.
    pub fn raw_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }

    /// Recomputes the payload checksum into the header. Stores call
    /// this immediately before persisting a page.
    pub fn seal(&mut self) {
        let crc = crc32(&self.buf[PAGE_HEADER_LEN..]);
        self.buf[8..12].copy_from_slice(&crc.to_le_bytes());
    }

    /// Verifies magic, version and payload checksum, naming `id` in
    /// any error. Stores call this immediately after reading a page.
    pub fn verify(&self, id: PageId) -> StorageResult<()> {
        let magic = u32::from_le_bytes(self.buf[0..4].try_into().expect("4-byte slice"));
        if magic != MAGIC {
            return Err(StorageError::Corrupt {
                page: id,
                detail: format!("bad magic 0x{magic:08x}"),
            });
        }
        let version = u16::from_le_bytes(self.buf[4..6].try_into().expect("2-byte slice"));
        if version != VERSION {
            return Err(StorageError::Corrupt {
                page: id,
                detail: format!("unsupported version {version}"),
            });
        }
        let stored = u32::from_le_bytes(self.buf[8..12].try_into().expect("4-byte slice"));
        let actual = crc32(&self.buf[PAGE_HEADER_LEN..]);
        if stored != actual {
            return Err(StorageError::Corrupt {
                page: id,
                detail: format!("checksum mismatch: header 0x{stored:08x}, payload 0x{actual:08x}"),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard zlib test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn new_page_seals_and_verifies() {
        let mut p = Page::new(DEFAULT_PAGE_SIZE);
        assert_eq!(p.size(), DEFAULT_PAGE_SIZE);
        assert_eq!(p.payload().len(), DEFAULT_PAGE_SIZE - PAGE_HEADER_LEN);
        p.seal();
        p.verify(PageId(0)).unwrap();
    }

    #[test]
    fn payload_edit_requires_reseal() {
        let mut p = Page::new(256);
        p.seal();
        p.payload_mut()[0] = 0xAB;
        let err = p.verify(PageId(7)).unwrap_err();
        match err {
            StorageError::Corrupt { page, detail } => {
                assert_eq!(page, PageId(7));
                assert!(detail.contains("checksum"), "{detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        p.seal();
        p.verify(PageId(7)).unwrap();
    }

    #[test]
    fn bad_magic_is_detected() {
        let mut p = Page::new(128);
        p.seal();
        p.raw_mut()[0] = 0;
        assert!(matches!(
            p.verify(PageId(0)),
            Err(StorageError::Corrupt { .. })
        ));
    }

    #[test]
    fn bad_version_is_detected() {
        let mut p = Page::new(128);
        p.seal();
        p.raw_mut()[4] = 99;
        let err = p.verify(PageId(0)).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    #[should_panic(expected = "below minimum")]
    fn tiny_pages_are_rejected() {
        let _ = Page::new(32);
    }

    #[test]
    fn page_id_offsets() {
        assert_eq!(PageId(0).offset(4096), 0);
        assert_eq!(PageId(3).offset(4096), 12288);
        assert_eq!(PageId(2).offset(128), 256);
    }
}
