//! Page stores: where sealed pages actually live.
//!
//! Three implementations:
//!
//! * [`MemPageStore`] — pages in a `Vec`; the default for tests and for
//!   "paged but RAM-resident" experiment runs (page traffic is still
//!   counted by the buffer pool above it).
//! * [`FilePageStore`] — pages in a real file via positioned reads and
//!   writes; what a deployment would use for the APL.
//! * [`FaultInjectingStore`] — wraps any store and fails according to a
//!   [`FaultPlan`]; used by the failure-injection tests.
//!
//! All stores seal pages on write and verify on read, so corruption is
//! detected at the store boundary regardless of the backing medium.

use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PageId, MIN_PAGE_SIZE};
use std::fs::{File, OpenOptions};
use std::path::Path;

/// Byte-level page I/O. Implementations are single-threaded; the
/// [`crate::BufferPool`] provides the shared, locked view.
pub trait PageStore: Send {
    /// Size of every page in this store, in bytes.
    fn page_size(&self) -> usize;

    /// Number of allocated pages; valid ids are `0..page_count()`.
    fn page_count(&self) -> u64;

    /// Allocates a fresh zeroed page at the end of the store.
    fn allocate(&mut self) -> StorageResult<PageId>;

    /// Reads page `id` into `page` and verifies it.
    fn read(&mut self, id: PageId, page: &mut Page) -> StorageResult<()>;

    /// Seals `page` content and writes it as page `id`.
    ///
    /// Implementations copy from `page`; the caller keeps ownership.
    fn write(&mut self, id: PageId, page: &mut Page) -> StorageResult<()>;

    /// Flushes buffered writes to the backing medium.
    fn sync(&mut self) -> StorageResult<()>;

    /// Pages read and written since construction `(reads, writes)`.
    fn io_counts(&self) -> (u64, u64);
}

impl PageStore for Box<dyn PageStore> {
    fn page_size(&self) -> usize {
        (**self).page_size()
    }
    fn page_count(&self) -> u64 {
        (**self).page_count()
    }
    fn allocate(&mut self) -> StorageResult<PageId> {
        (**self).allocate()
    }
    fn read(&mut self, id: PageId, page: &mut Page) -> StorageResult<()> {
        (**self).read(id, page)
    }
    fn write(&mut self, id: PageId, page: &mut Page) -> StorageResult<()> {
        (**self).write(id, page)
    }
    fn sync(&mut self) -> StorageResult<()> {
        (**self).sync()
    }
    fn io_counts(&self) -> (u64, u64) {
        (**self).io_counts()
    }
}

fn check_range(id: PageId, allocated: u64) -> StorageResult<()> {
    if id.0 >= allocated {
        Err(StorageError::PageOutOfRange {
            page: id,
            allocated,
        })
    } else {
        Ok(())
    }
}

fn check_page_size(page_size: usize) -> StorageResult<()> {
    if page_size < MIN_PAGE_SIZE {
        return Err(StorageError::Invalid(format!(
            "page size {page_size} below minimum {MIN_PAGE_SIZE}"
        )));
    }
    Ok(())
}

/// An in-memory page store.
#[derive(Debug)]
pub struct MemPageStore {
    page_size: usize,
    pages: Vec<Box<[u8]>>,
    reads: u64,
    writes: u64,
}

impl MemPageStore {
    /// An empty store of `page_size`-byte pages.
    pub fn new(page_size: usize) -> StorageResult<Self> {
        check_page_size(page_size)?;
        Ok(MemPageStore {
            page_size,
            pages: Vec::new(),
            reads: 0,
            writes: 0,
        })
    }

    /// Flips one bit of a stored page — corruption injection for tests.
    pub fn corrupt_byte(&mut self, id: PageId, offset: usize) {
        self.pages[id.0 as usize][offset] ^= 0xFF;
    }
}

impl PageStore for MemPageStore {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn page_count(&self) -> u64 {
        self.pages.len() as u64
    }

    fn allocate(&mut self) -> StorageResult<PageId> {
        let id = PageId(self.pages.len() as u64);
        let mut page = Page::new(self.page_size);
        page.seal();
        self.pages.push(page.raw().to_vec().into_boxed_slice());
        Ok(id)
    }

    fn read(&mut self, id: PageId, page: &mut Page) -> StorageResult<()> {
        check_range(id, self.page_count())?;
        self.reads += 1;
        page.raw_mut().copy_from_slice(&self.pages[id.0 as usize]);
        page.verify(id)
    }

    fn write(&mut self, id: PageId, page: &mut Page) -> StorageResult<()> {
        check_range(id, self.page_count())?;
        self.writes += 1;
        page.seal();
        self.pages[id.0 as usize].copy_from_slice(page.raw());
        Ok(())
    }

    fn sync(&mut self) -> StorageResult<()> {
        Ok(())
    }

    fn io_counts(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }
}

/// A file-backed page store using positioned I/O.
#[derive(Debug)]
pub struct FilePageStore {
    page_size: usize,
    file: File,
    pages: u64,
    reads: u64,
    writes: u64,
}

impl FilePageStore {
    /// Creates (truncating) a page file at `path`.
    pub fn create(path: &Path, page_size: usize) -> StorageResult<Self> {
        check_page_size(page_size)?;
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FilePageStore {
            page_size,
            file,
            pages: 0,
            reads: 0,
            writes: 0,
        })
    }

    /// Opens an existing page file; its length must be a whole number
    /// of pages.
    pub fn open(path: &Path, page_size: usize) -> StorageResult<Self> {
        check_page_size(page_size)?;
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % page_size as u64 != 0 {
            return Err(StorageError::Invalid(format!(
                "file length {len} is not a multiple of page size {page_size}"
            )));
        }
        Ok(FilePageStore {
            page_size,
            file,
            pages: len / page_size as u64,
            reads: 0,
            writes: 0,
        })
    }

    #[cfg(unix)]
    fn read_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.read_exact_at(buf, offset)
    }

    #[cfg(unix)]
    fn write_at(&self, buf: &[u8], offset: u64) -> std::io::Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.write_all_at(buf, offset)
    }
}

impl PageStore for FilePageStore {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn page_count(&self) -> u64 {
        self.pages
    }

    fn allocate(&mut self) -> StorageResult<PageId> {
        let id = PageId(self.pages);
        let mut page = Page::new(self.page_size);
        page.seal();
        self.write_at(page.raw(), id.offset(self.page_size))?;
        self.pages += 1;
        Ok(id)
    }

    fn read(&mut self, id: PageId, page: &mut Page) -> StorageResult<()> {
        check_range(id, self.pages)?;
        self.reads += 1;
        self.read_at(page.raw_mut(), id.offset(self.page_size))?;
        page.verify(id)
    }

    fn write(&mut self, id: PageId, page: &mut Page) -> StorageResult<()> {
        check_range(id, self.pages)?;
        self.writes += 1;
        page.seal();
        self.write_at(page.raw(), id.offset(self.page_size))?;
        Ok(())
    }

    fn sync(&mut self) -> StorageResult<()> {
        self.file.sync_data()?;
        Ok(())
    }

    fn io_counts(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }
}

/// Which operations a [`FaultInjectingStore`] should fail.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Fail the n-th read (0-based) and every read after it.
    pub fail_reads_from: Option<u64>,
    /// Fail the n-th write (0-based) and every write after it.
    pub fail_writes_from: Option<u64>,
    /// Fail every `allocate`.
    pub fail_allocate: bool,
    /// Fail every `sync`.
    pub fail_sync: bool,
    /// External arming switch: when set, the plan only fires while the
    /// switch holds `true`. Lets a test build a structure over a
    /// healthy store and then pull the plug before querying it.
    pub arm_switch: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
}

impl FaultPlan {
    fn armed(&self) -> bool {
        self.arm_switch
            .as_ref()
            // ordering: Relaxed — advisory on/off switch for fault
            // injection; no data is published through it and tests
            // flip it only between store operations.
            .is_none_or(|s| s.load(std::sync::atomic::Ordering::Relaxed))
    }
}

/// Wraps a store and injects [`std::io::ErrorKind::Other`] failures
/// according to a [`FaultPlan`]. Used by failure-injection tests to
/// prove that errors propagate instead of corrupting state.
#[derive(Debug)]
pub struct FaultInjectingStore<S> {
    inner: S,
    plan: FaultPlan,
    reads_seen: u64,
    writes_seen: u64,
}

impl<S: PageStore> FaultInjectingStore<S> {
    /// Wraps `inner` with the given plan.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FaultInjectingStore {
            inner,
            plan,
            reads_seen: 0,
            writes_seen: 0,
        }
    }

    /// The wrapped store (e.g. to inspect counters after a failure).
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn injected(op: &str) -> StorageError {
        StorageError::Io(std::io::Error::other(format!("injected {op} fault")))
    }
}

impl<S: PageStore> PageStore for FaultInjectingStore<S> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn page_count(&self) -> u64 {
        self.inner.page_count()
    }

    fn allocate(&mut self) -> StorageResult<PageId> {
        if self.plan.armed() && self.plan.fail_allocate {
            return Err(Self::injected("allocate"));
        }
        self.inner.allocate()
    }

    fn read(&mut self, id: PageId, page: &mut Page) -> StorageResult<()> {
        let n = self.reads_seen;
        self.reads_seen += 1;
        if self.plan.armed() && self.plan.fail_reads_from.is_some_and(|from| n >= from) {
            return Err(Self::injected("read"));
        }
        self.inner.read(id, page)
    }

    fn write(&mut self, id: PageId, page: &mut Page) -> StorageResult<()> {
        let n = self.writes_seen;
        self.writes_seen += 1;
        if self.plan.armed() && self.plan.fail_writes_from.is_some_and(|from| n >= from) {
            return Err(Self::injected("write"));
        }
        self.inner.write(id, page)
    }

    fn sync(&mut self) -> StorageResult<()> {
        if self.plan.armed() && self.plan.fail_sync {
            return Err(Self::injected("sync"));
        }
        self.inner.sync()
    }

    fn io_counts(&self) -> (u64, u64) {
        self.inner.io_counts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::DEFAULT_PAGE_SIZE;

    fn roundtrip(store: &mut dyn PageStore) {
        let id0 = store.allocate().unwrap();
        let id1 = store.allocate().unwrap();
        assert_eq!((id0, id1), (PageId(0), PageId(1)));
        assert_eq!(store.page_count(), 2);

        let mut page = Page::new(store.page_size());
        page.payload_mut()[..4].copy_from_slice(b"ping");
        store.write(id0, &mut page).unwrap();
        page.payload_mut()[..4].copy_from_slice(b"pong");
        store.write(id1, &mut page).unwrap();

        let mut out = Page::new(store.page_size());
        store.read(id0, &mut out).unwrap();
        assert_eq!(&out.payload()[..4], b"ping");
        store.read(id1, &mut out).unwrap();
        assert_eq!(&out.payload()[..4], b"pong");
        store.sync().unwrap();

        let (r, w) = store.io_counts();
        assert_eq!((r, w), (2, 2));
    }

    #[test]
    fn mem_store_roundtrip() {
        let mut s = MemPageStore::new(256).unwrap();
        roundtrip(&mut s);
    }

    #[test]
    fn file_store_roundtrip() {
        let dir = std::env::temp_dir().join("atsq-storage-test-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.atsq");
        let mut s = FilePageStore::create(&path, DEFAULT_PAGE_SIZE).unwrap();
        roundtrip(&mut s);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_store_reopens_with_data() {
        let dir = std::env::temp_dir().join("atsq-storage-test-reopen");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.atsq");
        {
            let mut s = FilePageStore::create(&path, 128).unwrap();
            let id = s.allocate().unwrap();
            let mut p = Page::new(128);
            p.payload_mut()[..5].copy_from_slice(b"hello");
            s.write(id, &mut p).unwrap();
            s.sync().unwrap();
        }
        let mut s = FilePageStore::open(&path, 128).unwrap();
        assert_eq!(s.page_count(), 1);
        let mut p = Page::new(128);
        s.read(PageId(0), &mut p).unwrap();
        assert_eq!(&p.payload()[..5], b"hello");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_partial_pages() {
        let dir = std::env::temp_dir().join("atsq-storage-test-partial");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("truncated.atsq");
        std::fs::write(&path, vec![0u8; 200]).unwrap(); // not a multiple of 128
        let err = FilePageStore::open(&path, 128).unwrap_err();
        assert!(matches!(err, StorageError::Invalid(_)), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn out_of_range_reads_are_rejected() {
        let mut s = MemPageStore::new(128).unwrap();
        s.allocate().unwrap();
        let mut p = Page::new(128);
        let err = s.read(PageId(5), &mut p).unwrap_err();
        assert!(matches!(err, StorageError::PageOutOfRange { .. }));
        let err = s.write(PageId(5), &mut p).unwrap_err();
        assert!(matches!(err, StorageError::PageOutOfRange { .. }));
    }

    #[test]
    fn mem_corruption_is_detected_on_read() {
        let mut s = MemPageStore::new(128).unwrap();
        let id = s.allocate().unwrap();
        let mut p = Page::new(128);
        p.payload_mut()[0] = 42;
        s.write(id, &mut p).unwrap();
        s.corrupt_byte(id, 40); // somewhere in the payload
        let err = s.read(id, &mut p).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn fault_plan_read_fails_from_threshold() {
        let mut inner = MemPageStore::new(128).unwrap();
        let id = inner.allocate().unwrap();
        let mut p = Page::new(128);
        inner.write(id, &mut p).unwrap();
        let mut s = FaultInjectingStore::new(
            inner,
            FaultPlan {
                fail_reads_from: Some(1),
                ..FaultPlan::default()
            },
        );
        s.read(id, &mut p).unwrap(); // read 0 succeeds
        assert!(s.read(id, &mut p).is_err()); // read 1 fails
        assert!(s.read(id, &mut p).is_err()); // and stays failing
    }

    #[test]
    fn fault_plan_write_allocate_sync() {
        let inner = MemPageStore::new(128).unwrap();
        let mut s = FaultInjectingStore::new(
            inner,
            FaultPlan {
                fail_writes_from: Some(0),
                fail_allocate: true,
                fail_sync: true,
                ..FaultPlan::default()
            },
        );
        assert!(s.allocate().is_err());
        let mut p = Page::new(128);
        assert!(s.write(PageId(0), &mut p).is_err());
        assert!(s.sync().is_err());
        assert_eq!(s.inner().page_count(), 0);
    }

    #[test]
    fn store_rejects_tiny_page_size() {
        assert!(MemPageStore::new(16).is_err());
    }

    #[test]
    fn arm_switch_gates_the_plan() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let mut inner = MemPageStore::new(128).unwrap();
        let id = inner.allocate().unwrap();
        let mut p = Page::new(128);
        inner.write(id, &mut p).unwrap();
        let switch = Arc::new(AtomicBool::new(false));
        let mut s = FaultInjectingStore::new(
            inner,
            FaultPlan {
                fail_reads_from: Some(0),
                arm_switch: Some(Arc::clone(&switch)),
                ..FaultPlan::default()
            },
        );
        s.read(id, &mut p).unwrap(); // disarmed: healthy
                                     // ordering: Relaxed — single-threaded test flips the switch
                                     // between operations; no concurrency at all.
        switch.store(true, Ordering::Relaxed);
        assert!(s.read(id, &mut p).is_err()); // armed: faults
                                              // ordering: Relaxed — see above.
        switch.store(false, Ordering::Relaxed);
        s.read(id, &mut p).unwrap(); // disarmed again
    }
}
