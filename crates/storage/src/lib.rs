//! `atsq-storage` — the disk substrate of the ATSQ reproduction.
//!
//! The paper (§IV) keeps the low HICL levels and every APL posting list
//! "on the secondary storage" and fetches them at query time. The rest
//! of the workspace models that with simulated counters; this crate
//! provides the real thing: a small, dependency-free page storage
//! engine in the classical database architecture —
//!
//! * [`Page`] — fixed-size, checksummed pages ([`page`]),
//! * [`PageStore`] — byte-level page I/O with in-memory, file-backed
//!   and fault-injecting implementations ([`store`]),
//! * [`BufferPool`] — an LRU buffer manager with pin accounting and
//!   hit/miss statistics ([`buffer`]),
//! * [`SlottedPage`] — the slotted-page record layout ([`slotted`]),
//! * [`RecordHeap`] — a heap file of variable-length records with
//!   overflow chains for records larger than one page ([`heap`]),
//! * [`codec`] — varint and delta encoding for posting lists.
//!
//! `atsq-gat` builds its paged APL backend on [`RecordHeap`]; the
//! buffer-pool statistics then replace the simulated I/O counters in
//! the `experiments io` report with *measured* page fetches.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod buffer;
pub mod codec;
pub mod error;
pub mod heap;
pub mod page;
pub mod slotted;
pub mod store;

pub use buffer::{BufferPool, PoolStats};
pub use error::{StorageError, StorageResult};
pub use heap::{RecordHeap, RecordId};
pub use page::{Page, PageId, DEFAULT_PAGE_SIZE, PAGE_HEADER_LEN};
pub use slotted::SlottedPage;
pub use store::{FaultInjectingStore, FaultPlan, FilePageStore, MemPageStore, PageStore};
