//! The slotted-page record layout.
//!
//! Operates on a page *payload* (the region after the page header):
//!
//! ```text
//! [slot_count u16][free_end u16][slot 0][slot 1]...      cells grow
//!  ^— directory grows rightward                  ...<——— leftward from
//!                                                        payload end
//! slot = [offset u16][len u16]   (len == TOMBSTONE marks a hole)
//! ```
//!
//! Records are immutable once inserted (the APL workload is
//! build-once, read-many); [`SlottedPage::remove`] tombstones a slot
//! without compaction, which keeps slot ids — and therefore record ids
//! — stable.

const HEADER: usize = 4;
const SLOT: usize = 4;
const TOMBSTONE: u16 = u16::MAX;

/// A typed view over a slotted payload. Zero-copy: the struct borrows
/// the payload bytes.
#[derive(Debug)]
pub struct SlottedPage<B> {
    payload: B,
}

fn read_u16(buf: &[u8], at: usize) -> u16 {
    u16::from_le_bytes(buf[at..at + 2].try_into().expect("2-byte slice"))
}

fn write_u16(buf: &mut [u8], at: usize, v: u16) {
    buf[at..at + 2].copy_from_slice(&v.to_le_bytes());
}

impl<B: AsRef<[u8]>> SlottedPage<B> {
    /// Wraps an already initialized payload for reading.
    pub fn read(payload: B) -> Self {
        SlottedPage { payload }
    }

    fn buf(&self) -> &[u8] {
        self.payload.as_ref()
    }

    /// Number of slots, tombstoned ones included.
    pub fn slot_count(&self) -> u16 {
        read_u16(self.buf(), 0)
    }

    /// Number of live (non-tombstoned) records.
    pub fn live_count(&self) -> u16 {
        (0..self.slot_count())
            .filter(|&s| self.get(s).is_some())
            .count() as u16
    }

    fn free_end(&self) -> u16 {
        read_u16(self.buf(), 2)
    }

    /// Bytes available for one more record (slot entry included).
    pub fn free_space(&self) -> usize {
        let dir_end = HEADER + self.slot_count() as usize * SLOT;
        (self.free_end() as usize)
            .saturating_sub(dir_end)
            .saturating_sub(SLOT)
    }

    /// Whether a record of `len` bytes (plus its slot entry) fits.
    ///
    /// Exact: [`SlottedPage::insert`] succeeds if and only if this
    /// returns `true`. Unlike [`SlottedPage::free_space`], it resolves
    /// the zero-length-record case when the gap is exactly one slot
    /// entry wide.
    pub fn fits(&self, len: usize) -> bool {
        let dir_end = HEADER + self.slot_count() as usize * SLOT;
        let gap = (self.free_end() as usize).saturating_sub(dir_end);
        len < TOMBSTONE as usize && len + SLOT <= gap
    }

    /// The record in `slot`, or `None` for tombstones and bad slots.
    pub fn get(&self, slot: u16) -> Option<&[u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let at = HEADER + slot as usize * SLOT;
        let off = read_u16(self.buf(), at) as usize;
        let len = read_u16(self.buf(), at + 2);
        if len == TOMBSTONE {
            return None;
        }
        self.buf().get(off..off + len as usize)
    }

    /// Iterates `(slot, record)` over live records.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &[u8])> {
        (0..self.slot_count()).filter_map(move |s| self.get(s).map(|r| (s, r)))
    }
}

impl<B: AsRef<[u8]> + AsMut<[u8]>> SlottedPage<B> {
    /// Initializes an empty slotted layout over `payload`.
    pub fn init(mut payload: B) -> Self {
        let len = payload.as_ref().len();
        assert!(len >= HEADER + SLOT, "payload too small for slotted layout");
        assert!(
            len < TOMBSTONE as usize,
            "payload too large for u16 offsets"
        );
        write_u16(payload.as_mut(), 0, 0);
        write_u16(payload.as_mut(), 2, len as u16);
        SlottedPage { payload }
    }

    fn buf_mut(&mut self) -> &mut [u8] {
        self.payload.as_mut()
    }

    /// Inserts `record`, returning its slot, or `None` if it does not
    /// fit. Empty records are valid (a trajectory with an empty
    /// posting list round-trips).
    pub fn insert(&mut self, record: &[u8]) -> Option<u16> {
        if !self.fits(record.len()) {
            return None;
        }
        let slot = self.slot_count();
        let off = self.free_end() as usize - record.len();
        self.buf_mut()[off..off + record.len()].copy_from_slice(record);
        let at = HEADER + slot as usize * SLOT;
        write_u16(self.buf_mut(), at, off as u16);
        write_u16(self.buf_mut(), at + 2, record.len() as u16);
        write_u16(self.buf_mut(), 0, slot + 1);
        write_u16(self.buf_mut(), 2, off as u16);
        Some(slot)
    }

    /// Tombstones `slot`; the space is not reclaimed. Returns whether
    /// a live record was removed.
    pub fn remove(&mut self, slot: u16) -> bool {
        if slot >= self.slot_count() || self.get(slot).is_none() {
            return false;
        }
        let at = HEADER + slot as usize * SLOT;
        write_u16(self.buf_mut(), at + 2, TOMBSTONE);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(size: usize) -> SlottedPage<Vec<u8>> {
        SlottedPage::init(vec![0u8; size])
    }

    #[test]
    fn insert_and_get_roundtrip() {
        let mut p = page(128);
        let a = p.insert(b"alpha").unwrap();
        let b = p.insert(b"bravo-bravo").unwrap();
        assert_eq!(p.get(a), Some(&b"alpha"[..]));
        assert_eq!(p.get(b), Some(&b"bravo-bravo"[..]));
        assert_eq!(p.slot_count(), 2);
        assert_eq!(p.live_count(), 2);
    }

    #[test]
    fn records_fill_from_the_end() {
        let mut p = page(64);
        p.insert(b"xx").unwrap();
        // 64 - 2 = record at offset 62.
        assert_eq!(&p.buf()[62..64], b"xx");
    }

    #[test]
    fn empty_record_is_valid() {
        let mut p = page(64);
        let s = p.insert(b"").unwrap();
        assert_eq!(p.get(s), Some(&b""[..]));
        assert_eq!(p.live_count(), 1);
    }

    #[test]
    fn insert_rejects_when_full() {
        let mut p = page(64);
        assert!(p.insert(&[7u8; 40]).is_some()); // free = 64-40-8(dir)-4(next slot) = 12
        assert!(p.insert(&[8u8; 13]).is_none());
        assert!(p.insert(&[8u8; 12]).is_some());
        assert_eq!(p.free_space(), 0);
        assert!(p.insert(b"").is_none()); // even empty needs a slot entry
    }

    #[test]
    fn free_space_accounts_for_directory() {
        let p = page(64);
        // 64 payload - 4 header - 4 for the next slot entry.
        assert_eq!(p.free_space(), 56);
    }

    #[test]
    fn remove_tombstones_without_moving() {
        let mut p = page(128);
        let a = p.insert(b"one").unwrap();
        let b = p.insert(b"two").unwrap();
        assert!(p.remove(a));
        assert!(!p.remove(a)); // already a tombstone
        assert!(!p.remove(99)); // no such slot
        assert_eq!(p.get(a), None);
        assert_eq!(p.get(b), Some(&b"two"[..])); // b unmoved
        assert_eq!(p.slot_count(), 2);
        assert_eq!(p.live_count(), 1);
    }

    #[test]
    fn iter_skips_tombstones() {
        let mut p = page(128);
        let a = p.insert(b"a").unwrap();
        p.insert(b"b").unwrap();
        p.insert(b"c").unwrap();
        p.remove(a);
        let got: Vec<(u16, Vec<u8>)> = p.iter().map(|(s, r)| (s, r.to_vec())).collect();
        assert_eq!(got, vec![(1, b"b".to_vec()), (2, b"c".to_vec())]);
    }

    #[test]
    fn get_out_of_range_is_none() {
        let p = page(64);
        assert_eq!(p.get(0), None);
        assert_eq!(p.get(1000), None);
    }

    #[test]
    fn reread_after_init_preserves_records() {
        let mut raw = [0u8; 128];
        {
            let mut p = SlottedPage::init(&mut raw[..]);
            p.insert(b"persist").unwrap();
        }
        let p = SlottedPage::read(&raw[..]);
        assert_eq!(p.get(0), Some(&b"persist"[..]));
    }
}
