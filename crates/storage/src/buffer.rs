//! An LRU buffer pool over any [`PageStore`].
//!
//! The pool owns a fixed number of frames. Page accesses go through
//! [`BufferPool::with_page`] / [`BufferPool::with_page_mut`], which pin
//! the frame only for the duration of the closure — the natural shape
//! for the APL workload, where a posting blob is decoded immediately
//! after the fetch. Dirty frames are written back on eviction and on
//! [`BufferPool::flush_all`].
//!
//! Hit/miss/eviction counters are the *measured* replacement for the
//! simulated `IoStats` disk model: a query's cold-read cost is the
//! pool's miss delta while it ran.

use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PageId};
use crate::store::PageStore;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Counters describing pool behaviour since construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Accesses served from a resident frame.
    pub hits: u64,
    /// Accesses that had to read the page from the store.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Dirty frames written back (on eviction or flush).
    pub write_backs: u64,
}

impl PoolStats {
    /// Hit ratio in `[0, 1]`; zero when no accesses happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Frame {
    page: Page,
    id: Option<PageId>,
    dirty: bool,
    pins: u32,
    last_use: u64,
}

#[derive(Debug)]
struct PoolInner<S> {
    store: S,
    frames: Vec<Frame>,
    table: HashMap<PageId, usize>,
    tick: u64,
    stats: PoolStats,
}

/// The buffer pool. Interior-mutable and `Sync`: engines hold it behind
/// a shared reference and still serve `&self` queries.
#[derive(Debug)]
pub struct BufferPool<S: PageStore> {
    inner: Mutex<PoolInner<S>>,
}

impl<S: PageStore> BufferPool<S> {
    /// A pool of `capacity` frames over `store`.
    pub fn new(store: S, capacity: usize) -> StorageResult<Self> {
        if capacity == 0 {
            return Err(StorageError::Invalid("buffer pool needs >= 1 frame".into()));
        }
        let page_size = store.page_size();
        let frames = (0..capacity)
            .map(|_| Frame {
                page: Page::new(page_size),
                id: None,
                dirty: false,
                pins: 0,
                last_use: 0,
            })
            .collect();
        Ok(BufferPool {
            inner: Mutex::new(PoolInner {
                store,
                frames,
                table: HashMap::with_capacity(capacity),
                tick: 0,
                stats: PoolStats::default(),
            }),
        })
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.inner.lock().frames.len()
    }

    /// Page size of the underlying store.
    pub fn page_size(&self) -> usize {
        self.inner.lock().store.page_size()
    }

    /// Payload bytes available per page (page size minus page header).
    pub fn payload_size(&self) -> usize {
        self.page_size() - crate::page::PAGE_HEADER_LEN
    }

    /// Snapshot of the pool counters.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().stats
    }

    /// Resets the pool counters (page contents are unaffected).
    pub fn reset_stats(&self) {
        self.inner.lock().stats = PoolStats::default();
    }

    /// Pages read from / written to the underlying store.
    pub fn store_io_counts(&self) -> (u64, u64) {
        self.inner.lock().store.io_counts()
    }

    /// Allocates a fresh page in the store (not yet resident).
    pub fn allocate(&self) -> StorageResult<PageId> {
        self.inner.lock().store.allocate()
    }

    /// Number of pages in the underlying store.
    pub fn page_count(&self) -> u64 {
        self.inner.lock().store.page_count()
    }

    /// Runs `f` over the payload of page `id`, faulting it in if
    /// necessary.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> StorageResult<R> {
        let mut inner = self.inner.lock();
        let frame = inner.acquire(id)?;
        let out = f(inner.frames[frame].page.payload());
        inner.release(frame);
        Ok(out)
    }

    /// Runs `f` over the mutable payload of page `id` and marks the
    /// frame dirty.
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut [u8]) -> R) -> StorageResult<R> {
        let mut inner = self.inner.lock();
        let frame = inner.acquire(id)?;
        inner.frames[frame].dirty = true;
        let out = f(inner.frames[frame].page.payload_mut());
        inner.release(frame);
        Ok(out)
    }

    /// Writes every dirty frame back and syncs the store.
    pub fn flush_all(&self) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        for i in 0..inner.frames.len() {
            if inner.frames[i].dirty {
                inner.write_back(i)?;
            }
        }
        inner.store.sync()
    }

    /// Consumes the pool, flushing dirty frames, and returns the store.
    pub fn into_store(self) -> StorageResult<S> {
        self.flush_all()?;
        Ok(self.inner.into_inner().store)
    }
}

impl<S: PageStore> PoolInner<S> {
    /// Returns the index of a pinned frame holding page `id`.
    fn acquire(&mut self, id: PageId) -> StorageResult<usize> {
        self.tick += 1;
        let tick = self.tick;
        if let Some(&frame) = self.table.get(&id) {
            self.stats.hits += 1;
            self.frames[frame].pins += 1;
            self.frames[frame].last_use = tick;
            return Ok(frame);
        }
        self.stats.misses += 1;
        let frame = self.victim()?;
        if self.frames[frame].dirty {
            self.write_back(frame)?;
        }
        if let Some(old) = self.frames[frame].id.take() {
            self.table.remove(&old);
            self.stats.evictions += 1;
        }
        // Read into the frame; on failure the frame is left free.
        let res = {
            let f = &mut self.frames[frame];
            self.store.read(id, &mut f.page)
        };
        res?;
        let f = &mut self.frames[frame];
        f.id = Some(id);
        f.dirty = false;
        f.pins = 1;
        f.last_use = tick;
        self.table.insert(id, frame);
        Ok(frame)
    }

    fn release(&mut self, frame: usize) {
        let f = &mut self.frames[frame];
        debug_assert!(f.pins > 0, "release of unpinned frame");
        f.pins -= 1;
    }

    /// Least-recently-used unpinned frame (empty frames first).
    fn victim(&self) -> StorageResult<usize> {
        let mut best: Option<usize> = None;
        for (i, f) in self.frames.iter().enumerate() {
            if f.pins > 0 {
                continue;
            }
            if f.id.is_none() {
                return Ok(i);
            }
            match best {
                None => best = Some(i),
                Some(b) if f.last_use < self.frames[b].last_use => best = Some(i),
                _ => {}
            }
        }
        best.ok_or(StorageError::PoolExhausted)
    }

    fn write_back(&mut self, frame: usize) -> StorageResult<()> {
        let id = self.frames[frame].id.expect("dirty frame has an id");
        let f = &mut self.frames[frame];
        self.store.write(id, &mut f.page)?;
        f.dirty = false;
        self.stats.write_backs += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{FaultInjectingStore, FaultPlan, MemPageStore};

    fn pool(frames: usize) -> BufferPool<MemPageStore> {
        BufferPool::new(MemPageStore::new(128).unwrap(), frames).unwrap()
    }

    #[test]
    fn zero_capacity_rejected() {
        assert!(BufferPool::new(MemPageStore::new(128).unwrap(), 0).is_err());
    }

    #[test]
    fn write_then_read_through_pool() {
        let p = pool(2);
        let id = p.allocate().unwrap();
        p.with_page_mut(id, |payload| payload[..3].copy_from_slice(b"abc"))
            .unwrap();
        let got = p.with_page(id, |payload| payload[..3].to_vec()).unwrap();
        assert_eq!(got, b"abc");
        let s = p.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn dirty_pages_survive_eviction() {
        let p = pool(1); // every new page evicts the previous one
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        p.with_page_mut(a, |pl| pl[0] = 1).unwrap();
        p.with_page_mut(b, |pl| pl[0] = 2).unwrap(); // evicts a, writes it back
        assert_eq!(p.with_page(a, |pl| pl[0]).unwrap(), 1); // evicts b
        assert_eq!(p.with_page(b, |pl| pl[0]).unwrap(), 2);
        let s = p.stats();
        assert_eq!(s.misses, 4);
        assert!(s.evictions >= 3);
        assert!(s.write_backs >= 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let p = pool(2);
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        let c = p.allocate().unwrap();
        p.with_page(a, |_| ()).unwrap(); // miss: a resident
        p.with_page(b, |_| ()).unwrap(); // miss: a, b resident
        p.with_page(a, |_| ()).unwrap(); // hit: a more recent than b
        p.with_page(c, |_| ()).unwrap(); // miss: evicts b (LRU)
        p.with_page(a, |_| ()).unwrap(); // hit: a still resident
        let s = p.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (2, 3, 1));
    }

    #[test]
    fn hit_ratio_reported() {
        let p = pool(2);
        assert_eq!(p.stats().hit_ratio(), 0.0);
        let a = p.allocate().unwrap();
        p.with_page(a, |_| ()).unwrap();
        p.with_page(a, |_| ()).unwrap();
        p.with_page(a, |_| ()).unwrap();
        let s = p.stats();
        assert!((s.hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
        p.reset_stats();
        assert_eq!(p.stats(), PoolStats::default());
    }

    #[test]
    fn flush_all_persists_to_store() {
        let p = pool(4);
        let id = p.allocate().unwrap();
        p.with_page_mut(id, |pl| pl[..2].copy_from_slice(b"ok"))
            .unwrap();
        p.flush_all().unwrap();
        let mut store = p.into_store().unwrap();
        let mut page = Page::new(store.page_size());
        store.read(id, &mut page).unwrap();
        assert_eq!(&page.payload()[..2], b"ok");
    }

    #[test]
    fn read_fault_propagates_and_frame_stays_free() {
        let mut inner = MemPageStore::new(128).unwrap();
        let id = {
            let id = inner.allocate().unwrap();
            let mut page = Page::new(128);
            inner.write(id, &mut page).unwrap();
            id
        };
        let store = FaultInjectingStore::new(
            inner,
            FaultPlan {
                fail_reads_from: Some(0),
                ..FaultPlan::default()
            },
        );
        let p = BufferPool::new(store, 2).unwrap();
        assert!(p.with_page(id, |_| ()).is_err());
        // The failed read did not leave a phantom resident page.
        assert_eq!(p.stats().hits, 0);
    }

    #[test]
    fn store_io_counts_visible() {
        let p = pool(1);
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        p.with_page_mut(a, |pl| pl[0] = 9).unwrap();
        p.with_page(b, |_| ()).unwrap(); // evicts dirty a -> one store write
        let (reads, writes) = p.store_io_counts();
        assert_eq!(reads, 2);
        assert_eq!(writes, 1);
    }
}
