//! Storage error type.
//!
//! Kept separate from `atsq_types::Error` (which is `Clone + PartialEq`
//! for query-validation ergonomics): storage errors wrap
//! [`std::io::Error`] and carry page-level diagnostics.

use crate::page::PageId;
use std::fmt;
use std::io;

/// Errors raised by the page store, buffer pool and record heap.
#[derive(Debug)]
pub enum StorageError {
    /// An operating-system I/O failure.
    Io(io::Error),
    /// A page failed its checksum or magic verification when read.
    Corrupt {
        /// The page that failed verification.
        page: PageId,
        /// Human-readable cause (bad magic, checksum mismatch, ...).
        detail: String,
    },
    /// A page id beyond the allocated range was addressed.
    PageOutOfRange {
        /// The offending page id.
        page: PageId,
        /// Number of pages currently allocated.
        allocated: u64,
    },
    /// Every buffer-pool frame is pinned; nothing can be evicted.
    PoolExhausted,
    /// A record id addressed a slot that does not exist.
    RecordNotFound {
        /// Page component of the record id.
        page: PageId,
        /// Slot component of the record id.
        slot: u16,
    },
    /// A record or page parameter was structurally invalid.
    Invalid(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::Corrupt { page, detail } => {
                write!(f, "page {} corrupt: {detail}", page.0)
            }
            StorageError::PageOutOfRange { page, allocated } => {
                write!(f, "page {} out of range ({} allocated)", page.0, allocated)
            }
            StorageError::PoolExhausted => write!(f, "buffer pool exhausted: all frames pinned"),
            StorageError::RecordNotFound { page, slot } => {
                write!(f, "record not found: page {} slot {slot}", page.0)
            }
            StorageError::Invalid(msg) => write!(f, "invalid storage request: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Convenience alias for storage operations.
pub type StorageResult<T> = Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<(StorageError, &str)> = vec![
            (
                StorageError::Io(io::Error::other("disk on fire")),
                "i/o error: disk on fire",
            ),
            (
                StorageError::Corrupt {
                    page: PageId(3),
                    detail: "checksum mismatch".into(),
                },
                "page 3 corrupt: checksum mismatch",
            ),
            (
                StorageError::PageOutOfRange {
                    page: PageId(9),
                    allocated: 4,
                },
                "page 9 out of range (4 allocated)",
            ),
            (
                StorageError::PoolExhausted,
                "buffer pool exhausted: all frames pinned",
            ),
            (
                StorageError::RecordNotFound {
                    page: PageId(1),
                    slot: 7,
                },
                "record not found: page 1 slot 7",
            ),
            (
                StorageError::Invalid("record too large".into()),
                "invalid storage request: record too large",
            ),
        ];
        for (err, msg) in cases {
            assert_eq!(err.to_string(), msg);
        }
    }

    #[test]
    fn io_error_converts_and_sources() {
        let e: StorageError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(e, StorageError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&StorageError::PoolExhausted).is_none());
    }
}
