//! Byte codecs for on-page records.
//!
//! Posting lists are stored as LEB128 varints with delta encoding for
//! the ascending point indexes — the standard inverted-file
//! compression (Zobel & Moffat \[23], which the paper's IR-tree also
//! builds on). Decoding is strict: truncated or over-long input yields
//! `None`, never a partial value, so a corrupt record surfaces in the
//! caller instead of decoding to garbage.

/// Appends `v` as an LEB128 varint (1–5 bytes for `u32`).
pub fn put_varint(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one varint from `buf[*pos..]`, advancing `pos`.
/// Returns `None` on truncation or a value exceeding `u32`.
pub fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u32> {
    let mut v: u64 = 0;
    for shift in 0..5 {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        v |= ((byte & 0x7F) as u64) << (7 * shift);
        if byte & 0x80 == 0 {
            return u32::try_from(v).ok();
        }
    }
    None // more than 5 continuation bytes cannot be a u32
}

/// Appends `v` as an LEB128 varint (1–10 bytes for `u64`). Used for
/// grid-cell Morton codes in index snapshots.
pub fn put_varint_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one `u64` varint from `buf[*pos..]`, advancing `pos`.
/// Returns `None` on truncation or a value exceeding `u64`.
pub fn get_varint_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    for shift in 0..10 {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        let part = u64::from(byte & 0x7F);
        // The 10th byte may only carry the final bit of a u64.
        if shift == 9 && part > 1 {
            return None;
        }
        v |= part << (7 * shift);
        if byte & 0x80 == 0 {
            return Some(v);
        }
    }
    None // more than 10 continuation bytes cannot be a u64
}

/// Appends an ascending `u64` sequence as delta varints
/// (`[count][first][gap][gap]...`).
///
/// # Panics
/// Debug-asserts that `values` is non-decreasing.
pub fn put_ascending_u64(out: &mut Vec<u8>, values: &[u64]) {
    put_varint(out, values.len() as u32);
    let mut prev = 0u64;
    for (i, &v) in values.iter().enumerate() {
        debug_assert!(i == 0 || v >= prev, "sequence must be non-decreasing");
        let delta = if i == 0 { v } else { v - prev };
        put_varint_u64(out, delta);
        prev = v;
    }
}

/// Reads a sequence written by [`put_ascending_u64`].
pub fn get_ascending_u64(buf: &[u8], pos: &mut usize) -> Option<Vec<u64>> {
    let n = get_varint(buf, pos)? as usize;
    // A varint is at least one byte: cheap sanity bound against a
    // corrupt count causing a huge allocation.
    if n > buf.len().saturating_sub(*pos) {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    let mut prev = 0u64;
    for i in 0..n {
        let delta = get_varint_u64(buf, pos)?;
        let v = if i == 0 {
            delta
        } else {
            prev.checked_add(delta)?
        };
        out.push(v);
        prev = v;
    }
    Some(out)
}

/// Appends an ascending `u32` sequence as delta varints
/// (`[count][first][gap][gap]...`).
///
/// # Panics
/// Debug-asserts that `values` is non-decreasing; posting lists are
/// built from ascending point indexes.
pub fn put_ascending(out: &mut Vec<u8>, values: &[u32]) {
    put_varint(out, values.len() as u32);
    let mut prev = 0u32;
    for (i, &v) in values.iter().enumerate() {
        debug_assert!(i == 0 || v >= prev, "sequence must be non-decreasing");
        let delta = if i == 0 { v } else { v - prev };
        put_varint(out, delta);
        prev = v;
    }
}

/// Reads a sequence written by [`put_ascending`].
pub fn get_ascending(buf: &[u8], pos: &mut usize) -> Option<Vec<u32>> {
    let n = get_varint(buf, pos)? as usize;
    // A varint is at least one byte: cheap sanity bound against a
    // corrupt count causing a huge allocation.
    if n > buf.len().saturating_sub(*pos) {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    let mut prev = 0u32;
    for i in 0..n {
        let delta = get_varint(buf, pos)?;
        let v = if i == 0 {
            delta
        } else {
            prev.checked_add(delta)?
        };
        out.push(v);
        prev = v;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_one(v: u32) {
        let mut buf = Vec::new();
        put_varint(&mut buf, v);
        let mut pos = 0;
        assert_eq!(get_varint(&buf, &mut pos), Some(v));
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_roundtrips_boundaries() {
        for v in [0, 1, 127, 128, 16383, 16384, 2097151, 2097152, u32::MAX] {
            roundtrip_one(v);
        }
    }

    #[test]
    fn varint_sizes() {
        let size = |v: u32| {
            let mut b = Vec::new();
            put_varint(&mut b, v);
            b.len()
        };
        assert_eq!(size(0), 1);
        assert_eq!(size(127), 1);
        assert_eq!(size(128), 2);
        assert_eq!(size(u32::MAX), 5);
    }

    #[test]
    fn varint_truncation_is_none() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 300);
        let mut pos = 0;
        assert_eq!(get_varint(&buf[..1], &mut pos), None);
        assert_eq!(get_varint(&[], &mut 0), None);
    }

    #[test]
    fn varint_overlong_is_none() {
        // Six continuation bytes can never encode a u32.
        let buf = [0x80, 0x80, 0x80, 0x80, 0x80, 0x01];
        assert_eq!(get_varint(&buf, &mut 0), None);
        // Five bytes whose value exceeds u32::MAX.
        let buf = [0xFF, 0xFF, 0xFF, 0xFF, 0x7F];
        assert_eq!(get_varint(&buf, &mut 0), None);
    }

    #[test]
    fn varint_u64_roundtrips_boundaries() {
        for v in [
            0u64,
            1,
            127,
            128,
            u64::from(u32::MAX),
            u64::from(u32::MAX) + 1,
            1 << 56,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint_u64(&buf, &mut pos), Some(v), "{v}");
            assert_eq!(pos, buf.len());
        }
        // u64::MAX needs exactly 10 bytes.
        let mut buf = Vec::new();
        put_varint_u64(&mut buf, u64::MAX);
        assert_eq!(buf.len(), 10);
    }

    #[test]
    fn varint_u64_truncation_and_overflow_are_none() {
        let mut buf = Vec::new();
        put_varint_u64(&mut buf, u64::MAX);
        assert_eq!(get_varint_u64(&buf[..9], &mut 0), None);
        assert_eq!(get_varint_u64(&[], &mut 0), None);
        // Ten continuation bytes never terminate a u64.
        let buf = [0x80u8; 10];
        assert_eq!(get_varint_u64(&buf, &mut 0), None);
        // A 10th byte above 1 overflows 64 bits.
        let mut buf = vec![0xFFu8; 9];
        buf.push(0x02);
        assert_eq!(get_varint_u64(&buf, &mut 0), None);
    }

    #[test]
    fn ascending_u64_roundtrip() {
        for seq in [
            vec![],
            vec![0u64],
            vec![7, 7, 7],
            vec![0, 1, 2, u64::from(u32::MAX) + 5, 1 << 60, u64::MAX],
        ] {
            let mut buf = Vec::new();
            put_ascending_u64(&mut buf, &seq);
            let mut pos = 0;
            assert_eq!(get_ascending_u64(&buf, &mut pos), Some(seq));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn ascending_u64_corruption_is_none() {
        let mut buf = Vec::new();
        put_ascending_u64(&mut buf, &[1, 2, 3]);
        buf[0] = 0x7F; // claim 127 entries, only 3 present
        assert_eq!(get_ascending_u64(&buf, &mut 0), None);
        // Gap overflowing u64 is rejected.
        let mut buf = Vec::new();
        put_varint(&mut buf, 2);
        put_varint_u64(&mut buf, u64::MAX);
        put_varint_u64(&mut buf, 1);
        assert_eq!(get_ascending_u64(&buf, &mut 0), None);
    }

    #[test]
    fn ascending_roundtrip() {
        for seq in [
            vec![],
            vec![0],
            vec![5, 5, 5],
            vec![0, 1, 2, 3, 1000, 100000],
            vec![42, 360, 361, 70000],
        ] {
            let mut buf = Vec::new();
            put_ascending(&mut buf, &seq);
            let mut pos = 0;
            assert_eq!(get_ascending(&buf, &mut pos), Some(seq));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn ascending_is_compact() {
        // 1000 consecutive indexes: 2-byte count + 1 byte each.
        let seq: Vec<u32> = (5000..6000).collect();
        let mut buf = Vec::new();
        put_ascending(&mut buf, &seq);
        assert!(buf.len() <= 2 + 2 + 999, "got {}", buf.len());
    }

    #[test]
    fn ascending_corrupt_count_is_none() {
        let mut buf = Vec::new();
        put_ascending(&mut buf, &[1, 2, 3]);
        buf[0] = 0x7F; // claim 127 entries, only 3 present
        assert_eq!(get_ascending(&buf, &mut 0), None);
    }

    #[test]
    fn ascending_overflow_gap_is_none() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 2); // two entries
        put_varint(&mut buf, u32::MAX); // first = MAX
        put_varint(&mut buf, 1); // gap overflows
        assert_eq!(get_ascending(&buf, &mut 0), None);
    }

    #[test]
    fn multiple_sequences_share_a_buffer() {
        let mut buf = Vec::new();
        put_ascending(&mut buf, &[1, 2]);
        put_ascending(&mut buf, &[10]);
        let mut pos = 0;
        assert_eq!(get_ascending(&buf, &mut pos), Some(vec![1, 2]));
        assert_eq!(get_ascending(&buf, &mut pos), Some(vec![10]));
        assert_eq!(pos, buf.len());
    }
}
