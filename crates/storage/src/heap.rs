//! A heap file of variable-length records over a [`BufferPool`].
//!
//! Small records live in slotted pages; records larger than one page
//! payload are split across a chain of dedicated *overflow* pages. A
//! [`RecordId`] addresses either kind:
//!
//! * inline — `{ page, slot }` into a slotted page,
//! * chained — `{ page, slot: OVERFLOW_SLOT }`, where `page` is the
//!   first chunk of the chain.
//!
//! Overflow chunk payload layout:
//!
//! ```text
//! [next_page u64]      0 == end of chain (page 0 is always slotted,
//!                      so it can serve as the nil sentinel)
//! [total_len u32]      full record length (first chunk only; later
//!                      chunks repeat their own chunk length here)
//! [chunk_len u32]
//! [bytes...]
//! ```
//!
//! The heap is append-oriented — the APL is built once and read many
//! times — but records can be deleted (tombstoned / chain abandoned);
//! freed space is only reclaimed by rewriting the heap.

use crate::buffer::BufferPool;
use crate::error::{StorageError, StorageResult};
use crate::page::PageId;
use crate::slotted::SlottedPage;
use crate::store::PageStore;

/// Slot value marking a chained (overflow) record.
pub const OVERFLOW_SLOT: u16 = u16::MAX - 1;

const CHUNK_HEADER: usize = 8 + 4 + 4;

/// Address of one record in a [`RecordHeap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecordId {
    /// Page holding the record (or the first overflow chunk).
    pub page: PageId,
    /// Slot within the page, or [`OVERFLOW_SLOT`].
    pub slot: u16,
}

impl RecordId {
    /// Whether this id addresses an overflow chain.
    pub fn is_chained(self) -> bool {
        self.slot == OVERFLOW_SLOT
    }
}

/// The heap file.
#[derive(Debug)]
pub struct RecordHeap<S: PageStore> {
    pool: BufferPool<S>,
    /// Slotted page currently accepting inline inserts.
    tail: Option<PageId>,
    records: u64,
}

impl<S: PageStore> RecordHeap<S> {
    /// An empty heap over `pool`.
    pub fn new(pool: BufferPool<S>) -> Self {
        RecordHeap {
            pool,
            tail: None,
            records: 0,
        }
    }

    /// The buffer pool (for stats and flushing).
    pub fn pool(&self) -> &BufferPool<S> {
        &self.pool
    }

    /// Number of records appended and not deleted.
    pub fn len(&self) -> u64 {
        self.records
    }

    /// Whether the heap holds no records.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    fn payload_len(&self) -> usize {
        // Page size minus the page header; SlottedPage manages the rest.
        self.pool.payload_size()
    }

    /// Largest record stored inline (slotted header + one slot entry
    /// must also fit).
    fn inline_limit(&self) -> usize {
        self.payload_len().saturating_sub(8)
    }

    /// Appends `record`, returning its id.
    pub fn append(&mut self, record: &[u8]) -> StorageResult<RecordId> {
        let id = if record.len() <= self.inline_limit() {
            self.append_inline(record)?
        } else {
            self.append_chained(record)?
        };
        self.records += 1;
        Ok(id)
    }

    fn append_inline(&mut self, record: &[u8]) -> StorageResult<RecordId> {
        if let Some(page) = self.tail {
            let slot = self
                .pool
                .with_page_mut(page, |payload| SlottedPage::read(payload).insert(record))?;
            if let Some(slot) = slot {
                return Ok(RecordId { page, slot });
            }
        }
        // Tail missing or full: start a new slotted page.
        let page = self.pool.allocate()?;
        let slot = self
            .pool
            .with_page_mut(page, |payload| SlottedPage::init(payload).insert(record))?;
        let slot = slot.ok_or_else(|| {
            StorageError::Invalid(format!(
                "record of {} bytes does not fit a fresh page",
                record.len()
            ))
        })?;
        self.tail = Some(page);
        Ok(RecordId { page, slot })
    }

    fn append_chained(&mut self, record: &[u8]) -> StorageResult<RecordId> {
        let chunk_cap = self.payload_len() - CHUNK_HEADER;
        let chunks: Vec<&[u8]> = record.chunks(chunk_cap).collect();
        debug_assert!(chunks.len() >= 2, "chained records span multiple chunks");
        // Allocate the whole chain first so each chunk knows its next.
        let pages: Vec<PageId> = (0..chunks.len())
            .map(|_| self.pool.allocate())
            .collect::<StorageResult<_>>()?;
        for (i, (&page, chunk)) in pages.iter().zip(&chunks).enumerate() {
            let next = pages.get(i + 1).map_or(0, |p| p.0);
            let total = if i == 0 { record.len() } else { chunk.len() } as u32;
            self.pool.with_page_mut(page, |payload| {
                payload[0..8].copy_from_slice(&next.to_le_bytes());
                payload[8..12].copy_from_slice(&total.to_le_bytes());
                payload[12..16].copy_from_slice(&(chunk.len() as u32).to_le_bytes());
                payload[CHUNK_HEADER..CHUNK_HEADER + chunk.len()].copy_from_slice(chunk);
            })?;
        }
        Ok(RecordId {
            page: pages[0],
            slot: OVERFLOW_SLOT,
        })
    }

    /// Reads the record at `id`.
    pub fn get(&self, id: RecordId) -> StorageResult<Vec<u8>> {
        if id.is_chained() {
            self.get_chained(id.page)
        } else {
            let rec = self.pool.with_page(id.page, |payload| {
                SlottedPage::read(payload).get(id.slot).map(<[u8]>::to_vec)
            })?;
            rec.ok_or(StorageError::RecordNotFound {
                page: id.page,
                slot: id.slot,
            })
        }
    }

    fn get_chained(&self, first: PageId) -> StorageResult<Vec<u8>> {
        let mut out = Vec::new();
        let mut page = first;
        let mut hops = 0u64;
        loop {
            let next = self.pool.with_page(page, |payload| {
                let next = u64::from_le_bytes(payload[0..8].try_into().expect("8 bytes"));
                let total =
                    u32::from_le_bytes(payload[8..12].try_into().expect("4 bytes")) as usize;
                let chunk_len =
                    u32::from_le_bytes(payload[12..16].try_into().expect("4 bytes")) as usize;
                if page == first {
                    out.reserve(total);
                }
                out.extend_from_slice(&payload[CHUNK_HEADER..CHUNK_HEADER + chunk_len]);
                next
            })?;
            if next == 0 {
                return Ok(out);
            }
            hops += 1;
            if hops > self.pool.page_count() {
                return Err(StorageError::Corrupt {
                    page,
                    detail: "overflow chain cycle".into(),
                });
            }
            page = PageId(next);
        }
    }

    /// Deletes the record at `id`. Inline records are tombstoned;
    /// chained records have their chain head invalidated (chunk pages
    /// are abandoned, not reused).
    pub fn delete(&mut self, id: RecordId) -> StorageResult<()> {
        if id.is_chained() {
            // Overwrite the head so subsequent reads fail loudly.
            self.pool.with_page_mut(id.page, |payload| {
                payload[0..8].copy_from_slice(&0u64.to_le_bytes());
                payload[8..12].copy_from_slice(&0u32.to_le_bytes());
                payload[12..16].copy_from_slice(&0u32.to_le_bytes());
            })?;
        } else {
            let removed = self.pool.with_page_mut(id.page, |payload| {
                SlottedPage::read(payload).remove(id.slot)
            })?;
            if !removed {
                return Err(StorageError::RecordNotFound {
                    page: id.page,
                    slot: id.slot,
                });
            }
        }
        self.records = self.records.saturating_sub(1);
        Ok(())
    }

    /// Flushes dirty pages and syncs the store.
    pub fn flush(&self) -> StorageResult<()> {
        self.pool.flush_all()
    }

    /// Rewrites every live record into a fresh heap over `target`,
    /// reclaiming tombstoned slots and abandoned overflow chains.
    ///
    /// `live` is the caller's record directory (the heap itself does
    /// not track which chained records are still referenced — deleting
    /// a chain only invalidates its head). Returns the new heap and
    /// the id remapping in the order of `live`.
    pub fn compact<T: PageStore>(
        &self,
        live: &[RecordId],
        target: BufferPool<T>,
    ) -> StorageResult<(RecordHeap<T>, Vec<RecordId>)> {
        let mut out = RecordHeap::new(target);
        let mut remap = Vec::with_capacity(live.len());
        for &id in live {
            let bytes = self.get(id)?;
            remap.push(out.append(&bytes)?);
        }
        out.flush()?;
        Ok((out, remap))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemPageStore;

    fn heap(page_size: usize, frames: usize) -> RecordHeap<MemPageStore> {
        let pool = BufferPool::new(MemPageStore::new(page_size).unwrap(), frames).unwrap();
        RecordHeap::new(pool)
    }

    #[test]
    fn small_records_share_a_page() {
        let mut h = heap(256, 4);
        let a = h.append(b"alpha").unwrap();
        let b = h.append(b"bravo").unwrap();
        assert_eq!(a.page, b.page);
        assert_ne!(a.slot, b.slot);
        assert_eq!(h.get(a).unwrap(), b"alpha");
        assert_eq!(h.get(b).unwrap(), b"bravo");
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn page_overflow_opens_new_tail() {
        let mut h = heap(128, 4); // payload 112
        let a = h.append(&[1u8; 60]).unwrap();
        let b = h.append(&[2u8; 60]).unwrap(); // does not fit with a
        assert_ne!(a.page, b.page);
        assert_eq!(h.get(a).unwrap(), vec![1u8; 60]);
        assert_eq!(h.get(b).unwrap(), vec![2u8; 60]);
    }

    #[test]
    fn big_record_chains_and_roundtrips() {
        let mut h = heap(128, 4);
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let id = h.append(&data).unwrap();
        assert!(id.is_chained());
        assert_eq!(h.get(id).unwrap(), data);
    }

    #[test]
    fn chained_record_with_exact_chunk_multiple() {
        let mut h = heap(128, 4);
        let chunk_cap = 112 - CHUNK_HEADER;
        let data = vec![7u8; chunk_cap * 3];
        let id = h.append(&data).unwrap();
        assert_eq!(h.get(id).unwrap(), data);
    }

    #[test]
    fn inline_and_chained_interleave() {
        let mut h = heap(128, 8);
        let mut ids = Vec::new();
        for i in 0..20u32 {
            let len = if i % 3 == 0 { 500 } else { 10 } as usize;
            let data = vec![i as u8; len];
            ids.push((h.append(&data).unwrap(), data));
        }
        for (id, data) in &ids {
            assert_eq!(&h.get(*id).unwrap(), data);
        }
        assert_eq!(h.len(), 20);
    }

    #[test]
    fn delete_inline_then_read_fails() {
        let mut h = heap(256, 4);
        let id = h.append(b"bye").unwrap();
        h.delete(id).unwrap();
        assert!(matches!(
            h.get(id),
            Err(StorageError::RecordNotFound { .. })
        ));
        assert!(h.is_empty());
        // Double delete reports not-found.
        assert!(h.delete(id).is_err());
    }

    #[test]
    fn delete_chained_reads_empty_or_fails() {
        let mut h = heap(128, 4);
        let id = h.append(&vec![9u8; 400]).unwrap();
        h.delete(id).unwrap();
        // The head chunk was zeroed: the chain now decodes to zero bytes.
        assert_eq!(h.get(id).unwrap(), Vec::<u8>::new());
        assert_eq!(h.len(), 0);
    }

    #[test]
    fn empty_record_roundtrips() {
        let mut h = heap(128, 2);
        let id = h.append(b"").unwrap();
        assert_eq!(h.get(id).unwrap(), b"");
    }

    #[test]
    fn heap_works_with_tiny_pool() {
        // One frame: every access evicts; contents must still be exact.
        let mut h = heap(128, 1);
        let ids: Vec<(RecordId, Vec<u8>)> = (0..10u8)
            .map(|i| {
                let data = vec![i; 50];
                (h.append(&data).unwrap(), data)
            })
            .collect();
        for (id, data) in &ids {
            assert_eq!(&h.get(*id).unwrap(), data);
        }
        let stats = h.pool().stats();
        assert!(stats.misses > 0);
    }

    #[test]
    fn compact_reclaims_space_and_preserves_content() {
        let mut h = heap(128, 4);
        let mut live: Vec<(RecordId, Vec<u8>)> = Vec::new();
        for i in 0..30u32 {
            // Mix of inline and chained records.
            let len = if i % 4 == 0 { 400 } else { 30 };
            let data = vec![(i % 251) as u8; len];
            let id = h.append(&data).unwrap();
            if i % 3 == 0 && !id.is_chained() {
                h.delete(id).unwrap(); // dead weight
            } else {
                live.push((id, data));
            }
        }
        let before = h.pool().page_count();
        let ids: Vec<RecordId> = live.iter().map(|(id, _)| *id).collect();
        let target = BufferPool::new(MemPageStore::new(128).unwrap(), 4).unwrap();
        let (compacted, remap) = h.compact(&ids, target).unwrap();
        assert_eq!(remap.len(), live.len());
        assert_eq!(compacted.len(), live.len() as u64);
        assert!(
            compacted.pool().page_count() <= before,
            "compaction must not grow the heap"
        );
        for (new_id, (_, data)) in remap.iter().zip(&live) {
            assert_eq!(&compacted.get(*new_id).unwrap(), data);
        }
    }

    #[test]
    fn compact_empty_directory_yields_empty_heap() {
        let mut h = heap(128, 2);
        let id = h.append(b"gone").unwrap();
        h.delete(id).unwrap();
        let target = BufferPool::new(MemPageStore::new(128).unwrap(), 2).unwrap();
        let (compacted, remap) = h.compact(&[], target).unwrap();
        assert!(remap.is_empty());
        assert!(compacted.is_empty());
        assert_eq!(compacted.pool().page_count(), 0);
    }

    #[test]
    fn flush_persists_via_pool() {
        let mut h = heap(256, 2);
        let id = h.append(b"durable").unwrap();
        h.flush().unwrap();
        assert_eq!(h.get(id).unwrap(), b"durable");
    }
}
