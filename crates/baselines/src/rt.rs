//! RT — the R-tree baseline (§III-B).
//!
//! All trajectory points are indexed in a single R-tree. The search
//! adapts the k-BCT strategy of Chen et al. \[20\]: every query point
//! drives its own incremental nearest-neighbour iterator; venues are
//! consumed globally nearest-first; each newly discovered trajectory is
//! evaluated in full. The frontier distances of the iterators sum to a
//! lower bound on the best match distance `Dbm` of every undiscovered
//! trajectory, and Lemma 2 (`Dbm ≤ Dmm`) plus Lemma 3 (`Dmm ≤ Dmom`)
//! turn that into the termination test for both query types.

use crate::common::{evaluate_atsq, evaluate_oatsq, venues, TopK, Venue};
use atsq_rtree::{NearestIter, RTree};
use atsq_types::{rank_top_k, Dataset, Query, QueryResult, TrajectoryId};
use std::sync::atomic::{AtomicU64, Ordering};

/// The R-tree baseline engine.
#[derive(Debug)]
pub struct RtEngine {
    tree: RTree<Venue>,
    fetches: AtomicU64,
}

impl RtEngine {
    /// Bulk-loads the point R-tree from a dataset.
    pub fn build(dataset: &Dataset) -> Self {
        RtEngine {
            tree: RTree::bulk_load(venues(dataset)),
            fetches: AtomicU64::new(0),
        }
    }

    /// Trajectory fetches (one per evaluated candidate) since reset.
    pub fn fetches(&self) -> u64 {
        // ordering: Relaxed — advisory monotone fetch tally.
        self.fetches.load(Ordering::Relaxed)
    }

    /// Resets the fetch counter.
    pub fn reset_fetches(&self) {
        // ordering: Relaxed — advisory stat reset; callers quiesce.
        self.fetches.store(0, Ordering::Relaxed);
    }

    /// Number of indexed venues.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// ATSQ via incremental best-match search.
    pub fn atsq(&self, dataset: &Dataset, query: &Query, k: usize) -> Vec<QueryResult> {
        self.search(dataset, query, k, false)
    }

    /// OATSQ via the same retrieval with order-sensitive evaluation.
    pub fn oatsq(&self, dataset: &Dataset, query: &Query, k: usize) -> Vec<QueryResult> {
        self.search(dataset, query, k, true)
    }

    fn search(
        &self,
        dataset: &Dataset,
        query: &Query,
        k: usize,
        ordered: bool,
    ) -> Vec<QueryResult> {
        if k == 0 || dataset.is_empty() {
            return Vec::new();
        }
        let iters: Vec<NearestIter<'_, Venue, ()>> = query
            .points
            .iter()
            .map(|q| self.tree.nearest_iter(q.loc))
            .collect();
        run_incremental(
            dataset,
            query,
            k,
            ordered,
            iters,
            |it| it.peek_dist(),
            &self.fetches,
        )
    }

    /// The k-BCT query of Chen et al. \[20\]: top-`k` by the purely
    /// spatial best match distance `Dbm` (no activities). This is the
    /// query the paper's Fig. 1 shows failing for activity planning —
    /// provided for comparison studies.
    pub fn kbct(&self, dataset: &Dataset, query: &Query, k: usize) -> Vec<QueryResult> {
        if k == 0 || dataset.is_empty() {
            return Vec::new();
        }
        let mut iters: Vec<NearestIter<'_, Venue, ()>> = query
            .points
            .iter()
            .map(|q| self.tree.nearest_iter(q.loc))
            .collect();
        let mut top = TopK::new(k);
        let mut seen = vec![false; dataset.len()];
        loop {
            let mut frontier_sum = 0.0f64;
            let mut best_idx: Option<(usize, f64)> = None;
            for (i, it) in iters.iter().enumerate() {
                match it.peek_dist() {
                    Some(d) => {
                        frontier_sum += d;
                        if best_idx.is_none_or(|(_, bd)| d < bd) {
                            best_idx = Some((i, d));
                        }
                    }
                    None => frontier_sum = f64::INFINITY,
                }
            }
            if top.kth() < frontier_sum {
                break;
            }
            let Some((idx, _)) = best_idx else { break };
            let Some(neighbor) = iters[idx].next() else {
                break;
            };
            let tr = neighbor.data.trajectory;
            if seen[tr.index()] {
                continue;
            }
            seen[tr.index()] = true;
            // ordering: Relaxed — independent monotone tally.
            self.fetches.fetch_add(1, Ordering::Relaxed);
            let d = atsq_matching::best_match_distance(query, &dataset.trajectory(tr).points);
            if d.is_finite() {
                top.offer(d, tr);
            }
        }
        rank_top_k(top.into_results(), k)
    }

    /// Range ATSQ: every trajectory with `Dmm ≤ tau`, ascending.
    pub fn atsq_range(&self, dataset: &Dataset, query: &Query, tau: f64) -> Vec<QueryResult> {
        let iters: Vec<NearestIter<'_, Venue, ()>> = query
            .points
            .iter()
            .map(|q| self.tree.nearest_iter(q.loc))
            .collect();
        run_incremental_range(
            dataset,
            query,
            tau,
            false,
            iters,
            |it| it.peek_dist(),
            &self.fetches,
        )
    }

    /// Range OATSQ: every trajectory with `Dmom ≤ tau`, ascending.
    pub fn oatsq_range(&self, dataset: &Dataset, query: &Query, tau: f64) -> Vec<QueryResult> {
        let iters: Vec<NearestIter<'_, Venue, ()>> = query
            .points
            .iter()
            .map(|q| self.tree.nearest_iter(q.loc))
            .collect();
        run_incremental_range(
            dataset,
            query,
            tau,
            true,
            iters,
            |it| it.peek_dist(),
            &self.fetches,
        )
    }
}

/// Range version of the incremental loop: terminates once the frontier
/// lower bound exceeds `tau` (Lemma 2 again) instead of tracking a
/// k-th best.
pub(crate) fn run_incremental_range<'a, I>(
    dataset: &Dataset,
    query: &Query,
    tau: f64,
    ordered: bool,
    mut iters: Vec<I>,
    peek: impl Fn(&I) -> Option<f64>,
    fetches: &AtomicU64,
) -> Vec<QueryResult>
where
    I: Iterator<Item = atsq_rtree::nn::Neighbor<'a, Venue>>,
{
    let mut out = Vec::new();
    if dataset.is_empty() || tau < 0.0 {
        return out;
    }
    let mut seen = vec![false; dataset.len()];
    loop {
        let mut frontier_sum = 0.0f64;
        let mut best_idx: Option<(usize, f64)> = None;
        for (i, it) in iters.iter().enumerate() {
            match peek(it) {
                Some(d) => {
                    frontier_sum += d;
                    if best_idx.is_none_or(|(_, bd)| d < bd) {
                        best_idx = Some((i, d));
                    }
                }
                None => frontier_sum = f64::INFINITY,
            }
        }
        if frontier_sum > tau {
            break;
        }
        let Some((idx, _)) = best_idx else { break };
        let Some(neighbor) = iters[idx].next() else {
            break;
        };
        let tr: TrajectoryId = neighbor.data.trajectory;
        if seen[tr.index()] {
            continue;
        }
        seen[tr.index()] = true;
        // ordering: Relaxed — independent monotone tally.
        fetches.fetch_add(1, Ordering::Relaxed);
        let dist = if ordered {
            evaluate_oatsq(dataset, query, tr, tau)
        } else {
            evaluate_atsq(dataset, query, tr)
        };
        if let Some(d) = dist {
            if d <= tau {
                out.push(QueryResult::new(tr, d));
            }
        }
    }
    rank_top_k(out, usize::MAX)
}

/// The shared incremental loop, generic over the per-query-point
/// iterator type so the IR-tree engine reuses it verbatim.
///
/// `peek` returns a lower bound on the next yield of an iterator (the
/// R-tree heap head); `None` means exhausted, which contributes an
/// infinite frontier term (no undiscovered trajectory can serve that
/// query point any more).
pub(crate) fn run_incremental<'a, I>(
    dataset: &Dataset,
    query: &Query,
    k: usize,
    ordered: bool,
    mut iters: Vec<I>,
    peek: impl Fn(&I) -> Option<f64>,
    fetches: &AtomicU64,
) -> Vec<QueryResult>
where
    I: Iterator<Item = atsq_rtree::nn::Neighbor<'a, Venue>>,
{
    let mut top = TopK::new(k);
    let mut seen = vec![false; dataset.len()];

    loop {
        // Frontier lower bound: Σ_i peek_i (∞ once any iterator dries
        // up — then no unseen trajectory can match that query point).
        let mut frontier_sum = 0.0f64;
        let mut best_idx: Option<(usize, f64)> = None;
        for (i, it) in iters.iter().enumerate() {
            match peek(it) {
                Some(d) => {
                    frontier_sum += d;
                    if best_idx.is_none_or(|(_, bd)| d < bd) {
                        best_idx = Some((i, d));
                    }
                }
                None => frontier_sum = f64::INFINITY,
            }
        }

        // Lemma-2 termination: the k-th best strictly beats every
        // undiscovered trajectory's lower bound. Strict comparison
        // matters for determinism: distance ties must all be
        // discovered so every engine breaks them by trajectory id.
        if top.kth() < frontier_sum {
            break;
        }
        let Some((idx, _)) = best_idx else { break };
        let Some(neighbor) = iters[idx].next() else {
            break;
        };
        let tr: TrajectoryId = neighbor.data.trajectory;
        if seen[tr.index()] {
            continue;
        }
        seen[tr.index()] = true;
        // ordering: Relaxed — independent monotone tally.
        fetches.fetch_add(1, Ordering::Relaxed);
        let dist = if ordered {
            evaluate_oatsq(dataset, query, tr, top.kth())
        } else {
            evaluate_atsq(dataset, query, tr)
        };
        if let Some(d) = dist {
            top.offer(d, tr);
        }
    }
    rank_top_k(top.into_results(), k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsq_types::{ActivitySet, DatasetBuilder, Point, QueryPoint, TrajectoryPoint};

    fn tp(x: f64, y: f64, acts: &[u32]) -> TrajectoryPoint {
        TrajectoryPoint::new(
            Point::new(x, y),
            ActivitySet::from_raw(acts.iter().copied()),
        )
    }

    fn qp(x: f64, y: f64, acts: &[u32]) -> QueryPoint {
        QueryPoint::new(
            Point::new(x, y),
            ActivitySet::from_raw(acts.iter().copied()),
        )
    }

    fn dataset() -> Dataset {
        let mut b = DatasetBuilder::new().without_frequency_ranking();
        for n in ["a", "b"] {
            b.observe_activity(n);
        }
        b.push_trajectory(vec![tp(0.0, 0.0, &[0]), tp(10.0, 0.0, &[1])]);
        b.push_trajectory(vec![tp(1.0, 0.0, &[0]), tp(11.0, 0.0, &[1])]);
        // Geometrically nearest but activity-poor (paper's Fig. 1
        // motivation): must lose to the matching ones.
        b.push_trajectory(vec![tp(0.0, 0.1, &[1]), tp(10.0, 0.1, &[1])]);
        b.push_trajectory(vec![tp(90.0, 90.0, &[0]), tp(95.0, 90.0, &[1])]);
        b.finish().unwrap()
    }

    #[test]
    fn atsq_finds_activity_matches_not_nearest() {
        let d = dataset();
        let e = RtEngine::build(&d);
        assert_eq!(e.len(), 8);
        let q = Query::new(vec![qp(0.0, 0.0, &[0]), qp(10.0, 0.0, &[1])]).unwrap();
        let res = e.atsq(&d, &q, 2);
        let ids: Vec<u32> = res.iter().map(|r| r.trajectory.0).collect();
        assert_eq!(ids, vec![0, 1]);
        assert_eq!(res[0].distance, 0.0);
        assert_eq!(res[1].distance, 2.0);
    }

    #[test]
    fn termination_does_not_miss_far_matches() {
        let d = dataset();
        let e = RtEngine::build(&d);
        let q = Query::new(vec![qp(90.0, 90.0, &[0]), qp(95.0, 90.0, &[1])]).unwrap();
        let res = e.atsq(&d, &q, 1);
        assert_eq!(res[0].trajectory, TrajectoryId(3));
        assert_eq!(res[0].distance, 0.0);
    }

    #[test]
    fn oatsq_orders() {
        let mut b = DatasetBuilder::new().without_frequency_ranking();
        for n in ["a", "b"] {
            b.observe_activity(n);
        }
        // Activities appear in reverse order along the trajectory.
        b.push_trajectory(vec![tp(10.0, 0.0, &[1]), tp(0.0, 0.0, &[0])]);
        b.push_trajectory(vec![tp(0.5, 0.0, &[0]), tp(10.0, 0.0, &[1])]);
        let d = b.finish().unwrap();
        let e = RtEngine::build(&d);
        let q = Query::new(vec![qp(0.0, 0.0, &[0]), qp(10.0, 0.0, &[1])]).unwrap();
        let unordered = e.atsq(&d, &q, 1);
        assert_eq!(unordered[0].trajectory, TrajectoryId(0));
        let ordered = e.oatsq(&d, &q, 1);
        assert_eq!(ordered[0].trajectory, TrajectoryId(1));
        assert!((ordered[0].distance - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_and_k_zero() {
        let d = dataset();
        let e = RtEngine::build(&d);
        let q = Query::new(vec![qp(0.0, 0.0, &[0])]).unwrap();
        assert!(e.atsq(&d, &q, 0).is_empty());
        let empty = DatasetBuilder::new().finish().unwrap();
        let e2 = RtEngine::build(&empty);
        assert!(e2.is_empty());
        assert!(e2.atsq(&empty, &q, 3).is_empty());
    }
}
