//! IRT — the IR-tree baseline (§III-C).
//!
//! Identical search strategy to the RT baseline, but the tree is an
//! IR-tree: every node carries the union of the activities below it,
//! and each query point's incremental iterator skips subtrees that
//! contain none of that point's activities. The paper expects it to
//! "examine fewer nodes than the R-tree based method".

use crate::common::{venues, Venue};
use crate::rt::run_incremental;
use atsq_irtree::IrTree;
use atsq_types::{Dataset, Query, QueryResult};
use std::sync::atomic::{AtomicU64, Ordering};

/// The IR-tree baseline engine.
#[derive(Debug)]
pub struct IrtEngine {
    tree: IrTree<Venue>,
    fetches: AtomicU64,
}

impl IrtEngine {
    /// Bulk-loads the venue IR-tree from a dataset.
    pub fn build(dataset: &Dataset) -> Self {
        IrtEngine {
            tree: IrTree::bulk_load(venues(dataset)),
            fetches: AtomicU64::new(0),
        }
    }

    /// Trajectory fetches (one per evaluated candidate) since reset.
    pub fn fetches(&self) -> u64 {
        // ordering: Relaxed — advisory monotone fetch tally.
        self.fetches.load(Ordering::Relaxed)
    }

    /// Resets the fetch counter.
    pub fn reset_fetches(&self) {
        // ordering: Relaxed — advisory stat reset; callers quiesce.
        self.fetches.store(0, Ordering::Relaxed);
    }

    /// Number of indexed venues.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// ATSQ with activity-pruned incremental search.
    pub fn atsq(&self, dataset: &Dataset, query: &Query, k: usize) -> Vec<QueryResult> {
        self.search(dataset, query, k, false)
    }

    /// OATSQ with activity-pruned incremental search.
    pub fn oatsq(&self, dataset: &Dataset, query: &Query, k: usize) -> Vec<QueryResult> {
        self.search(dataset, query, k, true)
    }

    fn search(
        &self,
        dataset: &Dataset,
        query: &Query,
        k: usize,
        ordered: bool,
    ) -> Vec<QueryResult> {
        if k == 0 || dataset.is_empty() {
            return Vec::new();
        }
        let iters: Vec<_> = query
            .points
            .iter()
            .map(|q| self.tree.nearest_with_any_activity(q.loc, &q.activities))
            .collect();
        run_incremental(
            dataset,
            query,
            k,
            ordered,
            iters,
            |it| it.peek_dist(),
            &self.fetches,
        )
    }

    /// Range ATSQ with activity-pruned traversal.
    pub fn atsq_range(&self, dataset: &Dataset, query: &Query, tau: f64) -> Vec<QueryResult> {
        let iters: Vec<_> = query
            .points
            .iter()
            .map(|q| self.tree.nearest_with_any_activity(q.loc, &q.activities))
            .collect();
        crate::rt::run_incremental_range(
            dataset,
            query,
            tau,
            false,
            iters,
            |it| it.peek_dist(),
            &self.fetches,
        )
    }

    /// Range OATSQ with activity-pruned traversal.
    pub fn oatsq_range(&self, dataset: &Dataset, query: &Query, tau: f64) -> Vec<QueryResult> {
        let iters: Vec<_> = query
            .points
            .iter()
            .map(|q| self.tree.nearest_with_any_activity(q.loc, &q.activities))
            .collect();
        crate::rt::run_incremental_range(
            dataset,
            query,
            tau,
            true,
            iters,
            |it| it.peek_dist(),
            &self.fetches,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rt::RtEngine;
    use atsq_types::{ActivitySet, DatasetBuilder, Point, QueryPoint, TrajectoryPoint};

    fn tp(x: f64, y: f64, acts: &[u32]) -> TrajectoryPoint {
        TrajectoryPoint::new(
            Point::new(x, y),
            ActivitySet::from_raw(acts.iter().copied()),
        )
    }

    fn qp(x: f64, y: f64, acts: &[u32]) -> QueryPoint {
        QueryPoint::new(
            Point::new(x, y),
            ActivitySet::from_raw(acts.iter().copied()),
        )
    }

    fn dataset() -> Dataset {
        let mut b = DatasetBuilder::new().without_frequency_ranking();
        for n in ["a", "b", "c", "d"] {
            b.observe_activity(n);
        }
        for i in 0..30u32 {
            let x = f64::from(i) * 2.0;
            b.push_trajectory(vec![tp(x, 0.0, &[i % 4]), tp(x + 1.0, 1.0, &[(i + 1) % 4])]);
        }
        b.finish().unwrap()
    }

    #[test]
    fn agrees_with_rt_engine() {
        let d = dataset();
        let irt = IrtEngine::build(&d);
        let rt = RtEngine::build(&d);
        assert_eq!(irt.len(), rt.len());
        let queries = vec![
            Query::new(vec![qp(5.0, 0.0, &[0]), qp(20.0, 0.0, &[1])]).unwrap(),
            Query::new(vec![qp(0.0, 0.0, &[2, 3])]).unwrap(),
            Query::new(vec![
                qp(30.0, 0.0, &[1]),
                qp(31.0, 0.0, &[2]),
                qp(32.0, 0.0, &[3]),
            ])
            .unwrap(),
        ];
        for q in &queries {
            for k in [1, 3, 7] {
                assert_eq!(irt.atsq(&d, q, k), rt.atsq(&d, q, k), "atsq {q:?} k={k}");
                assert_eq!(irt.oatsq(&d, q, k), rt.oatsq(&d, q, k), "oatsq {q:?} k={k}");
            }
        }
    }

    #[test]
    fn prunes_to_rare_activity() {
        let mut b = DatasetBuilder::new().without_frequency_ranking();
        for n in ["common", "rare"] {
            b.observe_activity(n);
        }
        for i in 0..50u32 {
            b.push_trajectory(vec![tp(f64::from(i), 0.0, &[0])]);
        }
        b.push_trajectory(vec![tp(500.0, 0.0, &[1])]);
        let d = b.finish().unwrap();
        let e = IrtEngine::build(&d);
        let q = Query::new(vec![qp(0.0, 0.0, &[1])]).unwrap();
        let res = e.atsq(&d, &q, 1);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].trajectory.0, 50);
        assert_eq!(res[0].distance, 500.0);
    }

    #[test]
    fn empty_cases() {
        let d = dataset();
        let e = IrtEngine::build(&d);
        let q = Query::new(vec![qp(0.0, 0.0, &[0])]).unwrap();
        assert!(e.atsq(&d, &q, 0).is_empty());
        let q_none = Query::new(vec![qp(0.0, 0.0, &[42])]).unwrap();
        assert!(e.atsq(&d, &q_none, 5).is_empty());
        assert!(e.oatsq(&d, &q_none, 5).is_empty());
    }
}
