//! The three baseline algorithms of §III, reproduced faithfully:
//!
//! * [`il::IlEngine`] — activity-only pruning with a per-activity
//!   inverted list over whole trajectories (§III-A).
//! * [`rt::RtEngine`] — purely spatial pruning with an R-tree over all
//!   trajectory points, adapting the k-BCT incremental search of Chen
//!   et al. \[20\] with the Lemma-2 termination test (§III-B).
//! * [`irt::IrtEngine`] — the IR-tree variant: the same incremental
//!   search, but subtrees containing none of the query activities are
//!   pruned during traversal (§III-C).
//!
//! All three engines share the *same* distance kernels as GAT
//! (`atsq-matching`), exactly as the paper prescribes: "the four
//! algorithms only differ in the index structure and how they retrieve
//! candidates".

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod common;
pub mod il;
pub mod irt;
pub mod rt;

pub use il::IlEngine;
pub use irt::IrtEngine;
pub use rt::RtEngine;
