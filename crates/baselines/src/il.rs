//! IL — the inverted-list baseline (§III-A).
//!
//! Activities are aggregated per trajectory and an inverted list maps
//! each activity to the trajectories containing it. A query first
//! intersects the lists of *all* its activities (trajectories missing
//! any activity cannot be matches), then evaluates the match distance
//! of every surviving candidate sequentially. No spatial pruning at
//! all — the paper's running times show it flat in `k` and `δ(Q)` but
//! badly beaten by every spatial method.

use crate::common::{evaluate_atsq, evaluate_oatsq, TopK};
use atsq_types::{rank_top_k, ActivityId, Dataset, Query, QueryResult, TrajectoryId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// The inverted-list engine.
#[derive(Debug, Default)]
pub struct IlEngine {
    lists: HashMap<ActivityId, Vec<TrajectoryId>>,
    /// Trajectory fetches: every candidate evaluation reads one full
    /// trajectory, which the paper's disk-resident database serves
    /// with one random I/O. Used for disk-adjusted cost reporting.
    fetches: AtomicU64,
}

impl IlEngine {
    /// Builds the per-activity inverted lists.
    pub fn build(dataset: &Dataset) -> Self {
        let mut lists: HashMap<ActivityId, Vec<TrajectoryId>> = HashMap::new();
        for tr in dataset.trajectories() {
            for a in tr.all_activities().iter() {
                lists.entry(a).or_default().push(tr.id);
            }
        }
        // Lists are naturally sorted (trajectories visited in id order).
        IlEngine {
            lists,
            fetches: AtomicU64::new(0),
        }
    }

    /// Trajectory fetches performed since the last reset.
    pub fn fetches(&self) -> u64 {
        // ordering: Relaxed — advisory monotone fetch tally.
        self.fetches.load(Ordering::Relaxed)
    }

    /// Resets the fetch counter.
    pub fn reset_fetches(&self) {
        // ordering: Relaxed — advisory stat reset; callers quiesce.
        self.fetches.store(0, Ordering::Relaxed);
    }

    /// The trajectories containing `act`.
    pub fn list(&self, act: ActivityId) -> &[TrajectoryId] {
        self.lists.get(&act).map_or(&[][..], Vec::as_slice)
    }

    /// Candidates containing *every* activity of the query: the
    /// intersection of the per-activity lists, smallest list first.
    pub fn candidates(&self, query: &Query) -> Vec<TrajectoryId> {
        let all = query.all_activities();
        if all.is_empty() {
            return Vec::new();
        }
        let mut lists: Vec<&[TrajectoryId]> = all.iter().map(|a| self.list(a)).collect();
        lists.sort_by_key(|l| l.len());
        if lists[0].is_empty() {
            return Vec::new();
        }
        let mut result: Vec<TrajectoryId> = lists[0].to_vec();
        for l in &lists[1..] {
            result.retain(|tr| l.binary_search(tr).is_ok());
            if result.is_empty() {
                break;
            }
        }
        result
    }

    /// ATSQ by exhaustive evaluation of the activity-filtered
    /// candidates.
    pub fn atsq(&self, dataset: &Dataset, query: &Query, k: usize) -> Vec<QueryResult> {
        let mut results = Vec::new();
        for tr in self.candidates(query) {
            // ordering: Relaxed — independent monotone tally.
            self.fetches.fetch_add(1, Ordering::Relaxed);
            if let Some(d) = evaluate_atsq(dataset, query, tr) {
                results.push(QueryResult::new(tr, d));
            }
        }
        rank_top_k(results, k)
    }

    /// Range ATSQ: every candidate with `Dmm ≤ tau`, ascending.
    pub fn atsq_range(&self, dataset: &Dataset, query: &Query, tau: f64) -> Vec<QueryResult> {
        let mut results = Vec::new();
        for tr in self.candidates(query) {
            // ordering: Relaxed — independent monotone tally.
            self.fetches.fetch_add(1, Ordering::Relaxed);
            if let Some(d) = evaluate_atsq(dataset, query, tr) {
                if d <= tau {
                    results.push(QueryResult::new(tr, d));
                }
            }
        }
        rank_top_k(results, usize::MAX)
    }

    /// Range OATSQ: every candidate with `Dmom ≤ tau`, ascending.
    pub fn oatsq_range(&self, dataset: &Dataset, query: &Query, tau: f64) -> Vec<QueryResult> {
        let mut results = Vec::new();
        for tr in self.candidates(query) {
            // ordering: Relaxed — independent monotone tally.
            self.fetches.fetch_add(1, Ordering::Relaxed);
            if let Some(d) = evaluate_oatsq(dataset, query, tr, tau) {
                if d <= tau {
                    results.push(QueryResult::new(tr, d));
                }
            }
        }
        rank_top_k(results, usize::MAX)
    }

    /// OATSQ by exhaustive evaluation with the running `Dkmom`
    /// threshold feeding Algorithm 4's early exit.
    pub fn oatsq(&self, dataset: &Dataset, query: &Query, k: usize) -> Vec<QueryResult> {
        let mut top = TopK::new(k.max(1));
        if k == 0 {
            return Vec::new();
        }
        for tr in self.candidates(query) {
            // ordering: Relaxed — independent monotone tally.
            self.fetches.fetch_add(1, Ordering::Relaxed);
            if let Some(d) = evaluate_oatsq(dataset, query, tr, top.kth()) {
                top.offer(d, tr);
            }
        }
        rank_top_k(top.into_results(), k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsq_types::{ActivitySet, DatasetBuilder, Point, QueryPoint, TrajectoryPoint};

    fn tp(x: f64, acts: &[u32]) -> TrajectoryPoint {
        TrajectoryPoint::new(
            Point::new(x, 0.0),
            ActivitySet::from_raw(acts.iter().copied()),
        )
    }

    fn qp(x: f64, acts: &[u32]) -> QueryPoint {
        QueryPoint::new(
            Point::new(x, 0.0),
            ActivitySet::from_raw(acts.iter().copied()),
        )
    }

    fn dataset() -> Dataset {
        let mut b = DatasetBuilder::new().without_frequency_ranking();
        for n in ["a", "b", "c"] {
            b.observe_activity(n);
        }
        b.push_trajectory(vec![tp(0.0, &[0]), tp(1.0, &[1])]); // Tr0: a,b
        b.push_trajectory(vec![tp(5.0, &[0])]); // Tr1: a only
        b.push_trajectory(vec![tp(2.0, &[0, 1, 2])]); // Tr2: all
        b.finish().unwrap()
    }

    #[test]
    fn candidates_require_all_activities() {
        let d = dataset();
        let e = IlEngine::build(&d);
        let q = Query::new(vec![qp(0.0, &[0]), qp(1.0, &[1])]).unwrap();
        let c = e.candidates(&q);
        assert_eq!(c, vec![TrajectoryId(0), TrajectoryId(2)]);
        let q2 = Query::new(vec![qp(0.0, &[2])]).unwrap();
        assert_eq!(e.candidates(&q2), vec![TrajectoryId(2)]);
        let q3 = Query::new(vec![qp(0.0, &[9])]).unwrap();
        assert!(e.candidates(&q3).is_empty());
    }

    #[test]
    fn atsq_ranks_candidates() {
        let d = dataset();
        let e = IlEngine::build(&d);
        let q = Query::new(vec![qp(0.0, &[0]), qp(1.0, &[1])]).unwrap();
        let res = e.atsq(&d, &q, 2);
        assert_eq!(res.len(), 2);
        assert_eq!(res[0].trajectory, TrajectoryId(0));
        assert_eq!(res[0].distance, 0.0);
        assert_eq!(res[1].trajectory, TrajectoryId(2));
        assert_eq!(res[1].distance, 3.0); // |2-0| + |2-1|
    }

    #[test]
    fn oatsq_filters_wrong_order() {
        let mut b = DatasetBuilder::new().without_frequency_ranking();
        for n in ["a", "b"] {
            b.observe_activity(n);
        }
        b.push_trajectory(vec![tp(1.0, &[1]), tp(0.0, &[0])]); // b then a
        let d = b.finish().unwrap();
        let e = IlEngine::build(&d);
        let q = Query::new(vec![qp(0.0, &[0]), qp(1.0, &[1])]).unwrap();
        assert_eq!(e.atsq(&d, &q, 1).len(), 1);
        assert!(e.oatsq(&d, &q, 1).is_empty());
    }
}
