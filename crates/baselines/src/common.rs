//! Shared candidate-evaluation helpers for the baseline engines.

use atsq_matching::min_match_distance;
use atsq_matching::order_match::{min_order_match_distance, order_feasible};
use atsq_types::{Dataset, Query, TrajectoryId};

/// Evaluates `Dmm(Q, Tr)` for a candidate; `None` when the trajectory
/// is not a match.
pub fn evaluate_atsq(dataset: &Dataset, query: &Query, tr: TrajectoryId) -> Option<f64> {
    min_match_distance(query, &dataset.trajectory(tr).points)
}

/// Evaluates `Dmom(Q, Tr)` with the MIB pre-filter and the caller's
/// current `k`-th best as the Algorithm-4 early-exit threshold.
pub fn evaluate_oatsq(dataset: &Dataset, query: &Query, tr: TrajectoryId, dk: f64) -> Option<f64> {
    let points = &dataset.trajectory(tr).points;
    if !order_feasible(query, points) {
        return None;
    }
    min_order_match_distance(query, points, dk)
}

/// Bounded top-k accumulator shared by the baseline search loops.
#[derive(Debug)]
pub struct TopK {
    k: usize,
    entries: Vec<(f64, TrajectoryId)>,
}

impl TopK {
    /// An empty accumulator for `k` results.
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            entries: Vec::with_capacity(k + 1),
        }
    }

    /// Offers one scored trajectory.
    pub fn offer(&mut self, dist: f64, tr: TrajectoryId) {
        let pos = self
            .entries
            .partition_point(|&(d, t)| d < dist || (d == dist && t < tr));
        self.entries.insert(pos, (dist, tr));
        if self.entries.len() > self.k {
            self.entries.pop();
        }
    }

    /// Current `k`-th smallest distance (`∞` until k results exist).
    pub fn kth(&self) -> f64 {
        if self.entries.len() == self.k {
            self.entries.last().map_or(f64::INFINITY, |&(d, _)| d)
        } else {
            f64::INFINITY
        }
    }

    /// The accumulated results, ascending.
    pub fn into_results(self) -> Vec<atsq_types::QueryResult> {
        self.entries
            .into_iter()
            .map(|(d, tr)| atsq_types::QueryResult::new(tr, d))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topk_keeps_k_smallest_in_order() {
        let mut t = TopK::new(2);
        assert_eq!(t.kth(), f64::INFINITY);
        t.offer(5.0, TrajectoryId(1));
        assert_eq!(t.kth(), f64::INFINITY); // only one entry so far
        t.offer(3.0, TrajectoryId(2));
        assert_eq!(t.kth(), 5.0);
        t.offer(4.0, TrajectoryId(3));
        assert_eq!(t.kth(), 4.0);
        let res = t.into_results();
        assert_eq!(res.len(), 2);
        assert_eq!(res[0].trajectory, TrajectoryId(2));
        assert_eq!(res[1].trajectory, TrajectoryId(3));
    }

    #[test]
    fn topk_tie_breaks_by_id() {
        let mut t = TopK::new(2);
        t.offer(1.0, TrajectoryId(9));
        t.offer(1.0, TrajectoryId(3));
        t.offer(1.0, TrajectoryId(5));
        let res = t.into_results();
        assert_eq!(res[0].trajectory, TrajectoryId(3));
        assert_eq!(res[1].trajectory, TrajectoryId(5));
    }
}

/// One indexed venue: a trajectory point flattened for the spatial
/// baselines. The R-tree ignores the activity set; the IR-tree builds
/// its per-node inverted files from it.
#[derive(Debug, Clone)]
pub struct Venue {
    /// Owning trajectory.
    pub trajectory: TrajectoryId,
    /// Index of the point within the trajectory.
    pub point_idx: u32,
    /// Activities at the venue.
    pub activities: atsq_types::ActivitySet,
}

impl atsq_irtree::HasActivities for Venue {
    fn activities(&self) -> &atsq_types::ActivitySet {
        &self.activities
    }
}

/// Flattens a dataset into venues with point rectangles.
pub fn venues(dataset: &Dataset) -> Vec<(atsq_types::Rect, Venue)> {
    let mut out = Vec::new();
    for tr in dataset.trajectories() {
        for (i, p) in tr.points.iter().enumerate() {
            out.push((
                atsq_types::Rect::from_point(p.loc),
                Venue {
                    trajectory: tr.id,
                    point_idx: i as u32,
                    activities: p.activities.clone(),
                },
            ));
        }
    }
    out
}
