//! Property tests for the GAT components: TAS soundness, the optimal
//! sketch partition, and the Algorithm-2 lower bound's validity on
//! random micro-datasets.

use atsq_gat::tas::Sketch;
use atsq_gat::{GatConfig, GatIndex};
use atsq_matching::min_match_distance;
use atsq_types::{
    rank_top_k, ActivitySet, Dataset, DatasetBuilder, Point, Query, QueryPoint, QueryResult,
    TrajectoryPoint,
};
use proptest::prelude::*;

fn arb_acts(max: u32, len: usize) -> impl Strategy<Value = ActivitySet> {
    prop::collection::vec(0..max, 1..=len).prop_map(ActivitySet::from_raw)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// TAS never dismisses an id the trajectory contains, under any M.
    #[test]
    fn sketch_has_no_false_dismissals(acts in arb_acts(500, 20), m in 1usize..8) {
        let s = Sketch::build(&acts, m);
        for id in acts.iter() {
            prop_assert!(s.contains(id));
        }
        prop_assert!(s.covers(&acts));
        prop_assert!(s.intervals().len() <= m.max(acts.len()));
    }

    /// The gap-split partition minimises total width (exhaustive check
    /// against all split choices on small inputs).
    #[test]
    fn sketch_partition_is_optimal(acts in arb_acts(200, 9), m in 1usize..5) {
        let fast = Sketch::build(&acts, m).total_width();
        let ids: Vec<u32> = acts.iter().map(|a| a.0).collect();
        if ids.len() <= m {
            prop_assert_eq!(fast, 0);
            return Ok(());
        }
        let gaps = ids.len() - 1;
        let mut best = u64::MAX;
        for mask in 0u32..(1 << gaps) {
            if (mask.count_ones() as usize) != m - 1 {
                continue;
            }
            let mut width = 0u64;
            let mut start = 0usize;
            for g in 0..gaps {
                if mask & (1 << g) != 0 {
                    width += u64::from(ids[g] - ids[start]);
                    start = g + 1;
                }
            }
            width += u64::from(ids[ids.len() - 1] - ids[start]);
            best = best.min(width);
        }
        prop_assert_eq!(fast, best);
    }

    /// Sketch intervals are disjoint and ascending.
    #[test]
    fn sketch_intervals_well_formed(acts in arb_acts(300, 15), m in 1usize..6) {
        let s = Sketch::build(&acts, m);
        let iv = s.intervals();
        prop_assert!(iv.iter().all(|&(lo, hi)| lo <= hi));
        prop_assert!(iv.windows(2).all(|w| w[0].1 < w[1].0));
    }
}

/// Random micro-dataset strategy: up to 12 trajectories of up to 6
/// points over a 20-activity vocabulary in a 10 km plane.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    let point = (
        0.0f64..10.0,
        0.0f64..10.0,
        prop::collection::vec(0u32..20, 1..3),
    );
    let traj = prop::collection::vec(point, 1..6);
    prop::collection::vec(traj, 1..12).prop_map(|trs| {
        let mut b = DatasetBuilder::new().without_frequency_ranking();
        for i in 0..20 {
            b.observe_activity(&format!("a{i}"));
        }
        for tr in trs {
            let pts = tr
                .into_iter()
                .map(|(x, y, acts)| {
                    TrajectoryPoint::new(Point::new(x, y), ActivitySet::from_raw(acts))
                })
                .collect();
            b.push_trajectory(pts);
        }
        b.finish().expect("valid dataset")
    })
}

fn arb_query() -> impl Strategy<Value = Query> {
    prop::collection::vec(
        (
            0.0f64..10.0,
            0.0f64..10.0,
            prop::collection::vec(0u32..20, 1..3),
        ),
        1..4,
    )
    .prop_map(|pts| {
        Query::new(
            pts.into_iter()
                .map(|(x, y, acts)| QueryPoint::new(Point::new(x, y), ActivitySet::from_raw(acts)))
                .collect(),
        )
        .expect("non-empty query points")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// GAT (under assorted configurations) equals the exhaustive scan
    /// on arbitrary micro-datasets — exercising the Algorithm-2 bound,
    /// the TAS filter and the termination logic together.
    #[test]
    fn gat_equals_scan_on_random_data(
        dataset in arb_dataset(),
        query in arb_query(),
        k in 1usize..6,
        grid_level in 2u8..7,
        lambda in 1usize..9,
        lb_cells in 1usize..6,
    ) {
        let idx = GatIndex::build_with(
            &dataset,
            GatConfig {
                grid_level,
                memory_level: grid_level.min(3),
                lambda,
                lb_cells,
                ..GatConfig::default()
            },
        )
        .expect("index builds");
        let got = atsq_gat::atsq(&idx, &dataset, &query, k);
        let mut want = Vec::new();
        for tr in dataset.trajectories() {
            if let Some(d) = min_match_distance(&query, &tr.points) {
                want.push(QueryResult::new(tr.id, d));
            }
        }
        let want = rank_top_k(want, k);
        prop_assert_eq!(&got, &want, "grid={} λ={} m={}", grid_level, lambda, lb_cells);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The paged APL is a pure storage substitution: GAT over pages
    /// (any page size / pool size) returns exactly what the in-memory
    /// backend returns, for ATSQ and OATSQ alike.
    #[test]
    fn paged_backend_is_transparent(
        dataset in arb_dataset(),
        query in arb_query(),
        k in 1usize..6,
        page_size in prop::sample::select(vec![64usize, 128, 512, 4096]),
        pool_frames in 1usize..5,
    ) {
        use atsq_gat::{PagedAplConfig, PagedBacking};
        let config = GatConfig {
            grid_level: 4,
            memory_level: 3,
            ..GatConfig::default()
        };
        let mem = GatIndex::build_with(&dataset, config).expect("memory index");
        let paged = GatIndex::build_paged(
            &dataset,
            config,
            &PagedAplConfig {
                page_size,
                pool_frames,
                backing: PagedBacking::Memory,
            },
        )
        .expect("paged index");
        prop_assert_eq!(
            atsq_gat::atsq(&paged, &dataset, &query, k),
            atsq_gat::atsq(&mem, &dataset, &query, k),
            "ATSQ diverged (page={}, frames={})", page_size, pool_frames
        );
        prop_assert_eq!(
            atsq_gat::oatsq(&paged, &dataset, &query, k),
            atsq_gat::oatsq(&mem, &dataset, &query, k),
            "OATSQ diverged (page={}, frames={})", page_size, pool_frames
        );
    }

    /// Posting-list blobs roundtrip through the byte codec for
    /// arbitrary trajectories.
    #[test]
    fn postings_codec_roundtrips(
        points in prop::collection::vec(
            (0.0f64..10.0, prop::collection::vec(0u32..50, 0..4)),
            1..10,
        ),
    ) {
        use atsq_gat::apl::TrajectoryPostings;
        use atsq_types::TrajectoryId;
        let tr = atsq_types::Trajectory::new(
            TrajectoryId(0),
            points
                .into_iter()
                .map(|(x, acts)| {
                    TrajectoryPoint::new(Point::new(x, 0.0), ActivitySet::from_raw(acts))
                })
                .collect(),
        );
        let p = TrajectoryPostings::build(&tr);
        let q = TrajectoryPostings::from_bytes(&p.to_bytes()).expect("decodes");
        for a in 0..50u32 {
            let a = atsq_types::ActivityId(a);
            prop_assert_eq!(p.postings(a), q.postings(a));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sharding is a pure execution strategy: for any shard count,
    /// either partitioner, and all four query kinds, the sharded
    /// engine returns exactly the single-index answer — ids,
    /// distances and tie-breaks included. This is the Theorem-level
    /// guarantee behind serving one logical index from S parallel
    /// shards with a shared k-th-best bound.
    #[test]
    fn sharded_engine_equals_single_index(
        dataset in arb_dataset(),
        query in arb_query(),
        k in 1usize..6,
        tau in 0.0f64..30.0,
        shards in prop::sample::select(vec![1usize, 2, 3, 7]),
        spatial in proptest::arbitrary::any::<bool>(),
    ) {
        use atsq_gat::{Partition, ShardedEngine};
        let partition = if spatial { Partition::Spatial } else { Partition::Hash };
        let single = GatIndex::build(&dataset).expect("single index");
        // Both execution strategies must agree with the single index:
        // the default single-pass shared traversal (one router pass,
        // candidates verified by their owner shard) and the legacy
        // per-shard traversal with the shared k-th-best bound.
        let engine = ShardedEngine::build(&dataset, shards, partition)
            .expect("sharded engine");
        prop_assert!(engine.shared_traversal(), "shared traversal is the default");
        let fallback = ShardedEngine::build(&dataset, shards, partition)
            .expect("sharded engine")
            .with_shared_traversal(false);
        let atsq_want = atsq_gat::atsq(&single, &dataset, &query, k);
        let oatsq_want = atsq_gat::oatsq(&single, &dataset, &query, k);
        let atsq_range_want = atsq_gat::atsq_range(&single, &dataset, &query, tau);
        let oatsq_range_want = atsq_gat::oatsq_range(&single, &dataset, &query, tau);
        for (engine, path) in [(&engine, "shared"), (&fallback, "per-shard")] {
            prop_assert_eq!(
                engine.atsq(&query, k),
                atsq_want.clone(),
                "ATSQ diverged (S={}, {}, {})", shards, partition, path
            );
            prop_assert_eq!(
                engine.oatsq(&query, k),
                oatsq_want.clone(),
                "OATSQ diverged (S={}, {}, {})", shards, partition, path
            );
            prop_assert_eq!(
                engine.atsq_range(&query, tau),
                atsq_range_want.clone(),
                "range ATSQ diverged (S={}, {}, {})", shards, partition, path
            );
            prop_assert_eq!(
                engine.oatsq_range(&query, tau),
                oatsq_range_want.clone(),
                "range OATSQ diverged (S={}, {}, {})", shards, partition, path
            );
        }
    }
}
