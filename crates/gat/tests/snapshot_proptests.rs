//! Property tests for the snapshot subsystem (the PR's acceptance
//! criterion): an index loaded from a snapshot answers **all four
//! query kinds identically** to the freshly built index it was
//! serialized from — single-index and sharded (S ∈ {1, 2, 4}), across
//! random micro-datasets, queries, `k` and `tau`.

use atsq_gat::snapshot::{read_index, write_index, IndexCache};
use atsq_gat::{GatConfig, GatIndex, Partition, ShardedEngine};
use atsq_types::{ActivitySet, Dataset, DatasetBuilder, Point, Query, QueryPoint, TrajectoryPoint};
use proptest::prelude::*;

/// Random micro-dataset: up to 14 trajectories of up to 6 points over
/// a 20-activity vocabulary in a 10 km plane.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    let point = (
        0.0f64..10.0,
        0.0f64..10.0,
        prop::collection::vec(0u32..20, 1..3),
    );
    let traj = prop::collection::vec(point, 1..6);
    prop::collection::vec(traj, 1..14).prop_map(|trs| {
        let mut b = DatasetBuilder::new().without_frequency_ranking();
        for i in 0..20 {
            b.observe_activity(&format!("a{i}"));
        }
        for tr in trs {
            let pts = tr
                .into_iter()
                .map(|(x, y, acts)| {
                    TrajectoryPoint::new(Point::new(x, y), ActivitySet::from_raw(acts))
                })
                .collect();
            b.push_trajectory(pts);
        }
        b.finish().expect("valid dataset")
    })
}

fn arb_query() -> impl Strategy<Value = Query> {
    prop::collection::vec(
        (
            0.0f64..10.0,
            0.0f64..10.0,
            prop::collection::vec(0u32..20, 1..3),
        ),
        1..4,
    )
    .prop_map(|pts| {
        Query::new(
            pts.into_iter()
                .map(|(x, y, acts)| QueryPoint::new(Point::new(x, y), ActivitySet::from_raw(acts)))
                .collect(),
        )
        .expect("non-empty query points")
    })
}

fn small_config(grid_level: u8) -> GatConfig {
    GatConfig {
        grid_level,
        memory_level: grid_level.min(3),
        ..GatConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Single index: snapshot → load answers every query kind exactly
    /// like the built index, for arbitrary data, queries, k and tau.
    #[test]
    fn loaded_index_answers_identically(
        dataset in arb_dataset(),
        query in arb_query(),
        k in 1usize..7,
        tau in 0.0f64..15.0,
        grid_level in 2u8..7,
    ) {
        use atsq_gat::{atsq, atsq_range, oatsq, oatsq_range};
        let built = GatIndex::build_with(&dataset, small_config(grid_level)).expect("build");
        let bytes = write_index(&built, &dataset).expect("serialize");
        let loaded = read_index(&bytes, &dataset).expect("load");
        prop_assert_eq!(
            atsq(&built, &dataset, &query, k),
            atsq(&loaded, &dataset, &query, k)
        );
        prop_assert_eq!(
            oatsq(&built, &dataset, &query, k),
            oatsq(&loaded, &dataset, &query, k)
        );
        prop_assert_eq!(
            atsq_range(&built, &dataset, &query, tau),
            atsq_range(&loaded, &dataset, &query, tau)
        );
        prop_assert_eq!(
            oatsq_range(&built, &dataset, &query, tau),
            oatsq_range(&loaded, &dataset, &query, tau)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sharded engines restored from an index cache answer every query
    /// kind exactly like the engines they were saved from, for
    /// S ∈ {1, 2, 4} and both partitioners.
    #[test]
    fn loaded_sharded_engine_answers_identically(
        dataset in arb_dataset(),
        query in arb_query(),
        k in 1usize..7,
        tau in 0.0f64..15.0,
        spatial in any::<bool>(),
    ) {
        let partition = if spatial { Partition::Spatial } else { Partition::Hash };
        let dir = std::env::temp_dir().join(format!(
            "atsq-snapshot-proptest-{}",
            std::process::id()
        ));
        let cache = IndexCache::new(&dir);
        let config = small_config(4);
        for shards in [1usize, 2, 4] {
            let built = ShardedEngine::build_with(&dataset, shards, partition, config)
                .expect("build sharded");
            cache.save_sharded(&dataset, &built).expect("save");
            let loaded = cache
                .load_sharded(&dataset, shards, partition, &config)
                .expect("load sharded");
            prop_assert_eq!(built.atsq(&query, k), loaded.atsq(&query, k));
            prop_assert_eq!(built.oatsq(&query, k), loaded.oatsq(&query, k));
            prop_assert_eq!(built.atsq_range(&query, tau), loaded.atsq_range(&query, tau));
            prop_assert_eq!(
                built.oatsq_range(&query, tau),
                loaded.oatsq_range(&query, tau)
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
