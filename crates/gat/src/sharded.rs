//! A sharded, parallel GAT engine.
//!
//! Nothing in the Algorithm-1 argument requires a single index: the
//! Algorithm-2 lower bound is computed per index, and the `Dkmm`
//! pruning bound only ever *over*-estimates the final k-th best
//! distance. So the dataset can be split into `S` disjoint shards,
//! each with its own [`GatIndex`], and a top-k query can run on all
//! shards concurrently with a **shared k-th-best bound**
//! ([`SharedKthBound`]): as soon as any shard's local top-k heap
//! fills, its k-th distance tightens the termination test and the
//! OATSQ early exit of every other shard. The merged answer is
//! *exactly* the single-index answer (distances, ids and tie-breaks
//! included) because
//!
//! 1. each shard returns its own exact top-k, minus only trajectories
//!    strictly worse than the published bound — which is an upper
//!    bound on the global k-th best, so those can never appear in the
//!    global answer;
//! 2. partitioning preserves ascending global-id order within each
//!    shard, so per-shard heaps break distance ties exactly as the
//!    single index does; and
//! 3. the final [`rank_top_k`] merge re-ranks by `(distance, id)`.
//!
//! Range queries need no shared bound (`tau` is already global); they
//! simply run per shard in parallel and concatenate.

use crate::config::GatConfig;
use crate::index::GatIndex;
use crate::kernel::ScoreScratch;
use crate::router::RouterIndex;
use crate::search::{
    evaluate_atsq, evaluate_oatsq, try_atsq_range, try_atsq_with_bound, try_oatsq_range,
    try_oatsq_with_bound, Retrieval, SharedKthBound, TopK,
};
use crate::stats::IoSnapshot;
use atsq_grid::morton_encode;
use atsq_model::atomic::{AtomicU64, AtomicUsize, Ordering as AtomicOrdering};
use atsq_types::{rank_top_k, ActivitySet, Point};
use atsq_types::{Dataset, Error, Query, QueryResult, Result, TrajectoryId};
use std::time::Instant;

/// How trajectories are assigned to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Partition {
    /// Multiplicative hash of the trajectory id — uniform shard sizes,
    /// no locality. The safe default for unknown workloads.
    #[default]
    Hash,
    /// Z-order (Morton) sort of trajectory centroids, chunked into
    /// contiguous runs — spatially local shards, so queries with small
    /// diameters tend to fill one shard's top-k heap fast and the
    /// shared bound shuts the other shards down early.
    Spatial,
}

impl std::str::FromStr for Partition {
    type Err = Error;
    fn from_str(s: &str) -> Result<Self> {
        match s {
            "hash" => Ok(Partition::Hash),
            "spatial" => Ok(Partition::Spatial),
            other => Err(Error::InvalidConfig(format!(
                "partition must be `hash` or `spatial` (got `{other}`)"
            ))),
        }
    }
}

impl std::fmt::Display for Partition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Partition::Hash => "hash",
            Partition::Spatial => "spatial",
        })
    }
}

/// One shard: a sub-dataset with dense local ids, its GAT index, and
/// the local→global id mapping.
#[derive(Debug)]
struct Shard {
    dataset: Dataset,
    index: GatIndex,
    to_global: Vec<TrajectoryId>,
    /// Centre of the shard's bounding rectangle, for proximity-ordered
    /// search: starting at the shard nearest the query tightens the
    /// shared bound fastest, which is what lets far shards exit at
    /// their entry bound check.
    center: Point,
    /// Accumulated busy time of this shard's searches, in nanoseconds.
    /// The *maximum* across shards is a query's critical path — the
    /// latency a host with ≥ S cores observes; on fewer cores the
    /// wall-clock approaches the *sum* instead.
    busy_ns: AtomicU64,
}

/// `S` disjoint [`GatIndex`] shards searched in parallel behind the
/// same four query entry points as a single index. Unlike
/// [`GatIndex`], the sharded engine owns (copies of) its shard
/// datasets, because trajectory ids inside each shard are local.
#[derive(Debug)]
pub struct ShardedEngine {
    shards: Vec<Shard>,
    partition: Partition,
    total: usize,
    /// The engine's *base* configuration: the router traverses with
    /// it, snapshot filenames and manifests are keyed by it, and each
    /// shard derives its tuned configuration from it (see
    /// [`shard_config`]).
    config: GatConfig,
    /// Traversal-only index over the full dataset — the single-pass
    /// candidate source of the shared-traversal query path.
    router: RouterIndex,
    /// Global trajectory id → `(shard, local id)`; the deterministic
    /// routing table derived from the partitioner's membership lists.
    owner: Vec<(u32, u32)>,
    /// Whether queries run the single-pass shared traversal (default)
    /// or PR 2's per-shard retrieval cascade (kept for comparison
    /// benches and differential tests).
    shared_traversal: bool,
    /// Accumulated coordinator time in the shared traversal itself
    /// (retrieve + lower bound + routing), in nanoseconds — the
    /// serial section sharding cannot parallelize.
    router_busy_ns: AtomicU64,
}

/// The tuned configuration a shard over `shard_dataset` builds with:
/// the base config with grid depth matched to the shard's point count
/// ([`GatConfig::tuned_for_points`]). Deterministic, so the snapshot
/// loader recomputes it from the recomputed shard subset.
pub(crate) fn shard_config(base: &GatConfig, shard_dataset: &Dataset) -> GatConfig {
    let points: usize = shard_dataset
        .trajectories()
        .iter()
        .map(|t| t.points.len())
        .sum();
    base.tuned_for_points(points)
}

impl ShardedEngine {
    /// Builds `shards` shards with the default GAT configuration.
    pub fn build(dataset: &Dataset, shards: usize, partition: Partition) -> Result<Self> {
        Self::build_with(dataset, shards, partition, GatConfig::default())
    }

    /// Builds with an explicit base GAT configuration; each shard's
    /// index builds with the grid depth tuned to its own volume.
    pub fn build_with(
        dataset: &Dataset,
        shards: usize,
        partition: Partition,
        config: GatConfig,
    ) -> Result<Self> {
        Self::assemble(dataset, shards, partition, config, |_, shard_dataset| {
            GatIndex::build_with(shard_dataset, shard_config(&config, shard_dataset))
        })
    }

    /// The shard membership the given partitioner would produce — the
    /// deterministic function the snapshot loader re-runs to rebuild
    /// shard datasets without re-building their indexes.
    pub(crate) fn membership(
        dataset: &Dataset,
        shards: usize,
        partition: Partition,
    ) -> Vec<Vec<TrajectoryId>> {
        match partition {
            Partition::Hash => hash_assign(dataset.len(), shards),
            Partition::Spatial => spatial_assign(dataset, shards),
        }
    }

    /// Partitions the dataset and obtains each shard's index through
    /// `index_for` — a fresh build, or a snapshot load in
    /// [`crate::snapshot`].
    pub(crate) fn assemble(
        dataset: &Dataset,
        shards: usize,
        partition: Partition,
        config: GatConfig,
        mut index_for: impl FnMut(usize, &Dataset) -> Result<GatIndex>,
    ) -> Result<Self> {
        if shards == 0 {
            return Err(Error::InvalidConfig("shard count must be ≥ 1".into()));
        }
        let membership = Self::membership(dataset, shards, partition);
        let mut owner = vec![(0u32, 0u32); dataset.len()];
        for (s, members) in membership.iter().enumerate() {
            for (local, g) in members.iter().enumerate() {
                owner[g.index()] = (s as u32, local as u32);
            }
        }
        // The router is never persisted: it is a deterministic
        // function of (dataset, base config) and rebuilds in one
        // occurrence pass on snapshot loads too. Its grid depth is
        // tuned to the *full* dataset volume by the same rule shards
        // use — the router traversal is the serialized prefix of
        // every query's critical path, so an over-deep grid there
        // costs latency no shard parallelism can recover.
        let router = RouterIndex::build(dataset, shard_config(&config, dataset))?;
        let shards = membership
            .into_iter()
            .enumerate()
            .map(|(i, members)| {
                let shard_dataset = dataset.subset(&members);
                let b = shard_dataset.bounds();
                let center = Point::new((b.min.x + b.max.x) / 2.0, (b.min.y + b.max.y) / 2.0);
                let index = index_for(i, &shard_dataset)?;
                Ok(Shard {
                    dataset: shard_dataset,
                    index,
                    to_global: members,
                    center,
                    busy_ns: AtomicU64::new(0),
                })
            })
            .collect::<Result<Vec<Shard>>>()?;
        Ok(ShardedEngine {
            shards,
            partition,
            total: dataset.len(),
            config,
            router,
            owner,
            shared_traversal: true,
            // ordering: Relaxed everywhere this counter is touched —
            // advisory busy-time tally, no memory published through it.
            router_busy_ns: AtomicU64::new(0),
        })
    }

    /// Per-shard `(dataset, index)` views in shard order — what the
    /// snapshot writer serializes.
    pub(crate) fn shard_parts(&self) -> impl Iterator<Item = (&Dataset, &GatIndex)> {
        self.shards.iter().map(|s| (&s.dataset, &s.index))
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The base configuration the engine was built with. Shard indexes
    /// may run shallower tuned grids (see [`GatConfig::
    /// tuned_for_points`]); snapshots are keyed by this base config.
    pub fn base_config(&self) -> &GatConfig {
        &self.config
    }

    /// Per-shard tuned grid depths, in shard order.
    pub fn shard_grid_levels(&self) -> Vec<u8> {
        self.shards
            .iter()
            .map(|s| s.index.config().grid_level)
            .collect()
    }

    /// Toggles the single-pass shared traversal (on by default). With
    /// `false`, queries fall back to PR 2's per-shard retrieval
    /// cascade — ~S× the traversal work, kept for differential tests
    /// and before/after benches.
    pub fn with_shared_traversal(mut self, on: bool) -> Self {
        self.shared_traversal = on;
        self
    }

    /// Whether queries use the single-pass shared traversal.
    pub fn shared_traversal(&self) -> bool {
        self.shared_traversal
    }

    /// I/O counters of the shared-traversal router (cold HICL reads of
    /// the single-pass candidate generation). Engine totals are the
    /// sum of [`ShardedEngine::per_shard_stats`] and this snapshot.
    pub fn router_stats(&self) -> IoSnapshot {
        self.router.stats().snapshot()
    }

    /// Accumulated nanoseconds the coordinator spent inside the shared
    /// traversal (retrieve + lower bound + routing) — the serial
    /// section of a sharded query; per-shard verification time is in
    /// [`ShardedEngine::per_shard_busy_ns`].
    pub fn router_busy_ns(&self) -> u64 {
        // ordering: Relaxed — advisory busy-time tally (see field).
        self.router_busy_ns.load(AtomicOrdering::Relaxed)
    }

    /// Estimated resident bytes of the engine: each shard's dataset
    /// subset copy plus all of its index components. Feeds the
    /// multi-tenant memory-budget accountant.
    pub fn approx_resident_bytes(&self) -> usize {
        self.router.memory_bytes()
            + self
                .shards
                .iter()
                .map(|s| s.dataset.approx_bytes() + s.index.memory_report().total_bytes())
                .sum::<usize>()
    }

    /// Trajectories per shard, in shard order.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.dataset.len()).collect()
    }

    /// Total trajectories across all shards.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether the engine holds no trajectories.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The partitioner this engine was built with.
    pub fn partition(&self) -> Partition {
        self.partition
    }

    /// Per-shard I/O counter snapshots, in shard order — the raw
    /// material for per-shard candidate counts in serving stats.
    pub fn per_shard_stats(&self) -> Vec<IoSnapshot> {
        self.shards
            .iter()
            .map(|s| s.index.stats().snapshot())
            .collect()
    }

    /// Accumulated per-shard search busy time in nanoseconds, in shard
    /// order. `max` over shards is the critical path of the measured
    /// queries (the latency on a host with one core per shard); the
    /// `sum` is the single-core cost.
    pub fn per_shard_busy_ns(&self) -> Vec<u64> {
        self.shards
            .iter()
            // ordering: Relaxed — advisory busy-time tallies; readers
            // tolerate slightly stale per-shard values.
            .map(|s| s.busy_ns.load(AtomicOrdering::Relaxed))
            .collect()
    }

    /// Zeroes every shard's I/O counters, APL pool statistics and
    /// busy-time accounting — the sharded equivalent of the
    /// single-index full counter reset.
    pub fn reset_stats(&self) {
        for s in &self.shards {
            s.index.stats().reset();
            s.index.apl().reset_pool_stats();
            // ordering: Relaxed — advisory stat reset; callers quiesce
            // or tolerate increments from in-flight queries.
            s.busy_ns.store(0, AtomicOrdering::Relaxed);
        }
        self.router.stats().reset();
        // ordering: Relaxed — advisory stat reset (see above).
        self.router_busy_ns.store(0, AtomicOrdering::Relaxed);
    }

    /// Top-`k` ATSQ across all shards (exact; see module docs).
    pub fn try_atsq(&self, query: &Query, k: usize) -> Result<Vec<QueryResult>> {
        if self.shared_traversal {
            return self.shared_top_k(query, k, Verify::Atsq);
        }
        let bound = SharedKthBound::new();
        self.top_k(query, k, |shard, query| {
            try_atsq_with_bound(&shard.index, &shard.dataset, query, k, Some(&bound))
        })
    }

    /// Top-`k` OATSQ across all shards (exact; see module docs).
    pub fn try_oatsq(&self, query: &Query, k: usize) -> Result<Vec<QueryResult>> {
        if self.shared_traversal {
            return self.shared_top_k(query, k, Verify::Oatsq);
        }
        let bound = SharedKthBound::new();
        self.top_k(query, k, |shard, query| {
            try_oatsq_with_bound(&shard.index, &shard.dataset, query, k, Some(&bound))
        })
    }

    /// Range ATSQ: every trajectory with `Dmm ≤ tau`, across shards.
    pub fn try_atsq_range(&self, query: &Query, tau: f64) -> Result<Vec<QueryResult>> {
        if self.shared_traversal {
            return self.shared_range(query, tau, Verify::Atsq);
        }
        self.merged(query, usize::MAX, |shard, query| {
            try_atsq_range(&shard.index, &shard.dataset, query, tau)
        })
    }

    /// Range OATSQ: every trajectory with `Dmom ≤ tau`, across shards.
    pub fn try_oatsq_range(&self, query: &Query, tau: f64) -> Result<Vec<QueryResult>> {
        if self.shared_traversal {
            return self.shared_range(query, tau, Verify::Oatsq);
        }
        self.merged(query, usize::MAX, |shard, query| {
            try_oatsq_range(&shard.index, &shard.dataset, query, tau)
        })
    }

    /// Panicking convenience forms, mirroring the single-index API.
    pub fn atsq(&self, query: &Query, k: usize) -> Vec<QueryResult> {
        self.try_atsq(query, k).expect("sharded ATSQ failed")
    }

    /// See [`ShardedEngine::atsq`].
    pub fn oatsq(&self, query: &Query, k: usize) -> Vec<QueryResult> {
        self.try_oatsq(query, k).expect("sharded OATSQ failed")
    }

    /// See [`ShardedEngine::atsq`].
    pub fn atsq_range(&self, query: &Query, tau: f64) -> Vec<QueryResult> {
        self.try_atsq_range(query, tau)
            .expect("sharded range ATSQ failed")
    }

    /// See [`ShardedEngine::atsq`].
    pub fn oatsq_range(&self, query: &Query, tau: f64) -> Vec<QueryResult> {
        self.try_oatsq_range(query, tau)
            .expect("sharded range OATSQ failed")
    }

    fn top_k(
        &self,
        query: &Query,
        k: usize,
        run: impl Fn(&Shard, &Query) -> Result<Vec<QueryResult>> + Sync,
    ) -> Result<Vec<QueryResult>> {
        self.merged(query, k, run)
    }

    /// Runs `run` on every shard, remaps local ids to global ids, and
    /// re-ranks the union.
    ///
    /// Shards are visited in ascending distance from the query's
    /// centroid: the nearest shard is the likeliest to hold the final
    /// top-k, so searching it first publishes a tight shared bound
    /// that lets far shards exit at their entry check. With more than
    /// one core, `min(S, parallelism)` scoped workers drain the
    /// proximity-ordered shard list; on a single core the same order
    /// degenerates to the sequential cascade.
    fn merged(
        &self,
        query: &Query,
        k: usize,
        run: impl Fn(&Shard, &Query) -> Result<Vec<QueryResult>> + Sync,
    ) -> Result<Vec<QueryResult>> {
        let run = |i: usize, query: &Query| {
            let shard = &self.shards[i];
            let t0 = std::time::Instant::now();
            let out = run(shard, query);
            let ns = t0.elapsed().as_nanos() as u64;
            // ordering: Relaxed — independent busy-time tally; no
            // memory is published through it.
            shard.busy_ns.fetch_add(ns, AtomicOrdering::Relaxed);
            // Attribute the same busy time to the active per-query
            // counter context, keyed by shard (no-op outside a scope).
            atsq_obs::record_shard_busy(i, ns);
            out
        };
        let qc = centroid(query.points.iter().map(|p| p.loc));
        let mut order: Vec<usize> = (0..self.shards.len()).collect();
        order.sort_by(|&a, &b| {
            let da = qc.dist(&self.shards[a].center);
            let db = qc.dist(&self.shards[b].center);
            da.partial_cmp(&db)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let threads = std::thread::available_parallelism()
            .map_or(1, |n| n.get())
            .min(order.len());

        let mut per_shard: Vec<Option<Result<Vec<QueryResult>>>> =
            (0..self.shards.len()).map(|_| None).collect();
        if threads <= 1 || order.len() <= 1 {
            for &i in &order {
                per_shard[i] = Some(run(i, query));
            }
        } else {
            let slots: Vec<parking_lot::Mutex<Option<Result<Vec<QueryResult>>>>> = per_shard
                .iter()
                .map(|_| parking_lot::Mutex::new(None))
                .collect();
            let cursor = AtomicUsize::new(0);
            // The coordinating thread's per-query counter context (if
            // any) must follow the work onto the shard workers, or the
            // query's I/O counts would vanish into untracked threads.
            let sink = atsq_obs::current_sink();
            // `scope` joins every worker and re-raises panics before
            // returning, so every slot is filled on exit.
            std::thread::scope(|scope| {
                let (run, slots, order, cursor) = (&run, &slots, &order, &cursor);
                for _ in 0..threads {
                    let sink = sink.clone();
                    scope.spawn(move || {
                        let _ctx = sink.map(atsq_obs::CounterScope::enter);
                        loop {
                            // ordering: Relaxed — work-stealing
                            // cursor; atomicity hands each shard to
                            // one worker, results travel through the
                            // slot mutexes.
                            let next = cursor.fetch_add(1, AtomicOrdering::Relaxed);
                            let Some(&i) = order.get(next) else { break };
                            *slots[i].lock() = Some(run(i, query));
                        }
                    });
                }
            });
            for (slot, out) in slots.into_iter().zip(per_shard.iter_mut()) {
                *out = slot.into_inner();
            }
        }

        let mut all = Vec::new();
        for (shard, results) in self.shards.iter().zip(per_shard) {
            for r in results.expect("invariant: every shard index is visited by the order list")? {
                all.push(QueryResult::new(
                    shard.to_global[r.trajectory.index()],
                    r.distance,
                ));
            }
        }
        Ok(rank_top_k(all, k))
    }

    // -----------------------------------------------------------------
    // The single-pass shared-traversal query path
    // -----------------------------------------------------------------

    /// Verification workers a query may use: one per shard, capped by
    /// the host's parallelism.
    fn worker_threads(&self) -> usize {
        std::thread::available_parallelism()
            .map_or(1, |n| n.get())
            .min(self.shards.len())
    }

    /// Streams one retrieved batch to owner shards. Each candidate is
    /// charged to the shard that will verify it — `candidates_
    /// retrieved` keeps summing to the single traversal's output, now
    /// attributed by ownership instead of duplicated per shard.
    fn route(&self, batch: &[TrajectoryId], groups: &mut [Vec<(TrajectoryId, TrajectoryId)>]) {
        for &g in batch {
            let (s, local) = self.owner[g.index()];
            self.shards[s as usize].index.stats().record_candidate();
            groups[s as usize].push((TrajectoryId(local), g));
        }
    }

    /// Top-`k` over ONE router traversal: candidates stream to their
    /// owning shard for TAS/APL verification against a single global
    /// top-k heap.
    ///
    /// Exactness: the router retrieves the same candidate stream a
    /// single index would (same grid, HICL, ITL over the same data),
    /// each candidate's distance is computed from its full trajectory
    /// by the owner shard (bit-identical to the single-index math),
    /// and the bounded heap's content is order-independent (see
    /// [`TopK`]). The `dk` handed to OATSQ's early exit is always ≥
    /// the final k-th best, so only trajectories strictly outside the
    /// answer set are ever suppressed — the same argument that makes
    /// the [`SharedKthBound`] cascade exact, applied batch-locally.
    fn shared_top_k(&self, query: &Query, k: usize, kind: Verify) -> Result<Vec<QueryResult>> {
        self.shared_top_k_with_threads(query, k, kind, self.worker_threads())
    }

    fn shared_top_k_with_threads(
        &self,
        query: &Query,
        k: usize,
        kind: Verify,
        threads: usize,
    ) -> Result<Vec<QueryResult>> {
        if k == 0 || self.total == 0 {
            return Ok(Vec::new());
        }
        let all_acts = query.all_activities();
        let lambda = self.config.lambda;
        let mut router_ns = 0u64;
        let t0 = Instant::now();
        let mut retrieval = Retrieval::new(&self.router, self.total, query)?;
        router_ns += t0.elapsed().as_nanos() as u64;
        let mut top = TopK::new(k);
        let mut groups: Vec<Vec<(TrajectoryId, TrajectoryId)>> =
            self.shards.iter().map(|_| Vec::new()).collect();
        let mut scratches: Vec<ScoreScratch> =
            self.shards.iter().map(|_| ScoreScratch::new()).collect();

        loop {
            let t0 = Instant::now();
            let batch = retrieval.retrieve_batch(lambda)?;
            self.route(&batch, &mut groups);
            router_ns += t0.elapsed().as_nanos() as u64;

            let active = groups.iter().filter(|g| !g.is_empty()).count();
            if threads > 1 && active > 1 {
                // Fan out by shard; workers prune against the k-th
                // best as of the batch start (≥ the final k-th best,
                // so pruning stays strict — see the method docs).
                let found = self.verify_groups_parallel(
                    kind,
                    query,
                    &all_acts,
                    &groups,
                    &mut scratches,
                    top.kth(),
                )?;
                for (d, g) in found {
                    top.offer(d, g);
                }
            } else {
                // Sequential: verify in shard order against the live
                // k-th best, like the single-index inner loop.
                for (s, group) in groups.iter().enumerate() {
                    if group.is_empty() {
                        continue;
                    }
                    let shard = &self.shards[s];
                    let t0 = Instant::now();
                    for &(local, global) in group {
                        if let Some(d) = verify_one(
                            kind,
                            shard,
                            query,
                            &all_acts,
                            local,
                            top.kth(),
                            &mut scratches[s],
                        )? {
                            top.offer(d, global);
                        }
                    }
                    let ns = t0.elapsed().as_nanos() as u64;
                    // ordering: Relaxed — advisory busy-time tally.
                    shard.busy_ns.fetch_add(ns, AtomicOrdering::Relaxed);
                    atsq_obs::record_shard_busy(s, ns);
                }
            }
            for g in &mut groups {
                g.clear();
            }

            if retrieval.exhausted() {
                break;
            }
            let t0 = Instant::now();
            let dlb = retrieval.lower_bound()?;
            router_ns += t0.elapsed().as_nanos() as u64;
            if top.kth() < dlb {
                break;
            }
        }
        // ordering: Relaxed — advisory busy-time tally.
        self.router_busy_ns
            .fetch_add(router_ns, AtomicOrdering::Relaxed);
        Ok(rank_top_k(top.into_results(), k))
    }

    /// Range query over one router traversal (see
    /// [`ShardedEngine::shared_top_k`]); `tau` replaces the k-th-best
    /// bound everywhere, exactly as in the single-index range loop.
    fn shared_range(&self, query: &Query, tau: f64, kind: Verify) -> Result<Vec<QueryResult>> {
        let mut out = Vec::new();
        if self.total == 0 || tau < 0.0 {
            return Ok(out);
        }
        let threads = self.worker_threads();
        let all_acts = query.all_activities();
        let lambda = self.config.lambda;
        let mut router_ns = 0u64;
        let t0 = Instant::now();
        let mut retrieval = Retrieval::new(&self.router, self.total, query)?;
        router_ns += t0.elapsed().as_nanos() as u64;
        let mut groups: Vec<Vec<(TrajectoryId, TrajectoryId)>> =
            self.shards.iter().map(|_| Vec::new()).collect();
        let mut scratches: Vec<ScoreScratch> =
            self.shards.iter().map(|_| ScoreScratch::new()).collect();

        loop {
            let t0 = Instant::now();
            let batch = retrieval.retrieve_batch(lambda)?;
            self.route(&batch, &mut groups);
            router_ns += t0.elapsed().as_nanos() as u64;

            let active = groups.iter().filter(|g| !g.is_empty()).count();
            if threads > 1 && active > 1 {
                let found = self.verify_groups_parallel(
                    kind,
                    query,
                    &all_acts,
                    &groups,
                    &mut scratches,
                    tau,
                )?;
                for (d, g) in found {
                    if d <= tau {
                        out.push(QueryResult::new(g, d));
                    }
                }
            } else {
                for (s, group) in groups.iter().enumerate() {
                    if group.is_empty() {
                        continue;
                    }
                    let shard = &self.shards[s];
                    let t0 = Instant::now();
                    for &(local, global) in group {
                        if let Some(d) = verify_one(
                            kind,
                            shard,
                            query,
                            &all_acts,
                            local,
                            tau,
                            &mut scratches[s],
                        )? {
                            if d <= tau {
                                out.push(QueryResult::new(global, d));
                            }
                        }
                    }
                    let ns = t0.elapsed().as_nanos() as u64;
                    // ordering: Relaxed — advisory busy-time tally.
                    shard.busy_ns.fetch_add(ns, AtomicOrdering::Relaxed);
                    atsq_obs::record_shard_busy(s, ns);
                }
            }
            for g in &mut groups {
                g.clear();
            }

            if retrieval.exhausted() {
                break;
            }
            let t0 = Instant::now();
            let dlb = retrieval.lower_bound()?;
            router_ns += t0.elapsed().as_nanos() as u64;
            if dlb > tau {
                break;
            }
        }
        // ordering: Relaxed — advisory busy-time tally.
        self.router_busy_ns
            .fetch_add(router_ns, AtomicOrdering::Relaxed);
        Ok(rank_top_k(out, usize::MAX))
    }

    /// Verifies all shard groups of one batch on scoped worker
    /// threads, one per non-empty shard, pruning against `dk`.
    /// Results come back in shard order; panics propagate.
    fn verify_groups_parallel(
        &self,
        kind: Verify,
        query: &Query,
        all_acts: &ActivitySet,
        groups: &[Vec<(TrajectoryId, TrajectoryId)>],
        scratches: &mut [ScoreScratch],
        dk: f64,
    ) -> Result<Vec<(f64, TrajectoryId)>> {
        // The coordinating thread's per-query counter context (if any)
        // must follow the work onto the verification workers, or the
        // query's I/O counts would vanish into untracked threads.
        let sink = atsq_obs::current_sink();
        let mut results: Vec<Result<Vec<(f64, TrajectoryId)>>> = Vec::with_capacity(groups.len());
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(groups.len());
            for ((s, group), scratch) in groups.iter().enumerate().zip(scratches.iter_mut()) {
                if group.is_empty() {
                    continue;
                }
                let shard = &self.shards[s];
                let sink = sink.clone();
                handles.push(scope.spawn(move || {
                    let _ctx = sink.map(atsq_obs::CounterScope::enter);
                    let t0 = Instant::now();
                    let mut found = Vec::new();
                    let mut status = Ok(());
                    for &(local, global) in group {
                        match verify_one(kind, shard, query, all_acts, local, dk, scratch) {
                            Ok(Some(d)) => found.push((d, global)),
                            Ok(None) => {}
                            Err(e) => {
                                status = Err(e);
                                break;
                            }
                        }
                    }
                    let ns = t0.elapsed().as_nanos() as u64;
                    // ordering: Relaxed — advisory busy-time tally.
                    shard.busy_ns.fetch_add(ns, AtomicOrdering::Relaxed);
                    atsq_obs::record_shard_busy(s, ns);
                    status.map(|()| found)
                }));
            }
            for h in handles {
                match h.join() {
                    Ok(r) => results.push(r),
                    Err(p) => std::panic::resume_unwind(p),
                }
            }
        });
        let mut merged = Vec::new();
        for r in results {
            merged.extend(r?);
        }
        Ok(merged)
    }
}

/// Which verification pipeline the shared traversal drives per
/// candidate: ATSQ's `Dmm` (Algorithm 3 per query point) or OATSQ's
/// `Dmom` (MIB filter + Algorithm 4 with the `dk` early exit).
#[derive(Clone, Copy)]
enum Verify {
    Atsq,
    Oatsq,
}

/// One candidate's shard-local verification: TAS sketch → APL postings
/// → distance, on the owner shard's index and sub-dataset.
fn verify_one(
    kind: Verify,
    shard: &Shard,
    query: &Query,
    all_acts: &ActivitySet,
    local: TrajectoryId,
    dk: f64,
    scratch: &mut ScoreScratch,
) -> Result<Option<f64>> {
    match kind {
        Verify::Atsq => evaluate_atsq(
            &shard.index,
            &shard.dataset,
            query,
            all_acts,
            local,
            scratch,
        ),
        Verify::Oatsq => evaluate_oatsq(&shard.index, &shard.dataset, query, all_acts, local, dk),
    }
}

/// Assigns ids `0..n` to shards by multiplicative (Fibonacci) hashing.
/// Iterating ids in ascending order keeps every membership list
/// ascending, which the tie-break argument in the module docs needs.
fn hash_assign(n: usize, shards: usize) -> Vec<Vec<TrajectoryId>> {
    let mut out = vec![Vec::new(); shards];
    for id in 0..n as u32 {
        let h = (u64::from(id).wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 33;
        out[(h % shards as u64) as usize].push(TrajectoryId(id));
    }
    out
}

/// Assigns trajectories to shards by sorting centroids along the
/// Z-order curve and cutting the sorted run into `shards` nearly-equal
/// contiguous chunks. Each chunk is then re-sorted by id so local id
/// order matches global id order.
fn spatial_assign(dataset: &Dataset, shards: usize) -> Vec<Vec<TrajectoryId>> {
    let bounds = dataset.bounds();
    let norm = |v: f64, lo: f64, extent: f64| -> u32 {
        if extent <= 0.0 {
            return 0;
        }
        (((v - lo) / extent).clamp(0.0, 1.0) * f64::from(u16::MAX)) as u32
    };
    let mut keyed: Vec<(u64, TrajectoryId)> = dataset
        .trajectories()
        .iter()
        .map(|tr| {
            let c = centroid(tr.points.iter().map(|p| p.loc));
            let code = morton_encode(
                norm(c.x, bounds.min.x, bounds.width()),
                norm(c.y, bounds.min.y, bounds.height()),
            );
            (code, tr.id)
        })
        .collect();
    keyed.sort_unstable_by_key(|&(code, id)| (code, id));
    let n = keyed.len();
    let (base, extra) = (n / shards, n % shards);
    let mut out = Vec::with_capacity(shards);
    let mut cursor = 0usize;
    for s in 0..shards {
        let take = base + usize::from(s < extra);
        let mut members: Vec<TrajectoryId> = keyed[cursor..cursor + take]
            .iter()
            .map(|&(_, id)| id)
            .collect();
        members.sort_unstable();
        out.push(members);
        cursor += take;
    }
    out
}

fn centroid(points: impl Iterator<Item = Point>) -> Point {
    let (mut x, mut y, mut n) = (0.0f64, 0.0f64, 0usize);
    for p in points {
        x += p.x;
        y += p.y;
        n += 1;
    }
    if n == 0 {
        Point::new(0.0, 0.0)
    } else {
        Point::new(x / n as f64, y / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsq_types::{ActivitySet, DatasetBuilder, QueryPoint, TrajectoryPoint};

    fn dataset(n: usize) -> Dataset {
        let mut b = DatasetBuilder::new().without_frequency_ranking();
        for i in 0..8 {
            b.observe_activity(&format!("a{i}"));
        }
        // Deterministic pseudo-random layout with enough structure for
        // both partitioners to produce non-trivial shards.
        let mut x: u64 = 0x5DEECE66D;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..n {
            let len = 1 + (next() % 4) as usize;
            let pts = (0..len)
                .map(|_| {
                    let px = (next() % 1000) as f64 / 10.0;
                    let py = (next() % 1000) as f64 / 10.0;
                    let acts = ActivitySet::from_raw([(next() % 8) as u32, (next() % 8) as u32]);
                    TrajectoryPoint::new(Point::new(px, py), acts)
                })
                .collect();
            b.push_trajectory(pts);
        }
        b.finish().unwrap()
    }

    fn query(x: f64, y: f64) -> Query {
        Query::new(vec![
            QueryPoint::new(Point::new(x, y), ActivitySet::from_raw([0, 1])),
            QueryPoint::new(Point::new(x + 10.0, y), ActivitySet::from_raw([2])),
        ])
        .unwrap()
    }

    #[test]
    fn partitions_are_disjoint_and_complete() {
        let d = dataset(50);
        for partition in [Partition::Hash, Partition::Spatial] {
            for s in [1usize, 2, 3, 7] {
                let engine = ShardedEngine::build(&d, s, partition).unwrap();
                assert_eq!(engine.shard_count(), s);
                let sizes = engine.shard_sizes();
                assert_eq!(sizes.iter().sum::<usize>(), d.len());
                let mut seen = vec![false; d.len()];
                for shard in &engine.shards {
                    assert!(
                        shard.to_global.windows(2).all(|w| w[0] < w[1]),
                        "membership must ascend for deterministic tie-breaks"
                    );
                    for id in &shard.to_global {
                        assert!(!seen[id.index()], "{id} assigned twice");
                        seen[id.index()] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s));
            }
        }
        // Spatial chunks are balanced to within one trajectory.
        let engine = ShardedEngine::build(&d, 3, Partition::Spatial).unwrap();
        let sizes = engine.shard_sizes();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn sharded_matches_single_index_exactly() {
        let d = dataset(60);
        let single = GatIndex::build(&d).unwrap();
        for partition in [Partition::Hash, Partition::Spatial] {
            for s in [1usize, 2, 3, 7] {
                let engine = ShardedEngine::build(&d, s, partition).unwrap();
                for q in [query(10.0, 10.0), query(50.0, 80.0)] {
                    for k in [1usize, 3, 9] {
                        assert_eq!(
                            engine.atsq(&q, k),
                            crate::search::atsq(&single, &d, &q, k),
                            "ATSQ diverged (S={s}, {partition})"
                        );
                        assert_eq!(
                            engine.oatsq(&q, k),
                            crate::search::oatsq(&single, &d, &q, k),
                            "OATSQ diverged (S={s}, {partition})"
                        );
                    }
                    for tau in [5.0f64, 40.0] {
                        assert_eq!(
                            engine.atsq_range(&q, tau),
                            crate::search::atsq_range(&single, &d, &q, tau),
                            "range ATSQ diverged (S={s}, {partition})"
                        );
                        assert_eq!(
                            engine.oatsq_range(&q, tau),
                            crate::search::oatsq_range(&single, &d, &q, tau),
                            "range OATSQ diverged (S={s}, {partition})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn per_shard_stats_accumulate_and_reset() {
        let d = dataset(40);
        let engine = ShardedEngine::build(&d, 4, Partition::Hash).unwrap();
        let _ = engine.atsq(&query(20.0, 20.0), 5);
        let stats = engine.per_shard_stats();
        assert_eq!(stats.len(), 4);
        assert!(
            stats.iter().map(|s| s.candidates_retrieved).sum::<u64>() > 0,
            "{stats:?}"
        );
        assert!(
            engine.per_shard_busy_ns().iter().sum::<u64>() > 0,
            "searches must accrue busy time"
        );
        engine.reset_stats();
        assert!(engine
            .per_shard_stats()
            .iter()
            .all(|s| s.candidates_retrieved == 0));
        assert!(engine.per_shard_busy_ns().iter().all(|&ns| ns == 0));
    }

    #[test]
    fn zero_shards_is_rejected_and_empty_dataset_works() {
        let d = dataset(10);
        assert!(ShardedEngine::build(&d, 0, Partition::Hash).is_err());
        let empty = DatasetBuilder::new().finish().unwrap();
        let engine = ShardedEngine::build(&empty, 3, Partition::Spatial).unwrap();
        assert!(engine.is_empty());
        let q = Query::new(vec![QueryPoint::new(
            Point::new(0.0, 0.0),
            ActivitySet::from_raw([1]),
        )])
        .unwrap();
        assert!(engine.atsq(&q, 3).is_empty());
        assert!(engine.atsq_range(&q, 10.0).is_empty());
    }

    /// The scoped-thread verification fan-out must return exactly the
    /// sequential answer. `worker_threads()` collapses to 1 on a
    /// single-core host, so force the parallel path explicitly.
    #[test]
    fn parallel_verify_path_matches_single_index() {
        let d = dataset(60);
        let single = GatIndex::build(&d).unwrap();
        for partition in [Partition::Hash, Partition::Spatial] {
            let engine = ShardedEngine::build(&d, 4, partition).unwrap();
            for q in [query(10.0, 10.0), query(50.0, 80.0)] {
                for k in [1usize, 3, 9] {
                    assert_eq!(
                        engine
                            .shared_top_k_with_threads(&q, k, Verify::Atsq, 3)
                            .unwrap(),
                        crate::search::atsq(&single, &d, &q, k),
                        "parallel ATSQ diverged ({partition})"
                    );
                    assert_eq!(
                        engine
                            .shared_top_k_with_threads(&q, k, Verify::Oatsq, 3)
                            .unwrap(),
                        crate::search::oatsq(&single, &d, &q, k),
                        "parallel OATSQ diverged ({partition})"
                    );
                }
            }
        }
    }

    /// One shared traversal generates exactly the single-index
    /// candidate stream, attributed to owner shards: the per-shard
    /// candidate counts sum to the single index's count instead of
    /// the legacy ~S× duplication, and traversal work lands on the
    /// router.
    #[test]
    fn shared_traversal_work_sums_to_single_index() {
        let d = dataset(60);
        // The comparison index runs at the router's tuned depth so
        // both sides traverse the same grid geometry and the
        // candidate streams are comparable one-to-one.
        let single = GatIndex::build_with(&d, shard_config(&GatConfig::default(), &d)).unwrap();
        let engine = ShardedEngine::build(&d, 4, Partition::Hash).unwrap();
        let q = query(20.0, 20.0);
        single.stats().reset();
        let want = crate::search::atsq(&single, &d, &q, 5);
        let single_candidates = single.stats().snapshot().candidates_retrieved;

        engine.reset_stats();
        assert_eq!(engine.atsq(&q, 5), want);
        let sharded_candidates: u64 = engine
            .per_shard_stats()
            .iter()
            .map(|s| s.candidates_retrieved)
            .sum();
        assert_eq!(
            sharded_candidates, single_candidates,
            "shared traversal must not multiply candidate work"
        );
        assert_eq!(
            engine.router_stats().candidates_retrieved,
            0,
            "candidates are charged to owner shards, never the router"
        );
        assert!(
            engine.router_busy_ns() > 0,
            "the shared traversal must accrue router busy time"
        );
        engine.reset_stats();
        assert_eq!(engine.router_busy_ns(), 0);
        assert_eq!(engine.router_stats().hicl_cold_reads, 0);
    }

    /// Per-shard grid depth tracks shard volume: shards holding 1/S of
    /// the data build shallower grids than the base configuration. (The
    /// router is tuned by the same rule against the full dataset.)
    #[test]
    fn shard_grids_are_tuned_to_shard_volume() {
        let d = dataset(50);
        let engine = ShardedEngine::build(&d, 4, Partition::Hash).unwrap();
        let base = engine.base_config().grid_level;
        assert_eq!(base, GatConfig::default().grid_level);
        let levels = engine.shard_grid_levels();
        assert_eq!(levels.len(), 4);
        assert!(
            levels.iter().all(|&l| l < base),
            "small shards must tune below the base depth (got {levels:?})"
        );
        // The tuned depth is exactly what `shard_config` derives.
        for (shard_dataset, index) in engine.shard_parts() {
            assert_eq!(
                *index.config(),
                shard_config(engine.base_config(), shard_dataset)
            );
        }
    }
}
