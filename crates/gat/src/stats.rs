//! Simulated I/O accounting.
//!
//! The paper keeps HICL levels above `h` and all APL posting lists on
//! hard disk (§IV). This reproduction is entirely in-memory, but the
//! *pattern* of cold accesses still matters for interpreting the
//! experiments, so every access that the paper would serve from disk
//! increments a counter here. Counters are atomic so a shared index
//! can be queried concurrently.
//!
//! Each `record_*` additionally feeds the per-query counter context
//! of [`atsq_obs::counters`]: when the calling thread is inside a
//! [`atsq_obs::CounterScope`], the same event is attributed to that
//! one query's sink. Without an active scope the extra call is a
//! thread-local flag test, so the lifetime counters stay cheap.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cold-access counters for one GAT index.
#[derive(Debug, Default)]
pub struct IoStats {
    hicl_cold_reads: AtomicU64,
    apl_reads: AtomicU64,
    tas_checks: AtomicU64,
    tas_false_positives: AtomicU64,
    candidates_retrieved: AtomicU64,
    distances_computed: AtomicU64,
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a HICL access below the memory-resident levels.
    pub fn record_hicl_cold_read(&self) {
        self.hicl_cold_reads.fetch_add(1, Ordering::Relaxed);
        atsq_obs::record_cold_read();
    }

    /// Records one APL posting-list fetch.
    pub fn record_apl_read(&self) {
        self.apl_reads.fetch_add(1, Ordering::Relaxed);
        atsq_obs::record_apl_read();
    }

    /// Records one TAS containment check.
    pub fn record_tas_check(&self) {
        self.tas_checks.fetch_add(1, Ordering::Relaxed);
        atsq_obs::record_tas_check();
    }

    /// Records a TAS check that passed but was refuted by the APL.
    pub fn record_tas_false_positive(&self) {
        self.tas_false_positives.fetch_add(1, Ordering::Relaxed);
        atsq_obs::record_tas_false_positive();
    }

    /// Records one candidate trajectory entering the candidate set.
    pub fn record_candidate(&self) {
        self.candidates_retrieved.fetch_add(1, Ordering::Relaxed);
        atsq_obs::record_candidate();
    }

    /// Records one full match-distance evaluation.
    pub fn record_distance(&self) {
        self.distances_computed.fetch_add(1, Ordering::Relaxed);
        atsq_obs::record_distance_eval();
    }

    /// Snapshot of all counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            hicl_cold_reads: self.hicl_cold_reads.load(Ordering::Relaxed),
            apl_reads: self.apl_reads.load(Ordering::Relaxed),
            tas_checks: self.tas_checks.load(Ordering::Relaxed),
            tas_false_positives: self.tas_false_positives.load(Ordering::Relaxed),
            candidates_retrieved: self.candidates_retrieved.load(Ordering::Relaxed),
            distances_computed: self.distances_computed.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero.
    ///
    /// Counters are reset one at a time with relaxed stores, so a
    /// reset that races concurrent queries **tears**: a query in
    /// flight may land some of its increments before the reset and the
    /// rest after, leaving the aggregates approximate (e.g. a snapshot
    /// can briefly show `distances_computed > candidates_retrieved`).
    /// This is intentional — the hot-path counters stay wait-free, and
    /// derived consumers clamp instead of trusting cross-counter
    /// invariants (see `EngineCounters::prune_ratio` in `atsq-core`).
    /// Reset while the index is quiesced for exact aggregates; for
    /// exact *per-query* attribution under concurrency, use the scoped
    /// contexts in [`atsq_obs::counters`] instead of snapshot diffs.
    pub fn reset(&self) {
        self.hicl_cold_reads.store(0, Ordering::Relaxed);
        self.apl_reads.store(0, Ordering::Relaxed);
        self.tas_checks.store(0, Ordering::Relaxed);
        self.tas_false_positives.store(0, Ordering::Relaxed);
        self.candidates_retrieved.store(0, Ordering::Relaxed);
        self.distances_computed.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time copy of the [`IoStats`] counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    /// HICL accesses that the paper would serve from disk.
    pub hicl_cold_reads: u64,
    /// APL posting-list fetches.
    pub apl_reads: u64,
    /// TAS containment checks performed.
    pub tas_checks: u64,
    /// TAS passes later refuted by the APL (sketch false positives).
    pub tas_false_positives: u64,
    /// Candidate trajectories retrieved.
    pub candidates_retrieved: u64,
    /// Full match-distance evaluations.
    pub distances_computed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = IoStats::new();
        s.record_apl_read();
        s.record_apl_read();
        s.record_tas_check();
        s.record_tas_false_positive();
        s.record_hicl_cold_read();
        s.record_candidate();
        s.record_distance();
        let snap = s.snapshot();
        assert_eq!(snap.apl_reads, 2);
        assert_eq!(snap.tas_checks, 1);
        assert_eq!(snap.tas_false_positives, 1);
        assert_eq!(snap.hicl_cold_reads, 1);
        assert_eq!(snap.candidates_retrieved, 1);
        assert_eq!(snap.distances_computed, 1);
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
    }
}
