//! Simulated I/O accounting.
//!
//! The paper keeps HICL levels above `h` and all APL posting lists on
//! hard disk (§IV). This reproduction is entirely in-memory, but the
//! *pattern* of cold accesses still matters for interpreting the
//! experiments, so every access that the paper would serve from disk
//! increments a counter here. Counters are atomic so a shared index
//! can be queried concurrently.
//!
//! Each `record_*` additionally feeds the per-query counter context
//! of [`atsq_obs::counters`]: when the calling thread is inside a
//! [`atsq_obs::CounterScope`], the same event is attributed to that
//! one query's sink. Without an active scope the extra call is a
//! thread-local flag test, so the lifetime counters stay cheap.
//!
//! # Reset semantics
//!
//! The raw atomics are **monotone** — they are never stored to after
//! construction, only `fetch_add`ed. [`IoStats::reset`] instead
//! captures the current totals as a *baseline* under a mutex, and
//! [`IoStats::snapshot`] reports `raw - baseline` under the same
//! mutex. A reset therefore can never half-apply: every snapshot is
//! relative to exactly one coherent baseline, so cross-counter
//! relationships survive concurrent resets (up to the bounded
//! in-flight slack of queries mid-record). Hot-path recording stays
//! wait-free; only reset and snapshot serialize, and both are cold.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cold-access counters for one GAT index.
#[derive(Debug, Default)]
pub struct IoStats {
    hicl_cold_reads: AtomicU64,
    apl_reads: AtomicU64,
    tas_checks: AtomicU64,
    tas_false_positives: AtomicU64,
    candidates_retrieved: AtomicU64,
    distances_computed: AtomicU64,
    /// Raw totals at the last [`reset`](IoStats::reset). Snapshots
    /// subtract this, so reset never tears the monotone counters.
    baseline: Mutex<IoSnapshot>,
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a HICL access below the memory-resident levels.
    pub fn record_hicl_cold_read(&self) {
        // ordering: Relaxed — independent monotone event counter; no
        // other memory is published via these counters.
        self.hicl_cold_reads.fetch_add(1, Ordering::Relaxed);
        atsq_obs::record_cold_read();
    }

    /// Records one APL posting-list fetch.
    pub fn record_apl_read(&self) {
        // ordering: Relaxed — independent monotone event counter.
        self.apl_reads.fetch_add(1, Ordering::Relaxed);
        atsq_obs::record_apl_read();
    }

    /// Records one TAS containment check.
    pub fn record_tas_check(&self) {
        // ordering: Relaxed — independent monotone event counter.
        self.tas_checks.fetch_add(1, Ordering::Relaxed);
        atsq_obs::record_tas_check();
    }

    /// Records a TAS check that passed but was refuted by the APL.
    pub fn record_tas_false_positive(&self) {
        // ordering: Relaxed — independent monotone event counter.
        self.tas_false_positives.fetch_add(1, Ordering::Relaxed);
        atsq_obs::record_tas_false_positive();
    }

    /// Records one candidate trajectory entering the candidate set.
    pub fn record_candidate(&self) {
        // ordering: Relaxed — independent monotone event counter.
        self.candidates_retrieved.fetch_add(1, Ordering::Relaxed);
        atsq_obs::record_candidate();
    }

    /// Records one full match-distance evaluation.
    pub fn record_distance(&self) {
        // ordering: Relaxed — independent monotone event counter.
        self.distances_computed.fetch_add(1, Ordering::Relaxed);
        atsq_obs::record_distance_eval();
    }

    /// Raw monotone totals, never rebased by resets.
    fn raw_totals(&self) -> IoSnapshot {
        // coherence: these six Relaxed loads are not a point-in-time
        // cut — a concurrent query's increments may be partially
        // visible. The counters are independent monotone tallies and
        // every consumer works with per-counter values or clamped
        // ratios, so a skewed cut is harmless; resets are made
        // coherent by the baseline mutex in `snapshot`/`reset`, not
        // here.
        // ordering: Relaxed — see the coherence note above.
        IoSnapshot {
            hicl_cold_reads: self.hicl_cold_reads.load(Ordering::Relaxed),
            apl_reads: self.apl_reads.load(Ordering::Relaxed),
            tas_checks: self.tas_checks.load(Ordering::Relaxed),
            tas_false_positives: self.tas_false_positives.load(Ordering::Relaxed),
            candidates_retrieved: self.candidates_retrieved.load(Ordering::Relaxed),
            distances_computed: self.distances_computed.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of all counters since the last [`reset`](IoStats::reset).
    pub fn snapshot(&self) -> IoSnapshot {
        // Hold the baseline lock across the raw reads so a concurrent
        // reset cannot slide the baseline mid-snapshot: every snapshot
        // pairs one baseline with raw totals read no earlier than it.
        let baseline = self.baseline.lock();
        self.raw_totals().saturating_sub(&baseline)
    }

    /// Resets every counter to zero, coherently.
    ///
    /// The raw counters are monotone and never stored to; reset
    /// captures their current totals as the new baseline under the
    /// same mutex that [`snapshot`](IoStats::snapshot) reads it, so a
    /// reset racing concurrent queries applies atomically with respect
    /// to snapshots — it can no longer tear (half the counters zeroed,
    /// half not). Increments from queries still in flight simply land
    /// in the new epoch.
    pub fn reset(&self) {
        let mut baseline = self.baseline.lock();
        *baseline = self.raw_totals();
    }
}

/// Point-in-time copy of the [`IoStats`] counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    /// HICL accesses that the paper would serve from disk.
    pub hicl_cold_reads: u64,
    /// APL posting-list fetches.
    pub apl_reads: u64,
    /// TAS containment checks performed.
    pub tas_checks: u64,
    /// TAS passes later refuted by the APL (sketch false positives).
    pub tas_false_positives: u64,
    /// Candidate trajectories retrieved.
    pub candidates_retrieved: u64,
    /// Full match-distance evaluations.
    pub distances_computed: u64,
}

impl IoSnapshot {
    /// Component-wise saturating difference (`self - earlier`).
    fn saturating_sub(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            hicl_cold_reads: self.hicl_cold_reads.saturating_sub(earlier.hicl_cold_reads),
            apl_reads: self.apl_reads.saturating_sub(earlier.apl_reads),
            tas_checks: self.tas_checks.saturating_sub(earlier.tas_checks),
            tas_false_positives: self
                .tas_false_positives
                .saturating_sub(earlier.tas_false_positives),
            candidates_retrieved: self
                .candidates_retrieved
                .saturating_sub(earlier.candidates_retrieved),
            distances_computed: self
                .distances_computed
                .saturating_sub(earlier.distances_computed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = IoStats::new();
        s.record_apl_read();
        s.record_apl_read();
        s.record_tas_check();
        s.record_tas_false_positive();
        s.record_hicl_cold_read();
        s.record_candidate();
        s.record_distance();
        let snap = s.snapshot();
        assert_eq!(snap.apl_reads, 2);
        assert_eq!(snap.tas_checks, 1);
        assert_eq!(snap.tas_false_positives, 1);
        assert_eq!(snap.hicl_cold_reads, 1);
        assert_eq!(snap.candidates_retrieved, 1);
        assert_eq!(snap.distances_computed, 1);
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn counting_resumes_after_reset() {
        let s = IoStats::new();
        s.record_apl_read();
        s.reset();
        s.record_apl_read();
        s.record_apl_read();
        assert_eq!(s.snapshot().apl_reads, 2);
    }

    /// Regression test for the reset tear: with per-counter zeroing
    /// stores, a reset racing a writer could zero
    /// `candidates_retrieved` while leaving `distances_computed` with
    /// its full history, so a snapshot showed far more distances than
    /// candidates. With the monotone-counter + baseline scheme, any
    /// snapshot's skew is bounded by the writers' in-flight slack.
    #[test]
    fn concurrent_reset_cannot_tear_cross_counter_invariants() {
        const WRITERS: usize = 4;
        const ROUNDS: usize = 2_000;
        let s = IoStats::new();
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let writers: Vec<_> = (0..WRITERS)
                .map(|_| {
                    scope.spawn(|| {
                        for _ in 0..ROUNDS {
                            // The engine records a candidate before it
                            // evaluates that candidate's distance.
                            s.record_candidate();
                            s.record_distance();
                        }
                    })
                })
                .collect();
            scope.spawn(|| {
                // ordering: Relaxed — plain test stop flag; no data is
                // published through it.
                while !stop.load(Ordering::Relaxed) {
                    s.reset();
                    let snap = s.snapshot();
                    // Each writer can be at most one increment ahead
                    // (candidate landed, distance not yet). A torn
                    // reset breaks this by unbounded amounts.
                    assert!(
                        snap.distances_computed <= snap.candidates_retrieved + WRITERS as u64,
                        "snapshot tore: {} distances vs {} candidates",
                        snap.distances_computed,
                        snap.candidates_retrieved
                    );
                    std::hint::spin_loop();
                }
            });
            for w in writers {
                w.join().expect("writer thread");
            }
            // ordering: Relaxed — see the load above.
            stop.store(true, Ordering::Relaxed);
        });
    }
}
