//! APL — the Activity Posting List (§IV).
//!
//! For each trajectory and each activity it contains, the APL lists the
//! indexes of the trajectory points carrying the activity. The paper
//! stores this on disk "due to its high space requirement" and fetches
//! it only when a candidate's distance must be evaluated; callers of
//! [`TrajectoryPostings::postings`] are expected to charge an
//! [`crate::stats::IoStats::record_apl_read`] per access.

use atsq_types::{ActivityId, ActivitySet, Trajectory};
use std::collections::HashMap;

/// Posting lists of one trajectory: activity → ascending point indexes.
#[derive(Debug, Clone, Default)]
pub struct TrajectoryPostings {
    lists: HashMap<ActivityId, Vec<u32>>,
}

impl TrajectoryPostings {
    /// Builds the posting lists from a trajectory's points.
    pub fn build(tr: &Trajectory) -> Self {
        let mut lists: HashMap<ActivityId, Vec<u32>> = HashMap::new();
        for (idx, p) in tr.points.iter().enumerate() {
            for a in p.activities.iter() {
                lists.entry(a).or_default().push(idx as u32);
            }
        }
        TrajectoryPostings { lists }
    }

    /// Point indexes carrying `act` (ascending), empty when absent.
    pub fn postings(&self, act: ActivityId) -> &[u32] {
        self.lists.get(&act).map_or(&[][..], Vec::as_slice)
    }

    /// Whether the trajectory contains every activity of `wanted` —
    /// the exact validation that removes TAS false positives (§V-C).
    pub fn contains_all(&self, wanted: &ActivitySet) -> bool {
        wanted.iter().all(|a| self.lists.contains_key(&a))
    }

    /// Deduplicated union of the postings of all activities in
    /// `wanted` — the candidate point set `CP` of Algorithm 3, line 1.
    pub fn candidate_indexes(&self, wanted: &ActivitySet) -> Vec<u32> {
        let mut out = Vec::new();
        self.candidate_indexes_into(wanted, &mut out);
        out
    }

    /// [`TrajectoryPostings::candidate_indexes`] into a caller-owned
    /// buffer — the hot search loop reuses one buffer per query
    /// instead of allocating per candidate evaluation.
    pub fn candidate_indexes_into(&self, wanted: &ActivitySet, out: &mut Vec<u32>) {
        out.clear();
        for a in wanted.iter() {
            out.extend_from_slice(self.postings(a));
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Number of posting entries (memory accounting).
    pub fn posting_count(&self) -> usize {
        self.lists.values().map(Vec::len).sum()
    }

    /// The largest point index any posting references, `None` when the
    /// lists are empty (lists are ascending, so only last elements are
    /// inspected). The snapshot loader uses it to reject decoded
    /// postings pointing outside their trajectory.
    pub fn max_position(&self) -> Option<u32> {
        self.lists
            .values()
            .filter_map(|list| list.last())
            .copied()
            .max()
    }

    /// Serializes the posting lists for the paged backend:
    /// `[n_lists][per list: activity id, delta-coded indexes]`, lists
    /// ascending by activity id so the encoding is deterministic.
    pub fn to_bytes(&self) -> Vec<u8> {
        use atsq_storage::codec::{put_ascending, put_varint};
        let mut acts: Vec<ActivityId> = self.lists.keys().copied().collect();
        acts.sort_unstable();
        // Rough capacity: 1 byte/posting after delta coding + headers.
        let mut out = Vec::with_capacity(8 + self.posting_count() * 2);
        put_varint(&mut out, acts.len() as u32);
        for a in acts {
            put_varint(&mut out, a.0);
            put_ascending(&mut out, &self.lists[&a]);
        }
        out
    }

    /// Decodes [`TrajectoryPostings::to_bytes`] output. `None` on any
    /// truncation or inconsistency — the paged backend reports that as
    /// page corruption rather than serving partial postings.
    pub fn from_bytes(buf: &[u8]) -> Option<Self> {
        use atsq_storage::codec::{get_ascending, get_varint};
        let mut pos = 0;
        let n = get_varint(buf, &mut pos)? as usize;
        let mut lists = HashMap::with_capacity(n);
        for _ in 0..n {
            let act = ActivityId(get_varint(buf, &mut pos)?);
            let indexes = get_ascending(buf, &mut pos)?;
            lists.insert(act, indexes);
        }
        if pos != buf.len() {
            return None; // trailing garbage
        }
        Some(TrajectoryPostings { lists })
    }
}

/// The APL table: posting lists for every trajectory, by index.
#[derive(Debug, Clone, Default)]
pub struct Apl {
    per_trajectory: Vec<TrajectoryPostings>,
}

impl Apl {
    /// Builds posting lists for every trajectory.
    pub fn build<'a>(trajectories: impl IntoIterator<Item = &'a Trajectory>) -> Self {
        Apl {
            per_trajectory: trajectories
                .into_iter()
                .map(TrajectoryPostings::build)
                .collect(),
        }
    }

    /// The posting lists of trajectory `idx`.
    pub fn trajectory(&self, idx: usize) -> &TrajectoryPostings {
        &self.per_trajectory[idx]
    }

    /// Appends the posting lists of a newly added trajectory.
    pub fn push(&mut self, tr: &Trajectory) {
        self.per_trajectory.push(TrajectoryPostings::build(tr));
    }

    /// Number of trajectories covered.
    pub fn len(&self) -> usize {
        self.per_trajectory.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.per_trajectory.is_empty()
    }

    /// Serializes the table: one length-prefixed
    /// [`TrajectoryPostings::to_bytes`] record per trajectory, in
    /// index order.
    pub fn encode(&self, out: &mut Vec<u8>) {
        use atsq_storage::codec::put_varint;
        put_varint(out, self.per_trajectory.len() as u32);
        for t in &self.per_trajectory {
            let bytes = t.to_bytes();
            put_varint(out, bytes.len() as u32);
            out.extend_from_slice(&bytes);
        }
    }

    /// Decodes [`Apl::encode`] output from `buf[*pos..]`, advancing
    /// `pos`. `None` on truncation or a record that fails to decode.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Option<Self> {
        use atsq_storage::codec::get_varint;
        let n = get_varint(buf, pos)? as usize;
        if n > buf.len().saturating_sub(*pos) {
            return None; // each record costs at least one byte
        }
        let mut per_trajectory = Vec::with_capacity(n);
        for _ in 0..n {
            let len = get_varint(buf, pos)? as usize;
            let end = pos.checked_add(len)?;
            if end > buf.len() {
                return None;
            }
            per_trajectory.push(TrajectoryPostings::from_bytes(&buf[*pos..end])?);
            *pos = end;
        }
        Some(Apl { per_trajectory })
    }

    /// Simulated on-disk footprint: 4 bytes per posting plus 8 per
    /// (trajectory, activity) list header.
    pub fn disk_bytes(&self) -> usize {
        self.per_trajectory
            .iter()
            .map(|t| t.posting_count() * 4 + t.lists.len() * 8)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsq_types::{ActivitySet, Point, TrajectoryId, TrajectoryPoint};

    fn tr(points: Vec<(f64, &[u32])>) -> Trajectory {
        Trajectory::new(
            TrajectoryId(0),
            points
                .into_iter()
                .map(|(x, acts)| {
                    TrajectoryPoint::new(
                        Point::new(x, 0.0),
                        ActivitySet::from_raw(acts.iter().copied()),
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn postings_record_indexes() {
        let t = tr(vec![(0.0, &[1, 2]), (1.0, &[2]), (2.0, &[1])]);
        let p = TrajectoryPostings::build(&t);
        assert_eq!(p.postings(ActivityId(1)), &[0, 2]);
        assert_eq!(p.postings(ActivityId(2)), &[0, 1]);
        assert!(p.postings(ActivityId(3)).is_empty());
        assert_eq!(p.posting_count(), 4);
    }

    #[test]
    fn contains_all_is_exact() {
        let t = tr(vec![(0.0, &[1]), (1.0, &[2])]);
        let p = TrajectoryPostings::build(&t);
        assert!(p.contains_all(&ActivitySet::from_raw([1, 2])));
        assert!(!p.contains_all(&ActivitySet::from_raw([1, 3])));
        assert!(p.contains_all(&ActivitySet::new()));
    }

    #[test]
    fn candidate_indexes_union_dedup() {
        let t = tr(vec![(0.0, &[1, 2]), (1.0, &[2]), (2.0, &[3])]);
        let p = TrajectoryPostings::build(&t);
        assert_eq!(
            p.candidate_indexes(&ActivitySet::from_raw([1, 2])),
            vec![0, 1]
        );
        assert_eq!(
            p.candidate_indexes(&ActivitySet::from_raw([1, 2, 3])),
            vec![0, 1, 2]
        );
        assert!(p.candidate_indexes(&ActivitySet::from_raw([9])).is_empty());
    }

    #[test]
    fn postings_bytes_roundtrip() {
        let t = tr(vec![(0.0, &[1, 2]), (1.0, &[2]), (2.0, &[1, 7])]);
        let p = TrajectoryPostings::build(&t);
        let bytes = p.to_bytes();
        let q = TrajectoryPostings::from_bytes(&bytes).unwrap();
        for a in [1u32, 2, 7, 9] {
            assert_eq!(p.postings(ActivityId(a)), q.postings(ActivityId(a)));
        }
        assert_eq!(q.posting_count(), p.posting_count());
    }

    #[test]
    fn postings_bytes_are_deterministic() {
        let t = tr(vec![(0.0, &[5, 3, 1]), (1.0, &[3])]);
        let a = TrajectoryPostings::build(&t).to_bytes();
        let b = TrajectoryPostings::build(&t).to_bytes();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_postings_roundtrip() {
        let p = TrajectoryPostings::default();
        let q = TrajectoryPostings::from_bytes(&p.to_bytes()).unwrap();
        assert_eq!(q.posting_count(), 0);
    }

    #[test]
    fn from_bytes_rejects_truncation_and_garbage() {
        let t = tr(vec![(0.0, &[1, 2]), (1.0, &[2])]);
        let bytes = TrajectoryPostings::build(&t).to_bytes();
        assert!(TrajectoryPostings::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(TrajectoryPostings::from_bytes(&extra).is_none());
    }

    #[test]
    fn apl_encode_decode_roundtrip() {
        let t0 = tr(vec![(0.0, &[1, 2]), (1.0, &[2])]);
        let t1 = tr(vec![(0.0, &[7])]);
        let t2 = tr(vec![]);
        let apl = Apl::build([&t0, &t1, &t2]);
        let mut buf = Vec::new();
        apl.encode(&mut buf);
        let mut pos = 0;
        let q = Apl::decode(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        assert_eq!(q.len(), 3);
        for idx in 0..3 {
            for a in [1u32, 2, 7, 9] {
                assert_eq!(
                    apl.trajectory(idx).postings(ActivityId(a)),
                    q.trajectory(idx).postings(ActivityId(a)),
                    "trajectory {idx} activity {a}"
                );
            }
        }
        // Truncation fails cleanly at every prefix.
        for cut in 0..buf.len() {
            assert!(Apl::decode(&buf[..cut], &mut 0).is_none(), "cut={cut}");
        }
    }

    #[test]
    fn apl_table_indexes_by_trajectory() {
        let t0 = tr(vec![(0.0, &[1])]);
        let t1 = tr(vec![(0.0, &[2])]);
        let apl = Apl::build([&t0, &t1]);
        assert_eq!(apl.len(), 2);
        assert!(apl.trajectory(0).contains_all(&ActivitySet::from_raw([1])));
        assert!(apl.trajectory(1).contains_all(&ActivitySet::from_raw([2])));
        assert!(apl.disk_bytes() > 0);
    }
}
