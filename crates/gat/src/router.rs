//! The sharded engine's candidate router: a traversal-only index.
//!
//! PR 2's sharded engine ran the full §V-A grid/HICL traversal once
//! *per shard*, making S-shard total work ~S× one index. The router
//! collapses that: it holds only the components candidate retrieval
//! needs — grid geometry, HICL and leaf-cell ITL over the **whole**
//! dataset — so one [`crate::search::Retrieval`] pass generates every
//! candidate exactly as the single-index search would, and each
//! candidate streams to its owning shard for TAS/APL verification.
//!
//! The router is deliberately *not* persisted in snapshots: it is a
//! deterministic function of the dataset and the base configuration,
//! and rebuilding it costs one occurrence pass (no TAS sketches, no
//! APL posting lists — the expensive verification structures stay
//! per-shard).

use crate::config::GatConfig;
use crate::hicl::Hicl;
use crate::index::usable_region;
use crate::itl::Itl;
use crate::search::CandidateSource;
use crate::stats::IoStats;
use atsq_grid::{CellId, Grid};
use atsq_types::{ActivityId, ActivitySet, Dataset, Result, TrajectoryId};
use std::borrow::Cow;

/// Grid + HICL + ITL over the full dataset, with its own I/O counters.
///
/// Cold-read accounting mirrors [`crate::index::GatIndex`]: HICL
/// levels deeper than `memory_level` charge a cold fetch per access.
/// Traversal work a query spends here is attributed to the router's
/// [`IoStats`] (and through it to the per-query observability scope),
/// not to any shard.
#[derive(Debug)]
pub(crate) struct RouterIndex {
    config: GatConfig,
    grid: Grid,
    hicl: Hicl,
    itl: Itl,
    stats: IoStats,
}

impl RouterIndex {
    /// Builds the router from the full dataset — the same occurrence
    /// pass as a full index build, minus TAS and APL. The caller
    /// passes the (volume-tuned) traversal configuration; see
    /// [`crate::sharded::ShardedEngine::assemble`].
    pub(crate) fn build(dataset: &Dataset, config: GatConfig) -> Result<Self> {
        config.validate()?;
        let region = usable_region(dataset.bounds());
        let grid = Grid::new(region, config.grid_level);
        let d = config.grid_level;

        let mut hicl_occ = Vec::new();
        let mut itl_occ = Vec::new();
        for tr in dataset.trajectories() {
            for p in &tr.points {
                let cell = grid.leaf_cell_of(&p.loc);
                for a in p.activities.iter() {
                    hicl_occ.push((a, cell));
                    itl_occ.push((cell, a, tr.id));
                }
            }
        }

        Ok(RouterIndex {
            config,
            grid,
            hicl: Hicl::build(d, hicl_occ),
            itl: Itl::build(d, itl_occ),
            stats: IoStats::new(),
        })
    }

    /// The router's simulated-I/O counters (cold HICL reads during the
    /// shared traversal land here).
    pub(crate) fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Resident bytes of the router structures, for the engine's
    /// memory accounting.
    pub(crate) fn memory_bytes(&self) -> usize {
        self.hicl.memory_bytes(self.config.grid_level) + self.itl.memory_bytes()
    }
}

impl CandidateSource for RouterIndex {
    fn config(&self) -> &GatConfig {
        &self.config
    }

    fn grid(&self) -> &Grid {
        &self.grid
    }

    fn itl_trajectories(&self, cell: CellId, act: ActivityId) -> &[TrajectoryId] {
        self.itl.trajectories(cell, act)
    }

    fn cell_activities(&self, cell: CellId) -> Result<Option<Cow<'_, ActivitySet>>> {
        if cell.level > self.config.memory_level {
            self.stats.record_hicl_cold_read();
        }
        Ok(self.hicl.cell_activities(cell).map(Cow::Borrowed))
    }

    fn children_with_any(&self, cell: CellId, wanted: &ActivitySet) -> Result<Vec<CellId>> {
        if cell.level + 1 > self.config.memory_level {
            self.stats.record_hicl_cold_read();
        }
        Ok(self.hicl.children_with_any(cell, wanted))
    }
}
