//! Assembling the four GAT components from a dataset.

use crate::apl::{Apl, TrajectoryPostings};
use crate::config::GatConfig;
use crate::hicl::Hicl;
use crate::itl::Itl;
use crate::paged::{storage_err, AplStorage, PagedApl, PagedAplConfig, PagedColdHicl};
use crate::stats::IoStats;
use crate::tas::Tas;
use atsq_grid::{CellId, Grid};
use atsq_types::{ActivitySet, Dataset, Rect, Result};
use std::borrow::Cow;

/// The complete GAT index over one dataset.
///
/// The index stores no copy of the trajectory data; query functions
/// take the [`Dataset`] alongside the index (trajectory ids are stable
/// indexes into it).
#[derive(Debug)]
pub struct GatIndex {
    config: GatConfig,
    grid: Grid,
    hicl: Hicl,
    itl: Itl,
    tas: Tas,
    apl: AplStorage,
    /// Cold HICL levels on pages (paged builds only); the in-memory
    /// `hicl` keeps serving the hot levels and dynamic inserts.
    cold_hicl: Option<PagedColdHicl>,
    stats: IoStats,
}

impl GatIndex {
    /// Builds the index with the paper's default configuration.
    pub fn build(dataset: &Dataset) -> Result<Self> {
        Self::build_with(dataset, GatConfig::default())
    }

    /// Builds the index with an explicit configuration and the APL on
    /// real pages behind a buffer pool (see [`crate::paged`]). Queries
    /// return exactly what [`GatIndex::build_with`] returns; the
    /// difference is measured page traffic instead of simulated
    /// counters.
    pub fn build_paged(
        dataset: &Dataset,
        config: GatConfig,
        apl_config: &PagedAplConfig,
    ) -> Result<Self> {
        let mut index = Self::build_with(dataset, config)?;
        let paged =
            PagedApl::build(dataset.trajectories().iter(), apl_config).map_err(storage_err)?;
        index.apl = AplStorage::Paged(paged);
        // Page the cold HICL levels too (§IV keeps levels above h on
        // secondary storage alongside the APL).
        index.cold_hicl = PagedColdHicl::build(&index.hicl, config.memory_level, apl_config)
            .map_err(storage_err)?;
        Ok(index)
    }

    /// Replaces the APL storage wholesale. The storage must cover
    /// exactly the indexed trajectories, in order — used by tests (e.g.
    /// fault injection through a custom page store) and by callers that
    /// prebuilt a [`PagedApl`] over their own [`atsq_storage::PageStore`].
    ///
    /// # Panics
    /// Panics when `apl` covers a different number of trajectories than
    /// the index.
    pub fn with_apl_storage(mut self, apl: AplStorage) -> Self {
        assert_eq!(
            apl.len(),
            self.tas.len(),
            "replacement APL must cover the indexed trajectories"
        );
        self.apl = apl;
        self
    }

    /// Reassembles an index from deserialized components (the snapshot
    /// loader's constructor). The caller — [`crate::snapshot`] — has
    /// already validated cross-component consistency; the result uses
    /// the in-memory APL backend and fresh I/O counters.
    pub(crate) fn from_parts(
        config: GatConfig,
        grid: Grid,
        hicl: Hicl,
        itl: Itl,
        tas: Tas,
        apl: crate::apl::Apl,
    ) -> Self {
        GatIndex {
            config,
            grid,
            hicl,
            itl,
            tas,
            apl: AplStorage::Memory(apl),
            cold_hicl: None,
            stats: IoStats::new(),
        }
    }

    /// Builds the index with an explicit configuration.
    pub fn build_with(dataset: &Dataset, config: GatConfig) -> Result<Self> {
        config.validate()?;
        let region = usable_region(dataset.bounds());
        let grid = Grid::new(region, config.grid_level);
        let d = config.grid_level;

        // One pass over all points collects HICL and ITL occurrences.
        let mut hicl_occ = Vec::new();
        let mut itl_occ = Vec::new();
        for tr in dataset.trajectories() {
            for p in &tr.points {
                let cell = grid.leaf_cell_of(&p.loc);
                for a in p.activities.iter() {
                    hicl_occ.push((a, cell));
                    itl_occ.push((cell, a, tr.id));
                }
            }
        }

        let hicl = Hicl::build(d, hicl_occ);
        let itl = Itl::build(d, itl_occ);
        let tas = Tas::build(
            dataset.trajectories().iter().map(|tr| tr.all_activities()),
            config.tas_intervals,
        );
        let apl = AplStorage::Memory(Apl::build(dataset.trajectories().iter()));

        Ok(GatIndex {
            config,
            grid,
            hicl,
            itl,
            tas,
            apl,
            cold_hicl: None,
            stats: IoStats::new(),
        })
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &GatConfig {
        &self.config
    }

    /// The hierarchical grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The hierarchical inverted cell list.
    pub fn hicl(&self) -> &Hicl {
        &self.hicl
    }

    /// The inverted trajectory lists.
    pub fn itl(&self) -> &Itl {
        &self.itl
    }

    /// The trajectory activity sketches.
    pub fn tas(&self) -> &Tas {
        &self.tas
    }

    /// The activity posting lists (either backend).
    pub fn apl(&self) -> &AplStorage {
        &self.apl
    }

    /// Fetches the posting lists of trajectory `idx`, charging one APL
    /// read. Borrowed from memory or fetched through the buffer pool
    /// depending on the backend; fails only on a paged-storage error.
    pub fn postings(&self, idx: usize) -> Result<Cow<'_, TrajectoryPostings>> {
        self.stats.record_apl_read();
        self.apl.postings(idx).map_err(storage_err)
    }

    /// The simulated-I/O counters.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// The paged cold HICL levels (paged builds with
    /// `memory_level < grid_level` only).
    pub fn cold_hicl(&self) -> Option<&PagedColdHicl> {
        self.cold_hicl.as_ref()
    }

    /// Activities present in a cell, charging a cold read when the
    /// cell lies below the memory-resident HICL levels. With a paged
    /// build the cold read goes through the buffer pool for real and
    /// can therefore fail.
    pub fn cell_activities(&self, cell: CellId) -> Result<Option<Cow<'_, ActivitySet>>> {
        if cell.level > self.config.memory_level {
            self.stats.record_hicl_cold_read();
            if let Some(cold) = &self.cold_hicl {
                return cold
                    .cell_activities(cell)
                    .map(|o| o.map(Cow::Owned))
                    .map_err(storage_err);
            }
        }
        Ok(self.hicl.cell_activities(cell).map(Cow::Borrowed))
    }

    /// Children of `cell` containing any wanted activity, with cold
    /// accounting as in [`GatIndex::cell_activities`].
    pub fn children_with_any(&self, cell: CellId, wanted: &ActivitySet) -> Result<Vec<CellId>> {
        if cell.level + 1 > self.config.memory_level {
            self.stats.record_hicl_cold_read();
            if let Some(cold) = &self.cold_hicl {
                let mut out = Vec::new();
                for child in cell.children() {
                    if let Some(acts) = cold.cell_activities(child).map_err(storage_err)? {
                        if acts.intersects(wanted) {
                            out.push(child);
                        }
                    }
                }
                return Ok(out);
            }
        }
        Ok(self.hicl.children_with_any(cell, wanted))
    }

    /// Dynamically indexes one newly appended trajectory.
    ///
    /// Call after [`atsq_types::Dataset::append_trajectory`]; `tr` must
    /// be the trajectory at index `self.tas().len()` (appends must be
    /// indexed in order, exactly once). Points outside the original
    /// grid region are clamped into the border cells, so the index
    /// stays correct — though heavy out-of-region growth degrades
    /// pruning and warrants a rebuild.
    ///
    /// Fails when the paged APL backend cannot append the new posting
    /// record, and for indexes built with paged cold HICL levels
    /// (their page records are immutable — rebuild instead); the
    /// in-memory backend is infallible.
    pub fn insert_trajectory(&mut self, tr: &atsq_types::Trajectory) -> Result<()> {
        if self.cold_hicl.is_some() {
            return Err(atsq_types::Error::InvalidConfig(
                "dynamic inserts are not supported with paged cold HICL levels; \
                 rebuild the index"
                    .into(),
            ));
        }
        assert_eq!(
            tr.id.index(),
            self.tas.len(),
            "trajectories must be indexed in append order"
        );
        // Append the posting record first: if the paged backend fails,
        // no other component has been touched yet.
        self.apl.push(tr).map_err(storage_err)?;
        for p in &tr.points {
            let cell = self.grid.leaf_cell_of(&p.loc);
            for a in p.activities.iter() {
                self.hicl.insert(a, cell);
                self.itl.insert(cell, a, tr.id);
            }
        }
        self.tas
            .push(&tr.all_activities(), self.config.tas_intervals);
        Ok(())
    }

    /// Memory accounting for the Fig. 8 experiment.
    pub fn memory_report(&self) -> MemoryReport {
        let h = self.config.memory_level;
        let hicl_hot = self.hicl.memory_bytes(h);
        let hicl_total = self.hicl.memory_bytes(self.config.grid_level);
        MemoryReport {
            hicl_hot_bytes: hicl_hot,
            hicl_cold_bytes: hicl_total - hicl_hot,
            itl_bytes: self.itl.memory_bytes(),
            tas_bytes: self.tas.memory_bytes(),
            apl_disk_bytes: self.apl.disk_bytes(),
        }
    }
}

/// Byte-level footprint of the index components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryReport {
    /// HICL levels kept in main memory (`1..=h`).
    pub hicl_hot_bytes: usize,
    /// HICL levels the paper stores on disk (`h+1..=d`).
    pub hicl_cold_bytes: usize,
    /// ITL size (main memory).
    pub itl_bytes: usize,
    /// TAS size (main memory).
    pub tas_bytes: usize,
    /// APL size (disk in the paper).
    pub apl_disk_bytes: usize,
}

impl MemoryReport {
    /// Total main-memory footprint: hot HICL + ITL + TAS (the paper's
    /// Fig. 8 "memory cost" curve counts the resident components).
    pub fn main_memory_bytes(&self) -> usize {
        self.hicl_hot_bytes + self.itl_bytes + self.tas_bytes
    }

    /// Every component, including the ones the paper pages to disk
    /// (cold HICL levels, APL). This implementation keeps all of them
    /// resident, so this is what the multi-tenant memory budget charges
    /// per index.
    pub fn total_bytes(&self) -> usize {
        self.hicl_hot_bytes
            + self.hicl_cold_bytes
            + self.itl_bytes
            + self.tas_bytes
            + self.apl_disk_bytes
    }
}

/// Expands degenerate dataset bounds into a usable grid region: empty
/// datasets get a unit square, zero-extent axes get padding so cells
/// have positive area. Shared with the sharded engine's router index,
/// whose grid must tile the same region as a single index would.
pub(crate) fn usable_region(bounds: Rect) -> Rect {
    if bounds.is_empty() {
        return Rect::from_bounds(0.0, 0.0, 1.0, 1.0);
    }
    let pad_x = if bounds.width() > 0.0 { 0.0 } else { 0.5 };
    let pad_y = if bounds.height() > 0.0 { 0.0 } else { 0.5 };
    Rect::from_bounds(
        bounds.min.x - pad_x,
        bounds.min.y - pad_y,
        bounds.max.x + pad_x,
        bounds.max.y + pad_y,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsq_types::{ActivitySet, DatasetBuilder, Point, TrajectoryId, TrajectoryPoint};

    fn small_dataset() -> Dataset {
        let mut b = DatasetBuilder::new().without_frequency_ranking();
        let a0 = b.observe_activity("coffee");
        let a1 = b.observe_activity("art");
        let a2 = b.observe_activity("hike");
        b.push_trajectory(vec![
            TrajectoryPoint::new(Point::new(1.0, 1.0), ActivitySet::from_ids([a0])),
            TrajectoryPoint::new(Point::new(5.0, 5.0), ActivitySet::from_ids([a1])),
        ]);
        b.push_trajectory(vec![TrajectoryPoint::new(
            Point::new(9.0, 9.0),
            ActivitySet::from_ids([a2, a0]),
        )]);
        b.finish().unwrap()
    }

    #[test]
    fn build_populates_components() {
        let d = small_dataset();
        let idx = GatIndex::build_with(
            &d,
            GatConfig {
                grid_level: 4,
                memory_level: 3,
                ..GatConfig::default()
            },
        )
        .unwrap();
        assert_eq!(idx.tas().len(), 2);
        assert_eq!(idx.apl().len(), 2);
        assert_eq!(idx.hicl().activity_count(), 3);
        assert!(idx.itl().cell_count() >= 2);
        // The cell of (1,1) contains "coffee".
        let cell = idx.grid().leaf_cell_of(&Point::new(1.0, 1.0));
        assert_eq!(
            idx.itl().trajectories(cell, atsq_types::ActivityId(0)),
            &[TrajectoryId(0)]
        );
    }

    #[test]
    fn cold_reads_are_counted() {
        let d = small_dataset();
        let idx = GatIndex::build_with(
            &d,
            GatConfig {
                grid_level: 4,
                memory_level: 2,
                ..GatConfig::default()
            },
        )
        .unwrap();
        let leaf = idx.grid().leaf_cell_of(&Point::new(1.0, 1.0));
        let _ = idx.cell_activities(leaf); // level 4 > 2 -> cold
        let _ = idx.cell_activities(leaf.ancestor_at(1)); // hot
        assert_eq!(idx.stats().snapshot().hicl_cold_reads, 1);
    }

    #[test]
    fn memory_report_is_consistent() {
        let d = small_dataset();
        let idx = GatIndex::build_with(
            &d,
            GatConfig {
                grid_level: 4,
                memory_level: 2,
                ..GatConfig::default()
            },
        )
        .unwrap();
        let r = idx.memory_report();
        assert!(r.hicl_hot_bytes > 0);
        assert!(r.hicl_cold_bytes > 0);
        assert!(r.itl_bytes > 0);
        assert!(r.tas_bytes > 0);
        assert!(r.apl_disk_bytes > 0);
        assert_eq!(
            r.main_memory_bytes(),
            r.hicl_hot_bytes + r.itl_bytes + r.tas_bytes
        );
    }

    #[test]
    fn empty_dataset_builds() {
        let d = DatasetBuilder::new().finish().unwrap();
        let idx = GatIndex::build(&d).unwrap();
        assert_eq!(idx.tas().len(), 0);
        assert_eq!(idx.hicl().activity_count(), 0);
    }

    #[test]
    fn degenerate_bounds_are_padded() {
        let mut b = DatasetBuilder::new().without_frequency_ranking();
        let a = b.observe_activity("x");
        // All points identical: zero-extent bounds.
        b.push_trajectory(vec![TrajectoryPoint::new(
            Point::new(3.0, 3.0),
            ActivitySet::from_ids([a]),
        )]);
        let d = b.finish().unwrap();
        let idx = GatIndex::build(&d).unwrap();
        assert!(idx.grid().region().area() > 0.0);
    }
}
