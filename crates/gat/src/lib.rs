//! GAT — the Grid index for Activity Trajectories (§IV–§VI of the
//! paper), the primary contribution being reproduced.
//!
//! The index combines four components over a hierarchical grid:
//!
//! 1. **HICL** ([`hicl`]) — a hierarchical inverted cell list per
//!    activity: which cells at each grid level contain the activity.
//!    Drives the best-first descent of the candidate-retrieval loop.
//! 2. **ITL** ([`itl`]) — per leaf cell, an inverted list from activity
//!    to the trajectories that perform it inside the cell.
//! 3. **TAS** ([`tas`]) — a compact interval sketch of each
//!    trajectory's activity ids, used to discard candidates that cannot
//!    cover the query activities without touching the full data.
//! 4. **APL** ([`apl`]) — per trajectory, a posting list from activity
//!    to the point indexes carrying it; consulted only when a distance
//!    must actually be evaluated. The paper stores it on disk; this
//!    crate offers both an in-memory backend with simulated fetch
//!    counters ([`stats::IoStats`]) and a real paged backend behind a
//!    buffer pool ([`paged`]), selected at build time.
//!
//! [`search`] implements Algorithm 1 (the outer loop), the candidate
//! retrieval of §V-A, the tightened lower bound of Algorithm 2, and the
//! ATSQ / OATSQ query entry points.
//!
//! [`snapshot`] persists built indexes (single or sharded) as
//! versioned, checksummed binary snapshots keyed by the dataset's
//! content hash, so a server restart loads in milliseconds instead of
//! rebuilding every layer; see [`snapshot::IndexCache`].

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod apl;
pub mod config;
pub mod hicl;
pub mod index;
pub mod itl;
pub mod kernel;
pub mod paged;
mod router;
pub mod search;
pub mod sharded;
pub mod snapshot;
pub mod stats;
pub mod tas;

pub use config::GatConfig;
pub use index::{GatIndex, MemoryReport};
pub use kernel::{score_scalar, ScoreScratch};
pub use paged::{AplStorage, PagedApl, PagedAplConfig, PagedBacking};
pub use search::{
    atsq, atsq_range, oatsq, oatsq_range, try_atsq, try_atsq_range, try_atsq_range_with_bound,
    try_atsq_with_bound, try_oatsq, try_oatsq_range, try_oatsq_range_with_bound,
    try_oatsq_with_bound, SharedKthBound,
};
pub use sharded::{Partition, ShardedEngine};
pub use snapshot::{CacheOutcome, IndexCache, SnapshotInfo};
pub use stats::IoStats;
