//! TAS — the Trajectory Activity Sketch (§IV).
//!
//! Each trajectory's distinct activity ids are summarised by `M`
//! closed intervals chosen to minimise the summed interval widths.
//! Because ids are assigned by descending global frequency, the ids a
//! trajectory touches cluster near 0 and the sketch stays tight.
//!
//! The optimal partition (proved optimal in §IV) sorts the ids and
//! splits at the `M − 1` largest gaps. The sketch never produces false
//! dismissals — every id the trajectory contains lies inside some
//! interval — but may produce false positives, which the APL check
//! later removes.

use atsq_types::{ActivityId, ActivitySet};

/// Interval sketch of one trajectory's activity ids.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Sketch {
    /// Disjoint, ascending closed intervals `[lo, hi]`.
    intervals: Vec<(u32, u32)>,
}

impl Sketch {
    /// Builds the optimal `m`-interval sketch of `activities`.
    ///
    /// With fewer than `m` distinct ids the sketch is exact (one
    /// degenerate interval per id). An empty activity set produces an
    /// empty sketch that contains nothing.
    pub fn build(activities: &ActivitySet, m: usize) -> Self {
        assert!(m >= 1, "sketch needs at least one interval");
        let ids: Vec<u32> = activities.iter().map(|a| a.0).collect();
        if ids.is_empty() {
            return Sketch::default();
        }
        if ids.len() <= m {
            return Sketch {
                intervals: ids.iter().map(|&i| (i, i)).collect(),
            };
        }
        // ids are ascending (ActivitySet invariant). Find the m-1
        // largest gaps between consecutive ids; split there.
        let mut gaps: Vec<(u32, usize)> = ids
            .windows(2)
            .enumerate()
            .map(|(i, w)| (w[1] - w[0], i))
            .collect();
        gaps.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut split_after: Vec<usize> = gaps[..m - 1].iter().map(|&(_, i)| i).collect();
        split_after.sort_unstable();

        let mut intervals = Vec::with_capacity(m);
        let mut start = 0usize;
        for &cut in &split_after {
            intervals.push((ids[start], ids[cut]));
            start = cut + 1;
        }
        intervals.push((ids[start], ids[ids.len() - 1]));
        Sketch { intervals }
    }

    /// Whether the sketch's intervals cover `id`.
    pub fn contains(&self, id: ActivityId) -> bool {
        let v = id.0;
        // Binary search over disjoint ascending intervals.
        self.intervals
            .binary_search_by(|&(lo, hi)| {
                if v < lo {
                    std::cmp::Ordering::Greater
                } else if v > hi {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Whether the sketch covers *every* activity of `wanted` — the
    /// candidate-validation test of §V-C. `true` may be a false
    /// positive; `false` is always correct (no false dismissals).
    pub fn covers(&self, wanted: &ActivitySet) -> bool {
        wanted.iter().all(|a| self.contains(a))
    }

    /// The intervals (ascending, disjoint).
    pub fn intervals(&self) -> &[(u32, u32)] {
        &self.intervals
    }

    /// Summed interval widths `Σ |I_a|` — the quantity the partition
    /// minimises.
    pub fn total_width(&self) -> u64 {
        self.intervals
            .iter()
            .map(|&(lo, hi)| u64::from(hi - lo))
            .sum()
    }

    /// Sketch size in bytes (two u32 per interval, as the paper
    /// counts: "each interval only needs to keep two integers").
    pub fn memory_bytes(&self) -> usize {
        self.intervals.len() * 8
    }
}

/// The TAS table: one sketch per trajectory, indexed by trajectory id.
#[derive(Debug, Clone, Default)]
pub struct Tas {
    sketches: Vec<Sketch>,
}

impl Tas {
    /// Builds sketches for every trajectory's activity union.
    pub fn build(per_trajectory: impl IntoIterator<Item = ActivitySet>, m: usize) -> Self {
        Tas {
            sketches: per_trajectory
                .into_iter()
                .map(|acts| Sketch::build(&acts, m))
                .collect(),
        }
    }

    /// The sketch of trajectory `idx`.
    pub fn sketch(&self, idx: usize) -> &Sketch {
        &self.sketches[idx]
    }

    /// Appends the sketch of a newly added trajectory.
    pub fn push(&mut self, activities: &ActivitySet, m: usize) {
        self.sketches.push(Sketch::build(activities, m));
    }

    /// Number of sketches.
    pub fn len(&self) -> usize {
        self.sketches.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.sketches.is_empty()
    }

    /// Total memory across all sketches (`8 M N` bytes when every
    /// sketch uses its full `M` intervals).
    pub fn memory_bytes(&self) -> usize {
        self.sketches.iter().map(Sketch::memory_bytes).sum()
    }

    /// Serializes the table. Each sketch's intervals flatten to one
    /// non-decreasing `[lo1, hi1, lo2, hi2, ...]` run (intervals are
    /// disjoint and ascending), which delta-codes tightly.
    pub fn encode(&self, out: &mut Vec<u8>) {
        use atsq_storage::codec::{put_ascending, put_varint};
        put_varint(out, self.sketches.len() as u32);
        for s in &self.sketches {
            let flat: Vec<u32> = s.intervals.iter().flat_map(|&(lo, hi)| [lo, hi]).collect();
            put_ascending(out, &flat);
        }
    }

    /// Decodes [`Tas::encode`] output from `buf[*pos..]`, advancing
    /// `pos`. `None` on truncation or malformed intervals (odd flat
    /// length, overlapping intervals).
    pub fn decode(buf: &[u8], pos: &mut usize) -> Option<Self> {
        use atsq_storage::codec::{get_ascending, get_varint};
        let n = get_varint(buf, pos)? as usize;
        if n > buf.len().saturating_sub(*pos) {
            return None; // each sketch costs at least one byte
        }
        let mut sketches = Vec::with_capacity(n);
        for _ in 0..n {
            let flat = get_ascending(buf, pos)?;
            if flat.len() % 2 != 0 {
                return None;
            }
            let intervals: Vec<(u32, u32)> = flat.chunks(2).map(|c| (c[0], c[1])).collect();
            // Ascending flat run guarantees lo ≤ hi; disjointness needs
            // the strict step between hi and the next lo.
            if intervals.windows(2).any(|w| w[0].1 >= w[1].0) {
                return None;
            }
            sketches.push(Sketch { intervals });
        }
        Some(Tas { sketches })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch(ids: &[u32], m: usize) -> Sketch {
        Sketch::build(&ActivitySet::from_raw(ids.iter().copied()), m)
    }

    #[test]
    fn exact_when_few_ids() {
        let s = sketch(&[3, 9, 40], 4);
        assert_eq!(s.intervals(), &[(3, 3), (9, 9), (40, 40)]);
        assert_eq!(s.total_width(), 0);
        assert!(s.contains(ActivityId(9)));
        assert!(!s.contains(ActivityId(10)));
    }

    #[test]
    fn splits_at_largest_gaps() {
        // ids 1,2,3, 50,51, 100 with m=3: gaps 47 and 49 are largest.
        let s = sketch(&[1, 2, 3, 50, 51, 100], 3);
        assert_eq!(s.intervals(), &[(1, 3), (50, 51), (100, 100)]);
        assert_eq!(s.total_width(), 3);
    }

    #[test]
    fn paper_figure_two_example() {
        // Fig. 2(iii): Tr1 has activities {a..e} = ids {0..4} minus
        // none; sketch [a,b] ∪ [c,e] under M=2 when the largest gap is
        // between b and c. With ids 0,1,2,3,4 all gaps are 1; the
        // earliest gap wins deterministically: [0,0] ∪ [1,4].
        let s = sketch(&[0, 1, 2, 3, 4], 2);
        assert_eq!(s.intervals().len(), 2);
        assert!(s.covers(&ActivitySet::from_raw([0, 2, 4])));
    }

    #[test]
    fn no_false_dismissals() {
        let ids = [2u32, 7, 8, 30, 31, 90];
        let acts = ActivitySet::from_raw(ids);
        for m in 1..=6 {
            let s = Sketch::build(&acts, m);
            for &id in &ids {
                assert!(s.contains(ActivityId(id)), "m={m} dropped {id}");
            }
        }
    }

    #[test]
    fn false_positives_shrink_with_more_intervals() {
        let acts = ActivitySet::from_raw([0u32, 1, 50, 51, 100, 101]);
        let widths: Vec<u64> = (1..=6)
            .map(|m| Sketch::build(&acts, m).total_width())
            .collect();
        assert!(widths.windows(2).all(|w| w[0] >= w[1]), "{widths:?}");
        assert_eq!(widths[0], 101); // one interval [0,101]
        assert_eq!(widths[2], 3); // three tight pairs
    }

    #[test]
    fn covers_checks_all() {
        let s = sketch(&[1, 2, 3, 10], 2);
        assert!(s.covers(&ActivitySet::from_raw([1, 10])));
        assert!(s.covers(&ActivitySet::from_raw([2, 3])));
        assert!(!s.covers(&ActivitySet::from_raw([1, 7])));
        // Empty wanted set is trivially covered.
        assert!(s.covers(&ActivitySet::new()));
    }

    #[test]
    fn empty_sketch_contains_nothing() {
        let s = Sketch::build(&ActivitySet::new(), 4);
        assert!(!s.contains(ActivityId(0)));
        assert!(s.covers(&ActivitySet::new()));
        assert!(!s.covers(&ActivitySet::from_raw([1])));
        assert_eq!(s.memory_bytes(), 0);
    }

    #[test]
    fn tas_table() {
        let t = Tas::build(
            vec![
                ActivitySet::from_raw([1, 2]),
                ActivitySet::from_raw([5, 90]),
            ],
            2,
        );
        assert_eq!(t.len(), 2);
        assert!(t.sketch(0).covers(&ActivitySet::from_raw([1])));
        assert!(!t.sketch(1).covers(&ActivitySet::from_raw([1])));
        assert_eq!(t.memory_bytes(), 2 * 2 * 8);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let t = Tas::build(
            vec![
                ActivitySet::from_raw([1, 2, 3, 50, 51, 100]),
                ActivitySet::new(),
                ActivitySet::from_raw([7]),
            ],
            3,
        );
        let mut buf = Vec::new();
        t.encode(&mut buf);
        let mut pos = 0;
        let q = Tas::decode(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        assert_eq!(q.len(), t.len());
        for i in 0..t.len() {
            assert_eq!(t.sketch(i), q.sketch(i));
        }
        // Truncation fails cleanly at every prefix.
        for cut in 0..buf.len() {
            assert!(Tas::decode(&buf[..cut], &mut 0).is_none(), "cut={cut}");
        }
        // Overlapping intervals (hi ≥ next lo) are rejected: [1,5],[5,9].
        let mut bad = Vec::new();
        atsq_storage::codec::put_varint(&mut bad, 1);
        atsq_storage::codec::put_ascending(&mut bad, &[1, 5, 5, 9]);
        assert!(Tas::decode(&bad, &mut 0).is_none());
        // Odd flat length is rejected.
        let mut odd = Vec::new();
        atsq_storage::codec::put_varint(&mut odd, 1);
        atsq_storage::codec::put_ascending(&mut odd, &[1, 5, 9]);
        assert!(Tas::decode(&odd, &mut 0).is_none());
    }

    /// The paper's optimality claim: splitting at the largest gaps
    /// minimises total width. Check against exhaustive splits.
    #[test]
    fn partition_is_optimal_small() {
        let ids = [0u32, 3, 4, 9, 11, 20, 22];
        let acts = ActivitySet::from_raw(ids);
        for m in 1..=4usize {
            let fast = Sketch::build(&acts, m).total_width();
            // Exhaustive: choose m-1 split positions among 6 gaps.
            let mut best = u64::MAX;
            let gaps = 6usize;
            let combos = 1u32 << gaps;
            for mask in 0..combos {
                if (mask.count_ones() as usize) != m - 1 {
                    continue;
                }
                let mut width = 0u64;
                let mut start = 0usize;
                for g in 0..gaps {
                    if mask & (1 << g) != 0 {
                        width += u64::from(ids[g] - ids[start]);
                        start = g + 1;
                    }
                }
                width += u64::from(ids[6] - ids[start]);
                best = best.min(width);
            }
            assert_eq!(fast, best, "m={m}");
        }
    }
}
