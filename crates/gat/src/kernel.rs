//! SoA distance kernels for candidate scoring.
//!
//! Algorithm 3 consumes candidate points as `(dist, cover-mask)` pairs
//! sorted ascending by distance. The straightforward AoS formulation
//! ([`score_scalar`]) interleaves a hash-map posting lookup, a distance
//! and a mask per candidate point, which defeats autovectorization and
//! allocates per call. The batch formulation ([`ScoreScratch::score`])
//! first *gathers* the candidate coordinates and activity masks into
//! contiguous structure-of-arrays buffers — dropping zero-mask points
//! at the gather so they cost no arithmetic — then computes all
//! distances in one tight dependency-free loop over those arrays
//! (which the compiler can unroll and vectorize), and sorts. Batches
//! under [`SOA_MIN_BATCH`] take a one-pass scalar fill instead, where
//! the column passes cost more than they save. All buffers live in a
//! reusable [`ScoreScratch`], so steady-state scoring performs no
//! allocation on either path.
//!
//! Exactness: the batch loop evaluates `sqrt(dx·dx + dy·dy)` — the
//! same operations in the same order as [`Point::dist`] — so every
//! distance is bit-identical to the scalar reference. Dropping
//! zero-mask points is semantically neutral: `IncrementalCover::
//! add_point` ignores points covering no query activity, and the
//! early-termination test of `dmpm_from_sorted` compares against a
//! distance that only grows along the sorted order, so removing
//! no-op entries never changes the returned value. Both paths sort
//! with a *stable* comparison on the distance alone, preserving the
//! ascending point-index order of the APL union among ties.
//!
//! (Points in this reproduction carry planar x/y kilometres and an
//! activity set — there is no time dimension to batch.)

use atsq_matching::point_match::{CandidatePoint, QueryMask};
use atsq_types::{Point, TrajectoryPoint};
use std::cmp::Ordering;

/// Candidate count below which the one-pass scalar fill beats the SoA
/// column passes (measured on the NY-like workload, where the median
/// APL union is ~10 points): under this size the batch's fixed
/// clear/reserve work dominates and there are too few elements to
/// fill vector lanes.
const SOA_MIN_BATCH: usize = 32;

/// Reusable SoA buffers for batch candidate scoring. One instance per
/// query (or per worker) amortizes every allocation in the scoring hot
/// loop across all candidates the query evaluates.
#[derive(Debug, Default)]
pub struct ScoreScratch {
    /// Candidate point indexes (the APL union), filled by
    /// [`crate::apl::TrajectoryPostings::candidate_indexes_into`].
    pub indexes: Vec<u32>,
    xs: Vec<f64>,
    ys: Vec<f64>,
    masks: Vec<u32>,
    dists: Vec<f64>,
    cp: Vec<CandidatePoint>,
}

impl ScoreScratch {
    /// A fresh scratch with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scores the candidate points listed in `self.indexes` against a
    /// query point at `q_loc` with cover mask `qmask`, returning the
    /// non-zero-mask candidates sorted ascending by distance.
    ///
    /// The returned slice borrows scratch storage; it is valid until
    /// the next call.
    pub fn score(
        &mut self,
        q_loc: &Point,
        qmask: &QueryMask,
        points: &[TrajectoryPoint],
    ) -> &[CandidatePoint] {
        let n = self.indexes.len();
        if n < SOA_MIN_BATCH {
            // Small batches: one allocation-free pass. The SoA
            // column passes cost more than they save below this size
            // (fixed clear/reserve overhead, no vector lanes to
            // fill); `Point::dist` performs the identical op
            // sequence, so results stay bit-for-bit the same.
            self.cp.clear();
            for &idx in &self.indexes {
                let p = &points[idx as usize];
                let mask = qmask.cover_mask(&p.activities);
                if mask != 0 {
                    self.cp.push(CandidatePoint {
                        dist: q_loc.dist(&p.loc),
                        mask,
                    });
                }
            }
        } else {
            // Gather: AoS trajectory points -> contiguous SoA
            // columns, filtering zero-mask points here so they cost
            // no distance computation at all (`add_point` would
            // ignore them anyway).
            self.xs.clear();
            self.ys.clear();
            self.masks.clear();
            self.xs.reserve(n);
            self.ys.reserve(n);
            self.masks.reserve(n);
            for &idx in &self.indexes {
                let p = &points[idx as usize];
                let mask = qmask.cover_mask(&p.activities);
                if mask != 0 {
                    self.xs.push(p.loc.x);
                    self.ys.push(p.loc.y);
                    self.masks.push(mask);
                }
            }
            let kept = self.xs.len();

            // Distance pass: one tight loop over contiguous columns
            // with no branches and no cross-iteration dependencies —
            // exactly the shape LLVM auto-vectorizes. The op
            // sequence matches `Point::dist` bit for bit.
            self.dists.clear();
            self.dists.resize(kept, 0.0);
            let (qx, qy) = (q_loc.x, q_loc.y);
            for ((d, &x), &y) in self.dists.iter_mut().zip(&self.xs).zip(&self.ys) {
                let dx = qx - x;
                let dy = qy - y;
                *d = (dx * dx + dy * dy).sqrt();
            }

            self.cp.clear();
            self.cp.extend(
                self.dists
                    .iter()
                    .zip(&self.masks)
                    .map(|(&dist, &mask)| CandidatePoint { dist, mask }),
            );
        }

        // Stable sort keeps APL index order among equal distances —
        // the same tie order the scalar reference produces. A single
        // survivor needs no sort (the common case for short postings).
        if self.cp.len() > 1 {
            self.cp
                .sort_by(|a, b| a.dist.partial_cmp(&b.dist).unwrap_or(Ordering::Equal));
        }
        &self.cp
    }
}

/// The scalar AoS reference: per candidate, one distance and one mask,
/// then a stable sort — the pre-kernel hot-loop shape, kept as the
/// correctness baseline for `benches/kernel.rs` and the tests below.
pub fn score_scalar(
    q_loc: &Point,
    qmask: &QueryMask,
    points: &[TrajectoryPoint],
    indexes: &[u32],
) -> Vec<CandidatePoint> {
    let mut cp: Vec<CandidatePoint> = indexes
        .iter()
        .map(|&idx| {
            let p = &points[idx as usize];
            CandidatePoint {
                dist: q_loc.dist(&p.loc),
                mask: qmask.cover_mask(&p.activities),
            }
        })
        .collect();
    cp.sort_by(|a, b| a.dist.partial_cmp(&b.dist).unwrap_or(Ordering::Equal));
    cp
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsq_matching::point_match::dmpm_from_sorted;
    use atsq_types::ActivitySet;

    fn tp(x: f64, y: f64, acts: &[u32]) -> TrajectoryPoint {
        TrajectoryPoint::new(
            Point::new(x, y),
            ActivitySet::from_raw(acts.iter().copied()),
        )
    }

    fn pseudo_points(n: usize, seed: u64) -> Vec<TrajectoryPoint> {
        let mut x = seed | 1;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        (0..n)
            .map(|_| {
                let px = (next() % 10_000) as f64 / 37.0;
                let py = (next() % 10_000) as f64 / 53.0;
                tp(px, py, &[(next() % 6) as u32, (next() % 6) as u32])
            })
            .collect()
    }

    #[test]
    fn soa_matches_scalar_bit_for_bit() {
        // Sizes straddle SOA_MIN_BATCH so both dispatch arms are
        // checked against the scalar reference.
        for n in [1usize, 5, SOA_MIN_BATCH - 1, SOA_MIN_BATCH, 257] {
            let points = pseudo_points(n, 0xBEEF ^ n as u64);
            let qmask = QueryMask::new(&ActivitySet::from_raw([0, 2, 4]));
            let q_loc = Point::new(77.0, 33.0);
            let indexes: Vec<u32> = (0..points.len() as u32).collect();

            let scalar = score_scalar(&q_loc, &qmask, &points, &indexes);
            let mut scratch = ScoreScratch::new();
            scratch.indexes = indexes;
            let soa = scratch.score(&q_loc, &qmask, &points);

            // SoA output is the scalar output minus zero-mask
            // entries, in the same (stable) order, distances
            // bit-identical.
            let filtered: Vec<&CandidatePoint> = scalar.iter().filter(|c| c.mask != 0).collect();
            assert_eq!(soa.len(), filtered.len(), "n={n}");
            for (a, b) in soa.iter().zip(filtered) {
                assert_eq!(a.dist.to_bits(), b.dist.to_bits(), "n={n}");
                assert_eq!(a.mask, b.mask, "n={n}");
            }

            // And the value the search actually consumes is identical.
            let d_soa = dmpm_from_sorted(&qmask, soa);
            let d_scalar = dmpm_from_sorted(&qmask, &scalar);
            assert_eq!(
                d_soa.map(f64::to_bits),
                d_scalar.map(f64::to_bits),
                "Dmpm must be bit-identical (n={n})"
            );
        }
    }

    #[test]
    fn empty_and_all_zero_mask_inputs() {
        let points = pseudo_points(16, 3);
        let qmask = QueryMask::new(&ActivitySet::from_raw([17])); // never occurs
        let q_loc = Point::new(0.0, 0.0);
        let mut scratch = ScoreScratch::new();
        scratch.indexes.clear();
        assert!(scratch.score(&q_loc, &qmask, &points).is_empty());
        scratch.indexes = (0..points.len() as u32).collect();
        assert!(
            scratch.score(&q_loc, &qmask, &points).is_empty(),
            "all-zero-mask candidates compact away"
        );
    }

    #[test]
    fn scratch_is_reusable_across_calls() {
        let points = pseudo_points(64, 7);
        let qmask = QueryMask::new(&ActivitySet::from_raw([1, 3]));
        let q_loc = Point::new(5.0, 5.0);
        let mut scratch = ScoreScratch::new();
        scratch.indexes = (0..points.len() as u32).collect();
        let first: Vec<CandidatePoint> = scratch.score(&q_loc, &qmask, &points).to_vec();
        // A second call over different indexes, then back: identical.
        scratch.indexes = (0..8).collect();
        let _ = scratch.score(&q_loc, &qmask, &points);
        scratch.indexes = (0..points.len() as u32).collect();
        let again: Vec<CandidatePoint> = scratch.score(&q_loc, &qmask, &points).to_vec();
        assert_eq!(first.len(), again.len());
        for (a, b) in first.iter().zip(&again) {
            assert_eq!(a.dist.to_bits(), b.dist.to_bits());
            assert_eq!(a.mask, b.mask);
        }
    }
}
