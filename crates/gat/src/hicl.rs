//! HICL — the Hierarchical Inverted Cell List (§IV).
//!
//! For every activity `α`, the HICL stores, per grid level, the sorted
//! set of cell codes whose cells contain `α`. The leaf level is built
//! directly from the data; each coarser level is the set of parents of
//! the level below, exactly the paper's bottom-up aggregation.
//!
//! The structure also supports the reverse question needed by the
//! Algorithm-2 lower bound: *which activities does cell `c` contain?*

use atsq_grid::CellId;
use atsq_types::{ActivityId, ActivitySet};
use std::collections::HashMap;

/// Hierarchical inverted cell lists for all activities.
#[derive(Debug, Clone, Default)]
pub struct Hicl {
    /// `lists[activity] = per-level sorted cell codes`; index 0 of the
    /// inner vec is grid level 1, the last is the leaf level `d`.
    lists: HashMap<ActivityId, Vec<Vec<u64>>>,
    /// Reverse map: per level (same indexing), cell code → activity
    /// set. Needed to materialise the "virtual points" of Algorithm 2.
    by_cell: Vec<HashMap<u64, ActivitySet>>,
    levels: u8,
}

impl Hicl {
    /// Builds the HICL from `(leaf cell, activity)` occurrence pairs.
    ///
    /// `leaf_cells` yields one entry per (activity, leaf cell) pair —
    /// duplicates are tolerated. `levels` is the grid depth `d`.
    pub fn build(levels: u8, occurrences: impl IntoIterator<Item = (ActivityId, CellId)>) -> Self {
        assert!(levels >= 1, "HICL requires at least one level");
        let mut lists: HashMap<ActivityId, Vec<Vec<u64>>> = HashMap::new();
        let mut by_cell: Vec<HashMap<u64, ActivitySet>> =
            (0..levels).map(|_| HashMap::new()).collect();

        for (act, cell) in occurrences {
            assert_eq!(cell.level, levels, "occurrence cell must be a leaf cell");
            let per_level = lists
                .entry(act)
                .or_insert_with(|| vec![Vec::new(); levels as usize]);
            // Walk the ancestor chain up to level 1, recording the cell
            // at each level.
            let mut c = cell;
            loop {
                per_level[(c.level - 1) as usize].push(c.code);
                by_cell[(c.level - 1) as usize]
                    .entry(c.code)
                    .or_default()
                    .insert(act);
                match c.parent() {
                    Some(p) if p.level >= 1 => c = p,
                    _ => break,
                }
            }
        }

        for per_level in lists.values_mut() {
            for level in per_level.iter_mut() {
                level.sort_unstable();
                level.dedup();
            }
        }

        Hicl {
            lists,
            by_cell,
            levels,
        }
    }

    /// Grid depth `d`.
    pub fn levels(&self) -> u8 {
        self.levels
    }

    /// Dynamically records one `(activity, leaf cell)` occurrence,
    /// propagating through every ancestor level. Idempotent.
    pub fn insert(&mut self, act: ActivityId, cell: CellId) {
        assert_eq!(cell.level, self.levels, "insert takes leaf cells");
        let levels = self.levels as usize;
        let per_level = self
            .lists
            .entry(act)
            .or_insert_with(|| vec![Vec::new(); levels]);
        let mut c = cell;
        loop {
            let list = &mut per_level[(c.level - 1) as usize];
            if let Err(pos) = list.binary_search(&c.code) {
                list.insert(pos, c.code);
            }
            self.by_cell[(c.level - 1) as usize]
                .entry(c.code)
                .or_default()
                .insert(act);
            match c.parent() {
                Some(p) if p.level >= 1 => c = p,
                _ => break,
            }
        }
    }

    /// Whether `cell` contains activity `act` (any level 1..=d).
    pub fn cell_contains(&self, cell: CellId, act: ActivityId) -> bool {
        assert!(cell.level >= 1 && cell.level <= self.levels);
        self.lists.get(&act).is_some_and(|lv| {
            lv[(cell.level - 1) as usize]
                .binary_search(&cell.code)
                .is_ok()
        })
    }

    /// Cells at `level` containing `act` (sorted by code); empty slice
    /// when the activity is absent.
    pub fn cells_with_activity(&self, level: u8, act: ActivityId) -> &[u64] {
        assert!(level >= 1 && level <= self.levels);
        self.lists
            .get(&act)
            .map_or(&[][..], |lv| &lv[(level - 1) as usize])
    }

    /// The children of `cell` that contain at least one activity of
    /// `wanted` — the descent step of the §V-A best-first retrieval
    /// ("take the union set of the cells in the inverted list").
    pub fn children_with_any(&self, cell: CellId, wanted: &ActivitySet) -> Vec<CellId> {
        assert!(cell.level < self.levels, "leaf cells have no children");
        cell.children()
            .into_iter()
            .filter(|ch| wanted.iter().any(|a| self.cell_contains(*ch, a)))
            .collect()
    }

    /// All activities present in `cell` — the `cj.Φ` of Algorithm 2's
    /// virtual points. Returns `None` for cells with no activity.
    pub fn cell_activities(&self, cell: CellId) -> Option<&ActivitySet> {
        assert!(cell.level >= 1 && cell.level <= self.levels);
        self.by_cell[(cell.level - 1) as usize].get(&cell.code)
    }

    /// Approximate heap footprint in bytes of the inverted lists at
    /// levels `1..=upto` (8 bytes per posting), matching the paper's
    /// memory accounting for Fig. 8.
    pub fn memory_bytes(&self, upto: u8) -> usize {
        let upto = upto.min(self.levels) as usize;
        self.lists
            .values()
            .map(|lv| lv[..upto].iter().map(|l| l.len() * 8).sum::<usize>())
            .sum()
    }

    /// Number of distinct activities indexed.
    pub fn activity_count(&self) -> usize {
        self.lists.len()
    }

    /// Serializes the full structure (every activity's per-level cell
    /// lists), activities in ascending id order so the encoding is
    /// deterministic. The reverse `by_cell` map is derived data and is
    /// rebuilt on decode.
    pub fn encode(&self, out: &mut Vec<u8>) {
        use atsq_storage::codec::{put_ascending_u64, put_varint};
        out.push(self.levels);
        let mut acts: Vec<ActivityId> = self.lists.keys().copied().collect();
        acts.sort_unstable();
        put_varint(out, acts.len() as u32);
        for a in acts {
            put_varint(out, a.0);
            for level in &self.lists[&a] {
                put_ascending_u64(out, level);
            }
        }
    }

    /// Decodes [`Hicl::encode`] output from `buf[*pos..]`, advancing
    /// `pos`. `None` on truncation or any violated invariant (zero
    /// levels, duplicate activities, non-ascending cell lists) — a
    /// corrupt snapshot must surface as an error, never as an index
    /// that silently answers differently.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Option<Self> {
        use atsq_storage::codec::{get_ascending_u64, get_varint};
        let levels = *buf.get(*pos)?;
        *pos += 1;
        if levels == 0 || levels > atsq_grid::Grid::MAX_SUPPORTED_LEVEL {
            return None;
        }
        let n = get_varint(buf, pos)? as usize;
        let mut lists: HashMap<ActivityId, Vec<Vec<u64>>> = HashMap::with_capacity(n.min(1 << 16));
        let mut by_cell: Vec<HashMap<u64, ActivitySet>> =
            (0..levels).map(|_| HashMap::new()).collect();
        for _ in 0..n {
            let act = ActivityId(get_varint(buf, pos)?);
            let mut per_level = Vec::with_capacity(levels as usize);
            for (l, cells) in by_cell.iter_mut().enumerate().take(levels as usize) {
                let codes = get_ascending_u64(buf, pos)?;
                // Lists are sorted + deduped, i.e. strictly ascending.
                if codes.windows(2).any(|w| w[0] >= w[1]) {
                    return None;
                }
                // Codes must be valid Morton codes for their level.
                let max_code = 1u128 << (2 * (l as u32 + 1));
                if codes.iter().any(|&c| u128::from(c) >= max_code) {
                    return None;
                }
                for &c in &codes {
                    cells.entry(c).or_default().insert(act);
                }
                per_level.push(codes);
            }
            if lists.insert(act, per_level).is_some() {
                return None; // duplicate activity entry
            }
        }
        Some(Hicl {
            lists,
            by_cell,
            levels,
        })
    }

    /// Iterates `(cell code, activity set)` over the occupied cells at
    /// `level` (1-based), in unspecified order. Used to materialise
    /// the cold levels onto pages.
    pub fn level_entries(&self, level: u8) -> impl Iterator<Item = (u64, &ActivitySet)> {
        assert!(level >= 1 && level <= self.levels);
        self.by_cell[(level - 1) as usize]
            .iter()
            .map(|(&code, acts)| (code, acts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsq_grid::{morton_encode, Grid};
    use atsq_types::{Point, Rect};

    fn leaf(level: u8, x: u32, y: u32) -> CellId {
        CellId {
            level,
            code: morton_encode(x, y),
        }
    }

    #[test]
    fn build_propagates_to_ancestors() {
        // Grid d=3 (8x8). Activity 1 occurs in leaf (5, 2).
        let h = Hicl::build(3, vec![(ActivityId(1), leaf(3, 5, 2))]);
        assert!(h.cell_contains(leaf(3, 5, 2), ActivityId(1)));
        assert!(h.cell_contains(leaf(2, 2, 1), ActivityId(1))); // parent
        assert!(h.cell_contains(leaf(1, 1, 0), ActivityId(1))); // grandparent
        assert!(!h.cell_contains(leaf(3, 5, 3), ActivityId(1)));
        assert!(!h.cell_contains(leaf(1, 0, 0), ActivityId(1)));
        assert_eq!(h.activity_count(), 1);
    }

    #[test]
    fn children_with_any_filters() {
        let h = Hicl::build(
            2,
            vec![
                (ActivityId(1), leaf(2, 0, 0)),
                (ActivityId(2), leaf(2, 3, 3)),
            ],
        );
        let root_children = h.children_with_any(leaf(1, 0, 0), &ActivitySet::from_raw([1]));
        assert_eq!(root_children, vec![leaf(2, 0, 0)]);
        let none = h.children_with_any(leaf(1, 0, 0), &ActivitySet::from_raw([2]));
        assert!(none.is_empty());
    }

    #[test]
    fn cell_activities_reverse_lookup() {
        let h = Hicl::build(
            2,
            vec![
                (ActivityId(1), leaf(2, 0, 0)),
                (ActivityId(2), leaf(2, 0, 0)),
                (ActivityId(3), leaf(2, 3, 0)),
            ],
        );
        assert_eq!(
            h.cell_activities(leaf(2, 0, 0)),
            Some(&ActivitySet::from_raw([1, 2]))
        );
        // Level-1 parent of both (0,0) and (3,0) quadrant cells.
        assert_eq!(
            h.cell_activities(leaf(1, 0, 0)),
            Some(&ActivitySet::from_raw([1, 2]))
        );
        assert_eq!(
            h.cell_activities(leaf(1, 1, 0)),
            Some(&ActivitySet::from_raw([3]))
        );
        assert_eq!(h.cell_activities(leaf(2, 1, 1)), None);
    }

    #[test]
    fn duplicates_are_deduped() {
        let occ = vec![
            (ActivityId(1), leaf(2, 1, 1)),
            (ActivityId(1), leaf(2, 1, 1)),
            (ActivityId(1), leaf(2, 1, 1)),
        ];
        let h = Hicl::build(2, occ);
        assert_eq!(h.cells_with_activity(2, ActivityId(1)).len(), 1);
        assert_eq!(h.cells_with_activity(1, ActivityId(1)).len(), 1);
    }

    #[test]
    fn memory_accounting_counts_postings() {
        let h = Hicl::build(
            2,
            vec![
                (ActivityId(1), leaf(2, 0, 0)),
                (ActivityId(1), leaf(2, 3, 3)),
            ],
        );
        // Level 1: cells (0,0) and (1,1) -> 2 postings; level 2: 2.
        assert_eq!(h.memory_bytes(1), 16);
        assert_eq!(h.memory_bytes(2), 32);
        // Clamps beyond depth.
        assert_eq!(h.memory_bytes(10), 32);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let h = Hicl::build(
            3,
            vec![
                (ActivityId(1), leaf(3, 5, 2)),
                (ActivityId(1), leaf(3, 0, 0)),
                (ActivityId(7), leaf(3, 7, 7)),
            ],
        );
        let mut buf = Vec::new();
        h.encode(&mut buf);
        let mut pos = 0;
        let q = Hicl::decode(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        assert_eq!(q.levels(), 3);
        assert_eq!(q.activity_count(), 2);
        for level in 1..=3u8 {
            for act in [ActivityId(1), ActivityId(7), ActivityId(9)] {
                assert_eq!(
                    h.cells_with_activity(level, act),
                    q.cells_with_activity(level, act)
                );
            }
        }
        // The rebuilt reverse map answers like the original.
        assert_eq!(
            h.cell_activities(leaf(3, 5, 2)),
            q.cell_activities(leaf(3, 5, 2))
        );
        assert_eq!(
            h.cell_activities(leaf(1, 0, 0)),
            q.cell_activities(leaf(1, 0, 0))
        );
        // Deterministic bytes.
        let mut again = Vec::new();
        h.encode(&mut again);
        assert_eq!(buf, again);
    }

    #[test]
    fn decode_rejects_corruption() {
        let h = Hicl::build(2, vec![(ActivityId(3), leaf(2, 1, 1))]);
        let mut buf = Vec::new();
        h.encode(&mut buf);
        // Truncation at every prefix fails rather than panics.
        for cut in 0..buf.len() {
            assert!(Hicl::decode(&buf[..cut], &mut 0).is_none(), "cut={cut}");
        }
        // Zero or absurd level counts are rejected.
        let mut zero = buf.clone();
        zero[0] = 0;
        assert!(Hicl::decode(&zero, &mut 0).is_none());
        let mut deep = buf.clone();
        deep[0] = 200;
        assert!(Hicl::decode(&deep, &mut 0).is_none());
    }

    #[test]
    fn consistent_with_grid_mapping() {
        // End-to-end: map real points through a Grid and check
        // containment against the grid's own cell_of.
        let grid = Grid::new(Rect::from_bounds(0.0, 0.0, 16.0, 16.0), 4);
        let pts = [
            (Point::new(1.0, 1.0), ActivityId(7)),
            (Point::new(15.0, 15.0), ActivityId(7)),
            (Point::new(8.0, 4.0), ActivityId(9)),
        ];
        let h = Hicl::build(4, pts.iter().map(|(p, a)| (*a, grid.leaf_cell_of(p))));
        for (p, a) in &pts {
            for level in 1..=4u8 {
                assert!(h.cell_contains(grid.cell_of(p, level), *a));
            }
        }
        assert!(!h.cell_contains(grid.cell_of(&Point::new(1.0, 1.0), 4), ActivityId(9)));
    }
}
