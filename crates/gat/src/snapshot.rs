//! Persistent GAT index snapshots.
//!
//! Building a [`GatIndex`] is expensive relative to querying it, yet
//! every process start used to rebuild all layers — and a
//! [`ShardedEngine`] rebuilds one per shard. This module serializes a
//! built index (grid + HICL + ITL + TAS + APL) into a versioned,
//! checksummed binary snapshot keyed by
//! [`Dataset::content_hash`], so a restart *loads* instead of
//! *builds*.
//!
//! Safety over speed: a snapshot is only ever used when every check
//! passes — magic, format version, payload checksum
//! ([`atsq_storage::page::crc32`], the same CRC the page store uses),
//! dataset content hash, GAT configuration, and cross-component
//! consistency. Any mismatch yields a descriptive error and the caller
//! falls back to a fresh build: the worst possible outcome of a
//! corrupt or stale snapshot is a rebuild, never a wrong answer.
//!
//! ## File format
//!
//! ```text
//! offset 0   [u8; 8]  magic b"ATSQSNAP"
//! offset 8   u16 LE   format version (currently 1)
//! offset 10  u8       kind (1 = single index, 2 = shard manifest)
//! offset 11  u8       reserved (written as 0)
//! offset 12  u64 LE   content hash of the dataset the payload serves
//! offset 20  u32 LE   CRC-32 of the payload
//! offset 24  u64 LE   payload length in bytes
//! offset 32  ...      payload
//! ```
//!
//! A *single index* payload is the [`GatConfig`], the grid geometry and
//! the four components, each through its own strict `encode`/`decode`
//! pair. A *shard manifest* payload records the shard count, the
//! [`Partition`] and the configuration; the per-shard indexes live in
//! sibling single-index files keyed by each shard subset's own content
//! hash. Shard *datasets* are not persisted — partitioning is a cheap
//! deterministic function of the dataset, so the loader re-runs it and
//! validates every shard snapshot against the recomputed subset.
//!
//! [`IndexCache`] wraps the format in a directory-level API
//! (`load_or_build`, `save`, `inspect`) used by `atsq index build`,
//! `atsq serve --index-cache` and `ServiceConfig::index_cache`.

use crate::apl::Apl;
use crate::config::GatConfig;
use crate::hicl::Hicl;
use crate::index::GatIndex;
use crate::itl::Itl;
use crate::paged::AplStorage;
use crate::sharded::{shard_config, Partition, ShardedEngine};
use crate::tas::Tas;
use atsq_grid::Grid;
use atsq_storage::codec::{get_varint_u64, put_varint_u64};
use atsq_storage::page::crc32;
use atsq_types::{Dataset, Error, Rect, Result};
use std::io::Read;
use std::path::{Path, PathBuf};

/// Leading magic of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"ATSQSNAP";

/// Format version this build writes and reads.
pub const SNAPSHOT_VERSION: u16 = 1;

/// Header length in bytes (see the module docs for the layout).
pub const SNAPSHOT_HEADER_LEN: usize = 32;

const KIND_INDEX: u8 = 1;
const KIND_MANIFEST: u8 = 2;

fn corrupt(msg: impl Into<String>) -> Error {
    Error::Storage(msg.into())
}

fn kind_name(kind: u8) -> &'static str {
    match kind {
        KIND_INDEX => "index",
        KIND_MANIFEST => "manifest",
        _ => "unknown",
    }
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

fn frame(kind: u8, dataset_hash: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(SNAPSHOT_HEADER_LEN + payload.len());
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.push(kind);
    out.push(0);
    out.extend_from_slice(&dataset_hash.to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Parsed and checksum-verified snapshot framing.
struct Framed<'a> {
    kind: u8,
    dataset_hash: u64,
    payload: &'a [u8],
}

/// Validates everything that can be validated without a dataset:
/// magic, version, length, checksum. Each failure mode gets a
/// distinct, descriptive error.
fn parse_frame(bytes: &[u8]) -> Result<Framed<'_>> {
    if bytes.len() < SNAPSHOT_HEADER_LEN {
        return Err(corrupt(format!(
            "snapshot truncated: {} bytes is shorter than the {SNAPSHOT_HEADER_LEN}-byte header",
            bytes.len()
        )));
    }
    if bytes[0..8] != SNAPSHOT_MAGIC {
        return Err(corrupt("bad magic: not an ATSQ index snapshot"));
    }
    let version = u16::from_le_bytes(bytes[8..10].try_into().expect("2-byte slice"));
    if version != SNAPSHOT_VERSION {
        return Err(corrupt(format!(
            "unsupported snapshot version {version} (this build reads version {SNAPSHOT_VERSION})"
        )));
    }
    let kind = bytes[10];
    if kind != KIND_INDEX && kind != KIND_MANIFEST {
        return Err(corrupt(format!("unknown snapshot kind {kind}")));
    }
    let dataset_hash = u64::from_le_bytes(bytes[12..20].try_into().expect("8-byte slice"));
    let stored_crc = u32::from_le_bytes(bytes[20..24].try_into().expect("4-byte slice"));
    let payload_len = u64::from_le_bytes(bytes[24..32].try_into().expect("8-byte slice"));
    let available = (bytes.len() - SNAPSHOT_HEADER_LEN) as u64;
    if payload_len > available {
        return Err(corrupt(format!(
            "snapshot truncated: header declares a {payload_len}-byte payload, \
             only {available} bytes follow"
        )));
    }
    if payload_len < available {
        return Err(corrupt(format!(
            "snapshot corrupt: {} trailing bytes after the declared payload",
            available - payload_len
        )));
    }
    let payload = &bytes[SNAPSHOT_HEADER_LEN..];
    let computed = crc32(payload);
    if computed != stored_crc {
        return Err(corrupt(format!(
            "snapshot corrupt: payload checksum mismatch \
             (stored 0x{stored_crc:08x}, computed 0x{computed:08x})"
        )));
    }
    Ok(Framed {
        kind,
        dataset_hash,
        payload,
    })
}

fn check_kind(framed: &Framed<'_>, expected: u8) -> Result<()> {
    if framed.kind != expected {
        return Err(corrupt(format!(
            "snapshot kind mismatch: expected a {} snapshot, found a {} snapshot",
            kind_name(expected),
            kind_name(framed.kind)
        )));
    }
    Ok(())
}

fn check_dataset_hash(framed: &Framed<'_>, current: u64) -> Result<()> {
    if framed.dataset_hash != current {
        return Err(corrupt(format!(
            "stale snapshot: built for dataset {:016x}, current dataset is {current:016x}",
            framed.dataset_hash
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Config and grid codecs
// ---------------------------------------------------------------------

fn encode_config(config: &GatConfig, out: &mut Vec<u8>) {
    out.push(config.grid_level);
    out.push(config.memory_level);
    put_varint_u64(out, config.tas_intervals as u64);
    put_varint_u64(out, config.lambda as u64);
    put_varint_u64(out, config.lb_cells as u64);
    out.push(u8::from(config.use_tas) | (u8::from(config.tight_lower_bound) << 1));
}

fn decode_config(buf: &[u8], pos: &mut usize) -> Option<GatConfig> {
    let grid_level = *buf.get(*pos)?;
    let memory_level = *buf.get(*pos + 1)?;
    *pos += 2;
    let tas_intervals = usize::try_from(get_varint_u64(buf, pos)?).ok()?;
    let lambda = usize::try_from(get_varint_u64(buf, pos)?).ok()?;
    let lb_cells = usize::try_from(get_varint_u64(buf, pos)?).ok()?;
    let flags = *buf.get(*pos)?;
    *pos += 1;
    if flags > 0b11 {
        return None;
    }
    Some(GatConfig {
        grid_level,
        memory_level,
        tas_intervals,
        lambda,
        lb_cells,
        use_tas: flags & 1 != 0,
        tight_lower_bound: flags & 2 != 0,
    })
}

fn encode_grid(grid: &Grid, out: &mut Vec<u8>) {
    let r = grid.region();
    for v in [r.min.x, r.min.y, r.max.x, r.max.y] {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out.push(grid.max_level());
}

fn decode_grid(buf: &[u8], pos: &mut usize) -> Option<Grid> {
    let mut coords = [0.0f64; 4];
    for c in &mut coords {
        let end = pos.checked_add(8)?;
        let bytes: [u8; 8] = buf.get(*pos..end)?.try_into().ok()?;
        *c = f64::from_bits(u64::from_le_bytes(bytes));
        *pos = end;
    }
    let level = *buf.get(*pos)?;
    *pos += 1;
    let [min_x, min_y, max_x, max_y] = coords;
    // Pre-validate what Grid::new would panic on.
    if !coords.iter().all(|c| c.is_finite())
        || max_x <= min_x
        || max_y <= min_y
        || level == 0
        || level > Grid::MAX_SUPPORTED_LEVEL
    {
        return None;
    }
    Some(Grid::new(
        Rect::from_bounds(min_x, min_y, max_x, max_y),
        level,
    ))
}

// ---------------------------------------------------------------------
// Single-index snapshots
// ---------------------------------------------------------------------

/// Serializes a built index into snapshot bytes for `dataset` (the
/// dataset the index was built from — its content hash keys the
/// snapshot).
///
/// Only plain in-memory indexes snapshot: the paged APL / cold-HICL
/// backends hold their own page files and are rejected with
/// [`Error::InvalidConfig`].
pub fn write_index(index: &GatIndex, dataset: &Dataset) -> Result<Vec<u8>> {
    write_index_with_hash(index, dataset.content_hash())
}

/// [`write_index`] with the dataset's content hash precomputed — the
/// hash is a full scan of every point and save paths already computed
/// it for the snapshot filename.
fn write_index_with_hash(index: &GatIndex, dataset_hash: u64) -> Result<Vec<u8>> {
    let AplStorage::Memory(apl) = index.apl() else {
        return Err(Error::InvalidConfig(
            "paged APL backends cannot be snapshotted; build the index in memory".into(),
        ));
    };
    if index.cold_hicl().is_some() {
        return Err(Error::InvalidConfig(
            "indexes with paged cold HICL levels cannot be snapshotted".into(),
        ));
    }
    let mut payload = Vec::new();
    encode_config(index.config(), &mut payload);
    encode_grid(index.grid(), &mut payload);
    index.hicl().encode(&mut payload);
    index.itl().encode(&mut payload);
    index.tas().encode(&mut payload);
    apl.encode(&mut payload);
    Ok(frame(KIND_INDEX, dataset_hash, &payload))
}

/// Decodes and fully validates a single-index snapshot against the
/// dataset it is supposed to serve. Every failure is a descriptive
/// error; callers treat any error as "no usable snapshot" and rebuild.
pub fn read_index(bytes: &[u8], dataset: &Dataset) -> Result<GatIndex> {
    read_index_with_hash(bytes, dataset, dataset.content_hash())
}

/// [`read_index`] with the dataset's content hash precomputed — the
/// hash is a full scan of every point, and the cache's load path
/// already computed it to derive the snapshot filename.
fn read_index_with_hash(bytes: &[u8], dataset: &Dataset, dataset_hash: u64) -> Result<GatIndex> {
    let framed = parse_frame(bytes)?;
    check_kind(&framed, KIND_INDEX)?;
    check_dataset_hash(&framed, dataset_hash)?;
    let buf = framed.payload;
    let mut pos = 0usize;
    let component = |name: &str| corrupt(format!("snapshot corrupt: {name} failed to decode"));
    let config = decode_config(buf, &mut pos).ok_or_else(|| component("GAT configuration"))?;
    config.validate()?;
    let grid = decode_grid(buf, &mut pos).ok_or_else(|| component("grid geometry"))?;
    let hicl = Hicl::decode(buf, &mut pos).ok_or_else(|| component("HICL"))?;
    let itl = Itl::decode(buf, &mut pos).ok_or_else(|| component("ITL"))?;
    let tas = Tas::decode(buf, &mut pos).ok_or_else(|| component("TAS"))?;
    let apl = Apl::decode(buf, &mut pos).ok_or_else(|| component("APL"))?;
    if pos != buf.len() {
        return Err(corrupt(format!(
            "snapshot corrupt: {} undecoded bytes after the last component",
            buf.len() - pos
        )));
    }
    // Cross-component consistency: a snapshot that decodes but whose
    // parts disagree would answer queries wrongly, so it is rejected.
    let inconsistent = |detail: String| corrupt(format!("snapshot inconsistent: {detail}"));
    if grid.max_level() != config.grid_level {
        return Err(inconsistent(format!(
            "grid depth {} vs configured grid_level {}",
            grid.max_level(),
            config.grid_level
        )));
    }
    if hicl.levels() != config.grid_level {
        return Err(inconsistent(format!(
            "HICL depth {} vs configured grid_level {}",
            hicl.levels(),
            config.grid_level
        )));
    }
    if itl.leaf_level() != config.grid_level {
        return Err(inconsistent(format!(
            "ITL leaf level {} vs configured grid_level {}",
            itl.leaf_level(),
            config.grid_level
        )));
    }
    if tas.len() != dataset.len() || apl.len() != dataset.len() {
        return Err(inconsistent(format!(
            "TAS covers {} and APL {} trajectories, dataset has {}",
            tas.len(),
            apl.len(),
            dataset.len()
        )));
    }
    // Range checks on every decoded reference into the dataset: a
    // CRC-valid payload from a buggy or version-skewed writer must be
    // rejected here, not panic with an out-of-bounds index inside a
    // query worker.
    if let Some(max_tr) = itl.max_trajectory_index() {
        if max_tr >= dataset.len() {
            return Err(inconsistent(format!(
                "ITL references trajectory {max_tr}, dataset has {}",
                dataset.len()
            )));
        }
    }
    for (i, tr) in dataset.trajectories().iter().enumerate() {
        if let Some(max_pos) = apl.trajectory(i).max_position() {
            if max_pos as usize >= tr.len() {
                return Err(inconsistent(format!(
                    "APL of trajectory {i} references point {max_pos}, \
                     the trajectory has {} points",
                    tr.len()
                )));
            }
        }
    }
    Ok(GatIndex::from_parts(config, grid, hicl, itl, tas, apl))
}

// ---------------------------------------------------------------------
// Shard manifests
// ---------------------------------------------------------------------

fn partition_tag(partition: Partition) -> u8 {
    match partition {
        Partition::Hash => 0,
        Partition::Spatial => 1,
    }
}

fn partition_from_tag(tag: u8) -> Option<Partition> {
    match tag {
        0 => Some(Partition::Hash),
        1 => Some(Partition::Spatial),
        _ => None,
    }
}

/// Serializes a sharded engine's manifest: shard count, partitioner
/// and configuration, keyed by the *global* dataset hash. The
/// per-shard indexes are written separately (see [`IndexCache`]).
pub fn write_manifest(engine: &ShardedEngine, dataset: &Dataset) -> Result<Vec<u8>> {
    write_manifest_with_hash(engine, dataset.content_hash())
}

/// [`write_manifest`] with the dataset hash precomputed (see
/// [`write_index_with_hash`]).
fn write_manifest_with_hash(engine: &ShardedEngine, dataset_hash: u64) -> Result<Vec<u8>> {
    // The manifest records the engine's BASE configuration; per-shard
    // grid depths are derived from it (see `shard_config`) and so are
    // recomputable — persisting a tuned config would poison the key.
    let config = *engine.base_config();
    let mut payload = Vec::new();
    put_varint_u64(&mut payload, engine.shard_count() as u64);
    payload.push(partition_tag(engine.partition()));
    encode_config(&config, &mut payload);
    Ok(frame(KIND_MANIFEST, dataset_hash, &payload))
}

/// Decoded shard-manifest contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Manifest {
    /// Number of shard snapshot files the manifest describes.
    pub shards: usize,
    /// Partitioner the shards were cut with.
    pub partition: Partition,
    /// Base GAT configuration (each shard's grid depth is derived
    /// from it and the shard's point volume; see
    /// [`crate::sharded::shard_config`]).
    pub config: GatConfig,
}

/// Decodes and validates a shard manifest against the global dataset.
pub fn read_manifest(bytes: &[u8], dataset: &Dataset) -> Result<Manifest> {
    read_manifest_with_hash(bytes, dataset.content_hash())
}

/// [`read_manifest`] with the dataset hash precomputed (see
/// [`read_index_with_hash`]).
fn read_manifest_with_hash(bytes: &[u8], dataset_hash: u64) -> Result<Manifest> {
    let framed = parse_frame(bytes)?;
    check_kind(&framed, KIND_MANIFEST)?;
    check_dataset_hash(&framed, dataset_hash)?;
    let buf = framed.payload;
    let mut pos = 0usize;
    let component = |name: &str| corrupt(format!("snapshot corrupt: {name} failed to decode"));
    let shards = get_varint_u64(buf, &mut pos)
        .and_then(|n| usize::try_from(n).ok())
        .filter(|&n| n >= 1)
        .ok_or_else(|| component("shard count"))?;
    let partition = buf
        .get(pos)
        .copied()
        .and_then(partition_from_tag)
        .ok_or_else(|| component("partitioner"))?;
    pos += 1;
    let config = decode_config(buf, &mut pos).ok_or_else(|| component("GAT configuration"))?;
    config.validate()?;
    if pos != buf.len() {
        return Err(corrupt(format!(
            "snapshot corrupt: {} undecoded bytes after the manifest",
            buf.len() - pos
        )));
    }
    Ok(Manifest {
        shards,
        partition,
        config,
    })
}

// ---------------------------------------------------------------------
// Inspection
// ---------------------------------------------------------------------

/// Header-level description of one snapshot file, produced by
/// [`inspect`] after full checksum validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// `"index"` or `"manifest"`.
    pub kind: &'static str,
    /// Format version the file was written with.
    pub version: u16,
    /// Content hash of the dataset the snapshot serves.
    pub dataset_hash: u64,
    /// Payload size in bytes (file size minus the header).
    pub payload_bytes: usize,
}

/// Reads and validates a snapshot file's framing (magic, version,
/// checksum) without needing the dataset it serves.
pub fn inspect(path: &Path) -> Result<SnapshotInfo> {
    let bytes = read_file(path)?;
    let framed = parse_frame(&bytes)?;
    Ok(SnapshotInfo {
        kind: kind_name(framed.kind),
        version: SNAPSHOT_VERSION,
        dataset_hash: framed.dataset_hash,
        payload_bytes: framed.payload.len(),
    })
}

// ---------------------------------------------------------------------
// The directory-level cache
// ---------------------------------------------------------------------

/// How [`IndexCache::load_or_build`] obtained its engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Every snapshot validated and was loaded — no index build ran.
    Loaded,
    /// Some or all of the index had to be built fresh. The string is a
    /// complete operator-readable account: what failed to load and
    /// why, how much *did* load (a sharded start reports
    /// `loaded k/S shard snapshots`), and whether the replacement
    /// snapshot was saved — render it verbatim.
    Rebuilt(String),
}

impl CacheOutcome {
    /// Whether the engine came from a snapshot.
    pub fn loaded(&self) -> bool {
        matches!(self, CacheOutcome::Loaded)
    }
}

/// A directory of index snapshots keyed by dataset content hash.
///
/// Filenames are derived from the dataset hash (and, for sharded
/// engines, the shard count and partitioner), so one directory can
/// cache snapshots for many datasets and sharding layouts side by
/// side. Writes go through a temp file + rename, so a crash mid-save
/// leaves no truncated snapshot under the final name.
#[derive(Debug, Clone)]
pub struct IndexCache {
    dir: PathBuf,
}

impl IndexCache {
    /// A cache rooted at `dir`. The directory is created on first save.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        IndexCache { dir: dir.into() }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    // Filenames are keyed by dataset hash AND a digest of the GAT
    // configuration (plus shard layout for sharded engines), so two
    // embedders sharing one cache directory with different configs get
    // coexisting snapshots instead of overwriting each other's on
    // every start. The config stored in the payload stays the source
    // of truth — `check_config` still validates it on load.

    fn index_path(&self, dataset_hash: u64, config: &GatConfig) -> PathBuf {
        let cfg = config_digest(config);
        self.dir
            .join(format!("gat-{dataset_hash:016x}-c{cfg:08x}.idx"))
    }

    fn manifest_path(
        &self,
        dataset_hash: u64,
        shards: usize,
        partition: Partition,
        config: &GatConfig,
    ) -> PathBuf {
        let cfg = config_digest(config);
        self.dir.join(format!(
            "gat-{dataset_hash:016x}-s{shards}-{partition}-c{cfg:08x}.manifest"
        ))
    }

    fn shard_path(
        &self,
        dataset_hash: u64,
        shards: usize,
        partition: Partition,
        config: &GatConfig,
        shard: usize,
    ) -> PathBuf {
        let cfg = config_digest(config);
        self.dir.join(format!(
            "gat-{dataset_hash:016x}-s{shards}-{partition}-c{cfg:08x}.shard{shard:03}.idx"
        ))
    }

    /// Serializes `index` (built from `dataset`) into the cache,
    /// returning the snapshot path.
    pub fn save_index(&self, dataset: &Dataset, index: &GatIndex) -> Result<PathBuf> {
        self.save_index_hashed(dataset.content_hash(), index)
    }

    fn save_index_hashed(&self, hash: u64, index: &GatIndex) -> Result<PathBuf> {
        let path = self.index_path(hash, index.config());
        write_file(&path, &write_index_with_hash(index, hash)?)?;
        Ok(path)
    }

    /// Loads and validates the snapshot for `dataset`, requiring it to
    /// have been built with exactly `config`. Any mismatch — missing
    /// file, corruption, staleness, different configuration — is an
    /// error; use [`IndexCache::load_or_build`] to fall back to a
    /// fresh build instead.
    pub fn load_index(&self, dataset: &Dataset, config: &GatConfig) -> Result<GatIndex> {
        self.load_index_hashed(dataset, dataset.content_hash(), config)
    }

    /// Hash once per start: it keys the filename, validates the
    /// header, and (on the fallback path) keys the replacement
    /// snapshot — `content_hash` is a full scan of every point.
    fn load_index_hashed(
        &self,
        dataset: &Dataset,
        hash: u64,
        config: &GatConfig,
    ) -> Result<GatIndex> {
        let path = self.index_path(hash, config);
        let index = read_index_with_hash(&read_file(&path)?, dataset, hash)?;
        check_config(index.config(), config)?;
        Ok(index)
    }

    /// The serving entry point: load the snapshot if one validates,
    /// otherwise build fresh and (over)write the snapshot for the next
    /// start. Falls back on *any* load error — and a *save* failure
    /// (unwritable directory, full disk) never discards the engine
    /// that was just built; it is reported in the outcome instead. The
    /// worst a bad snapshot or cache directory costs is the build that
    /// was going to happen anyway.
    pub fn load_or_build(
        &self,
        dataset: &Dataset,
        config: GatConfig,
    ) -> Result<(GatIndex, CacheOutcome)> {
        let hash = dataset.content_hash();
        match self.load_index_hashed(dataset, hash, &config) {
            Ok(index) => Ok((index, CacheOutcome::Loaded)),
            Err(why) => {
                let index = GatIndex::build_with(dataset, config)?;
                let mut note = format!("built index fresh ({why})");
                match self.save_index_hashed(hash, &index) {
                    Ok(_) => note.push_str("; snapshot saved"),
                    Err(save) => note.push_str(&format!("; snapshot not saved: {save}")),
                }
                Ok((index, CacheOutcome::Rebuilt(note)))
            }
        }
    }

    /// Serializes a sharded engine: one manifest plus one single-index
    /// snapshot per shard (each keyed by its shard subset's content
    /// hash). Returns every path written, manifest first.
    pub fn save_sharded(&self, dataset: &Dataset, engine: &ShardedEngine) -> Result<Vec<PathBuf>> {
        self.save_sharded_hashed(dataset.content_hash(), engine)
    }

    fn save_sharded_hashed(&self, hash: u64, engine: &ShardedEngine) -> Result<Vec<PathBuf>> {
        let (shards, partition) = (engine.shard_count(), engine.partition());
        // Paths are keyed by the base config so a loader holding only
        // the requested (base) config can find them again.
        let config = *engine.base_config();
        let mut paths = Vec::with_capacity(shards + 1);
        // Shard files first, manifest last: a crash mid-save leaves no
        // manifest pointing at missing shards.
        let manifest_path = self.manifest_path(hash, shards, partition, &config);
        for (i, (shard_dataset, shard_index)) in engine.shard_parts().enumerate() {
            let path = self.shard_path(hash, shards, partition, &config, i);
            write_file(&path, &write_index(shard_index, shard_dataset)?)?;
            paths.push(path);
        }
        write_file(&manifest_path, &write_manifest_with_hash(engine, hash)?)?;
        paths.insert(0, manifest_path);
        Ok(paths)
    }

    /// Loads a sharded engine from its manifest and per-shard
    /// snapshots, validating the manifest against the requested
    /// layout and every shard snapshot against its recomputed shard
    /// subset. Any mismatch anywhere is an error (see
    /// [`IndexCache::load_or_build_sharded`] for the fallback form).
    pub fn load_sharded(
        &self,
        dataset: &Dataset,
        shards: usize,
        partition: Partition,
        config: &GatConfig,
    ) -> Result<ShardedEngine> {
        let hash = dataset.content_hash();
        self.validate_manifest(hash, shards, partition, config)?;
        ShardedEngine::assemble(dataset, shards, partition, *config, |i, shard_dataset| {
            self.load_shard_index(hash, shards, partition, i, shard_dataset, config)
        })
    }

    /// Reads and fully validates the manifest of a sharded layout.
    fn validate_manifest(
        &self,
        hash: u64,
        shards: usize,
        partition: Partition,
        config: &GatConfig,
    ) -> Result<()> {
        let bytes = read_file(&self.manifest_path(hash, shards, partition, config))?;
        let manifest = read_manifest_with_hash(&bytes, hash)?;
        if manifest.shards != shards || manifest.partition != partition {
            return Err(corrupt(format!(
                "stale snapshot: manifest describes {} {} shards, requested {} {} shards",
                manifest.shards, manifest.partition, shards, partition
            )));
        }
        check_config(&manifest.config, config)
    }

    /// Reads and fully validates one shard's index snapshot against
    /// its recomputed shard subset.
    fn load_shard_index(
        &self,
        hash: u64,
        shards: usize,
        partition: Partition,
        shard: usize,
        shard_dataset: &Dataset,
        config: &GatConfig,
    ) -> Result<GatIndex> {
        let bytes = read_file(&self.shard_path(hash, shards, partition, config, shard))?;
        let index = read_index(&bytes, shard_dataset)?;
        // The snapshot stores the shard's TUNED config; recompute it
        // from the base config + shard subset and demand equality, so
        // snapshots written under a different tuning rule rebuild
        // cleanly instead of loading with the wrong depth.
        check_config(index.config(), &shard_config(config, shard_dataset))?;
        Ok(index)
    }

    /// [`IndexCache::load_or_build`] for sharded engines, with
    /// **per-shard granularity**: when the manifest validates, each
    /// shard loads its own snapshot and only the shards whose
    /// snapshots are missing or invalid are rebuilt (and re-saved) —
    /// one flipped byte in one of S shard files costs one shard build,
    /// not S. A manifest that fails validation means the layout itself
    /// is untrusted, so everything is rebuilt and re-saved. As in
    /// [`IndexCache::load_or_build`], save failures never discard
    /// built indexes; they are reported in the outcome.
    pub fn load_or_build_sharded(
        &self,
        dataset: &Dataset,
        shards: usize,
        partition: Partition,
        config: GatConfig,
    ) -> Result<(ShardedEngine, CacheOutcome)> {
        let hash = dataset.content_hash();
        if let Err(why) = self.validate_manifest(hash, shards, partition, &config) {
            let engine = ShardedEngine::build_with(dataset, shards, partition, config)?;
            let mut note = format!("built index fresh ({why})");
            match self.save_sharded_hashed(hash, &engine) {
                Ok(_) => note.push_str("; snapshot saved"),
                Err(save) => note.push_str(&format!("; snapshot not saved: {save}")),
            }
            return Ok((engine, CacheOutcome::Rebuilt(note)));
        }
        let mut notes: Vec<String> = Vec::new();
        let engine =
            ShardedEngine::assemble(dataset, shards, partition, config, |i, shard_dataset| {
                match self.load_shard_index(hash, shards, partition, i, shard_dataset, &config) {
                    Ok(index) => Ok(index),
                    Err(why) => {
                        let index = GatIndex::build_with(
                            shard_dataset,
                            shard_config(&config, shard_dataset),
                        )?;
                        let mut note = format!("shard {i}: {why}");
                        let saved = write_index(&index, shard_dataset).and_then(|bytes| {
                            write_file(
                                &self.shard_path(hash, shards, partition, &config, i),
                                &bytes,
                            )
                        });
                        if let Err(save) = saved {
                            note.push_str(&format!("; snapshot not saved: {save}"));
                        }
                        notes.push(note);
                        Ok(index)
                    }
                }
            })?;
        if notes.is_empty() {
            Ok((engine, CacheOutcome::Loaded))
        } else {
            // An honest partial-load report: most of the cold-start
            // win usually survived one damaged shard.
            Ok((
                engine,
                CacheOutcome::Rebuilt(format!(
                    "loaded {}/{} shard snapshots; rebuilt {}",
                    shards - notes.len(),
                    shards,
                    notes.join("; ")
                )),
            ))
        }
    }

    /// Snapshot files currently in the cache directory (sorted by
    /// name). An absent directory is an empty cache, not an error.
    pub fn entries(&self) -> Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(io_err(&self.dir, &e)),
        };
        for entry in entries {
            let path = entry.map_err(|e| io_err(&self.dir, &e))?.path();
            let ext = path.extension().and_then(|e| e.to_str());
            if matches!(ext, Some("idx") | Some("manifest")) {
                out.push(path);
            }
        }
        out.sort();
        Ok(out)
    }
}

/// FNV-1a digest of the encoded configuration, truncated to 32 bits
/// for the filename key. Collisions are harmless: the full config in
/// the payload is still compared on load.
fn config_digest(config: &GatConfig) -> u32 {
    let mut bytes = Vec::new();
    encode_config(config, &mut bytes);
    let mut h = atsq_types::Fnv64::new();
    h.write(&bytes);
    let h = h.finish();
    (h ^ (h >> 32)) as u32
}

fn check_config(stored: &GatConfig, requested: &GatConfig) -> Result<()> {
    if stored != requested {
        return Err(corrupt(format!(
            "snapshot built with a different GAT configuration \
             (stored {stored:?}, requested {requested:?})"
        )));
    }
    Ok(())
}

fn io_err(path: &Path, e: &std::io::Error) -> Error {
    Error::Storage(format!("snapshot {}: {e}", path.display()))
}

fn read_file(path: &Path) -> Result<Vec<u8>> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| io_err(path, &e))?;
    Ok(bytes)
}

/// Writes via a temp file + rename so readers never observe a torn
/// snapshot under the final name.
fn write_file(path: &Path, bytes: &[u8]) -> Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    std::fs::create_dir_all(dir).map_err(|e| io_err(dir, &e))?;
    // The temp name is unique per process AND per write: two servers
    // cold-starting against one shared cache dir (or two threads in
    // one process) each write their own temp file, so neither can
    // rename the other's half-written bytes into the final name.
    static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    // ordering: Relaxed — unique-suffix ticket; fetch_add atomicity
    // alone guarantees distinct temp names.
    let seq = TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp-{}-{seq}", std::process::id()));
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, bytes).map_err(|e| io_err(&tmp, &e))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        std::fs::remove_file(&tmp).ok();
        io_err(path, &e)
    })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsq_types::{ActivitySet, DatasetBuilder, Point, TrajectoryPoint};

    fn dataset(n: usize, seed: u64) -> Dataset {
        let mut b = DatasetBuilder::new().without_frequency_ranking();
        for i in 0..10 {
            b.observe_activity(&format!("act{i}"));
        }
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..n {
            let len = 1 + (next() % 4) as usize;
            let pts = (0..len)
                .map(|_| {
                    let px = (next() % 1000) as f64 / 10.0;
                    let py = (next() % 1000) as f64 / 10.0;
                    let acts = ActivitySet::from_raw([(next() % 10) as u32, (next() % 10) as u32]);
                    TrajectoryPoint::new(Point::new(px, py), acts)
                })
                .collect();
            b.push_trajectory(pts);
        }
        b.finish().unwrap()
    }

    fn small_config() -> GatConfig {
        GatConfig {
            grid_level: 5,
            memory_level: 4,
            ..GatConfig::default()
        }
    }

    fn temp_cache(tag: &str) -> IndexCache {
        let dir = std::env::temp_dir().join(format!("atsq-snapshot-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        IndexCache::new(dir)
    }

    fn queries(d: &Dataset) -> Vec<atsq_types::Query> {
        use atsq_types::{Query, QueryPoint};
        assert!(!d.is_empty());
        [(10.0, 10.0), (80.0, 30.0), (50.0, 90.0)]
            .iter()
            .map(|&(x, y)| {
                Query::new(vec![
                    QueryPoint::new(Point::new(x, y), ActivitySet::from_raw([0, 1])),
                    QueryPoint::new(Point::new(x + 5.0, y), ActivitySet::from_raw([2])),
                ])
                .unwrap()
            })
            .collect()
    }

    fn assert_same_answers(built: &GatIndex, loaded: &GatIndex, d: &Dataset) {
        use crate::search::{atsq, atsq_range, oatsq, oatsq_range};
        for q in queries(d) {
            for k in [1usize, 3, 9] {
                assert_eq!(atsq(built, d, &q, k), atsq(loaded, d, &q, k));
                assert_eq!(oatsq(built, d, &q, k), oatsq(loaded, d, &q, k));
            }
            for tau in [5.0f64, 50.0] {
                assert_eq!(
                    atsq_range(built, d, &q, tau),
                    atsq_range(loaded, d, &q, tau)
                );
                assert_eq!(
                    oatsq_range(built, d, &q, tau),
                    oatsq_range(loaded, d, &q, tau)
                );
            }
        }
    }

    #[test]
    fn index_snapshot_roundtrips_byte_identically() {
        let d = dataset(40, 0x5EED);
        let built = GatIndex::build_with(&d, small_config()).unwrap();
        let bytes = write_index(&built, &d).unwrap();
        // Serialization is deterministic.
        assert_eq!(bytes, write_index(&built, &d).unwrap());
        let loaded = read_index(&bytes, &d).unwrap();
        assert_eq!(loaded.config(), built.config());
        assert_eq!(loaded.tas().len(), built.tas().len());
        assert_same_answers(&built, &loaded, &d);
        // A re-serialized loaded index produces the same bytes.
        assert_eq!(bytes, write_index(&loaded, &d).unwrap());
    }

    #[test]
    fn truncated_snapshot_is_rejected_with_distinct_error() {
        let d = dataset(12, 1);
        let built = GatIndex::build_with(&d, small_config()).unwrap();
        let bytes = write_index(&built, &d).unwrap();
        // Shorter than the header.
        let err = read_index(&bytes[..16], &d).unwrap_err().to_string();
        assert!(err.contains("truncated") && err.contains("header"), "{err}");
        // Header intact, payload cut short.
        let err = read_index(&bytes[..bytes.len() - 3], &d)
            .unwrap_err()
            .to_string();
        assert!(
            err.contains("truncated") && err.contains("payload"),
            "{err}"
        );
        // Trailing garbage is also flagged.
        let mut long = bytes.clone();
        long.push(0);
        let err = read_index(&long, &d).unwrap_err().to_string();
        assert!(err.contains("trailing"), "{err}");
    }

    #[test]
    fn flipped_bytes_are_rejected_with_checksum_error() {
        let d = dataset(12, 2);
        let built = GatIndex::build_with(&d, small_config()).unwrap();
        let bytes = write_index(&built, &d).unwrap();
        // Flip one payload byte at several offsets: always caught by
        // the CRC before any decoding happens.
        for offset in [0usize, 7, 101] {
            let mut bad = bytes.clone();
            let i = SNAPSHOT_HEADER_LEN + offset % (bytes.len() - SNAPSHOT_HEADER_LEN);
            bad[i] ^= 0x40;
            let err = read_index(&bad, &d).unwrap_err().to_string();
            assert!(err.contains("checksum mismatch"), "offset {offset}: {err}");
        }
        // A flipped magic byte reports bad magic, not a checksum error.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        let err = read_index(&bad, &d).unwrap_err().to_string();
        assert!(err.contains("bad magic"), "{err}");
    }

    #[test]
    fn wrong_version_is_rejected_with_version_error() {
        let d = dataset(12, 3);
        let built = GatIndex::build_with(&d, small_config()).unwrap();
        let mut bytes = write_index(&built, &d).unwrap();
        bytes[8..10].copy_from_slice(&99u16.to_le_bytes());
        let err = read_index(&bytes, &d).unwrap_err().to_string();
        assert!(
            err.contains("version 99") && err.contains("reads version 1"),
            "{err}"
        );
    }

    #[test]
    fn stale_dataset_hash_is_rejected_with_stale_error() {
        let d = dataset(12, 4);
        let built = GatIndex::build_with(&d, small_config()).unwrap();
        let bytes = write_index(&built, &d).unwrap();
        let other = dataset(12, 5);
        let err = read_index(&bytes, &other).unwrap_err().to_string();
        assert!(err.contains("stale snapshot"), "{err}");
        // A kind mismatch is its own error too.
        let engine = ShardedEngine::build_with(&d, 2, Partition::Hash, small_config()).unwrap();
        let manifest = write_manifest(&engine, &d).unwrap();
        let err = read_index(&manifest, &d).unwrap_err().to_string();
        assert!(err.contains("kind mismatch"), "{err}");
        let err = read_manifest(&bytes, &d).unwrap_err().to_string();
        assert!(err.contains("kind mismatch"), "{err}");
    }

    /// A CRC-valid snapshot whose components reference outside the
    /// dataset (possible from a buggy or version-skewed writer, never
    /// from this one) must be rejected at load, not panic inside a
    /// query worker.
    #[test]
    fn out_of_range_references_are_rejected_at_load() {
        use atsq_grid::CellId;
        use atsq_types::{ActivityId, Trajectory, TrajectoryId};
        let d = dataset(5, 11);
        let built = GatIndex::build_with(&d, small_config()).unwrap();
        let leaf_level = small_config().grid_level;
        let grid = built.grid().clone();
        let tas = crate::tas::Tas::build(
            d.trajectories().iter().map(|tr| tr.all_activities()),
            small_config().tas_intervals,
        );

        // ITL posting pointing at trajectory 99 of a 5-trajectory set.
        let evil_itl = Itl::build(
            leaf_level,
            vec![(
                CellId {
                    level: leaf_level,
                    code: 0,
                },
                ActivityId(0),
                TrajectoryId(99),
            )],
        );
        let index = GatIndex::from_parts(
            small_config(),
            grid.clone(),
            Hicl::build(leaf_level, vec![]),
            evil_itl,
            tas.clone(),
            Apl::build(d.trajectories()),
        );
        let err = read_index(&write_index(&index, &d).unwrap(), &d)
            .unwrap_err()
            .to_string();
        assert!(err.contains("ITL references trajectory 99"), "{err}");

        // APL posting pointing past the end of its trajectory.
        let mut long = d.trajectories().to_vec();
        let mut points = long[0].points.clone();
        for _ in 0..8 {
            points.push(points[0].clone());
        }
        long[0] = Trajectory::new(TrajectoryId(0), points);
        let index = GatIndex::from_parts(
            small_config(),
            grid,
            Hicl::build(leaf_level, vec![]),
            Itl::build(leaf_level, vec![]),
            tas,
            Apl::build(&long),
        );
        let err = read_index(&write_index(&index, &d).unwrap(), &d)
            .unwrap_err()
            .to_string();
        assert!(
            err.contains("APL of trajectory 0 references point"),
            "{err}"
        );
    }

    #[test]
    fn cache_load_or_build_falls_back_and_then_loads() {
        let d = dataset(30, 6);
        let cache = temp_cache("fallback");
        // Cold cache: builds and saves.
        let (built, outcome) = cache.load_or_build(&d, small_config()).unwrap();
        assert!(!outcome.loaded(), "{outcome:?}");
        // Warm cache: loads, answers identically.
        let (loaded, outcome) = cache.load_or_build(&d, small_config()).unwrap();
        assert!(outcome.loaded(), "{outcome:?}");
        assert_same_answers(&built, &loaded, &d);
        // Corrupt the snapshot on disk: next start falls back to a
        // fresh build (and repairs the snapshot).
        let path = cache.index_path(d.content_hash(), &small_config());
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (rebuilt, outcome) = cache.load_or_build(&d, small_config()).unwrap();
        match &outcome {
            CacheOutcome::Rebuilt(why) => {
                assert!(why.contains("checksum"), "{why}")
            }
            CacheOutcome::Loaded => panic!("corrupt snapshot must not load"),
        }
        assert_same_answers(&built, &rebuilt, &d);
        let (_, outcome) = cache.load_or_build(&d, small_config()).unwrap();
        assert!(outcome.loaded(), "repaired snapshot should load");
        // A different config cannot reuse the snapshot — and because
        // filenames carry a config digest, the two configurations
        // coexist in one directory instead of overwriting each other
        // on every alternating start.
        let other = GatConfig {
            grid_level: 6,
            memory_level: 4,
            ..GatConfig::default()
        };
        let (_, outcome) = cache.load_or_build(&d, other).unwrap();
        assert!(!outcome.loaded(), "{outcome:?}");
        let (_, outcome) = cache.load_or_build(&d, other).unwrap();
        assert!(outcome.loaded(), "second config now cached");
        let (_, outcome) = cache.load_or_build(&d, small_config()).unwrap();
        assert!(outcome.loaded(), "first config still cached");
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn sharded_cache_roundtrips_and_validates() {
        let d = dataset(40, 7);
        let cache = temp_cache("sharded");
        for partition in [Partition::Hash, Partition::Spatial] {
            let (built, outcome) = cache
                .load_or_build_sharded(&d, 3, partition, small_config())
                .unwrap();
            assert!(!outcome.loaded());
            let (loaded, outcome) = cache
                .load_or_build_sharded(&d, 3, partition, small_config())
                .unwrap();
            assert!(outcome.loaded(), "{outcome:?}");
            for q in queries(&d) {
                assert_eq!(built.atsq(&q, 5), loaded.atsq(&q, 5));
                assert_eq!(built.oatsq(&q, 5), loaded.oatsq(&q, 5));
            }
        }
        // A different shard count misses the cache and rebuilds.
        let (_, outcome) = cache
            .load_or_build_sharded(&d, 2, Partition::Hash, small_config())
            .unwrap();
        assert!(!outcome.loaded());
        // Deleting one shard file fails the strict load...
        let path = cache.shard_path(d.content_hash(), 2, Partition::Hash, &small_config(), 1);
        std::fs::remove_file(&path).unwrap();
        let err = cache
            .load_sharded(&d, 2, Partition::Hash, &small_config())
            .unwrap_err();
        assert!(err.to_string().contains("shard001"), "{err}");
        // ...while the fallback form rebuilds (and re-saves) only the
        // damaged shard, loading the intact one from its snapshot.
        let (engine, outcome) = cache
            .load_or_build_sharded(&d, 2, Partition::Hash, small_config())
            .unwrap();
        match &outcome {
            CacheOutcome::Rebuilt(why) => {
                assert!(why.contains("shard 1:"), "{why}");
                assert!(!why.contains("shard 0:"), "intact shard must load: {why}");
            }
            CacheOutcome::Loaded => panic!("a missing shard file cannot fully load"),
        }
        assert_eq!(engine.shard_count(), 2);
        let (_, outcome) = cache
            .load_or_build_sharded(&d, 2, Partition::Hash, small_config())
            .unwrap();
        assert!(outcome.loaded(), "repaired shard snapshot should load");
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    /// An unusable cache directory must not abort startup: the engine
    /// was built successfully, so it is returned with the save failure
    /// reported in the outcome — "worst cost is the build", even when
    /// the cache cannot be written.
    #[test]
    fn unwritable_cache_still_serves_the_built_engine() {
        let d = dataset(15, 10);
        // A *file* where the cache directory should be: create_dir_all
        // and every write under it fail, loads fail with NotFound-ish
        // errors — but the built engine must come back anyway.
        let blocker =
            std::env::temp_dir().join(format!("atsq-snapshot-blocked-{}", std::process::id()));
        std::fs::write(&blocker, b"not a directory").unwrap();
        let cache = IndexCache::new(&blocker);
        let (index, outcome) = cache.load_or_build(&d, small_config()).unwrap();
        assert_eq!(index.tas().len(), d.len());
        match &outcome {
            CacheOutcome::Rebuilt(why) => {
                assert!(why.contains("snapshot not saved"), "{why}")
            }
            CacheOutcome::Loaded => panic!("nothing to load"),
        }
        let (engine, outcome) = cache
            .load_or_build_sharded(&d, 2, Partition::Hash, small_config())
            .unwrap();
        assert_eq!(engine.shard_count(), 2);
        match &outcome {
            CacheOutcome::Rebuilt(why) => {
                assert!(why.contains("snapshot not saved"), "{why}")
            }
            CacheOutcome::Loaded => panic!("nothing to load"),
        }
        std::fs::remove_file(&blocker).ok();
    }

    #[test]
    fn inspect_reports_kind_and_entries_list_files() {
        let d = dataset(20, 8);
        let cache = temp_cache("inspect");
        assert!(cache.entries().unwrap().is_empty(), "cold cache is empty");
        let index = GatIndex::build_with(&d, small_config()).unwrap();
        let index_path = cache.save_index(&d, &index).unwrap();
        let engine = ShardedEngine::build_with(&d, 2, Partition::Hash, small_config()).unwrap();
        let paths = cache.save_sharded(&d, &engine).unwrap();
        assert_eq!(paths.len(), 3, "manifest + 2 shards");

        let info = inspect(&index_path).unwrap();
        assert_eq!(info.kind, "index");
        assert_eq!(info.version, SNAPSHOT_VERSION);
        assert_eq!(info.dataset_hash, d.content_hash());
        assert!(info.payload_bytes > 0);
        let info = inspect(&paths[0]).unwrap();
        assert_eq!(info.kind, "manifest");

        let entries = cache.entries().unwrap();
        assert_eq!(entries.len(), 4, "{entries:?}");
        // Inspect flags a non-snapshot file cleanly.
        let junk = cache.dir().join("junk.idx");
        std::fs::write(&junk, b"not a snapshot").unwrap();
        assert!(inspect(&junk).is_err());
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn paged_indexes_refuse_to_snapshot() {
        let d = dataset(10, 9);
        let index =
            GatIndex::build_paged(&d, small_config(), &crate::paged::PagedAplConfig::default())
                .unwrap();
        let err = write_index(&index, &d).unwrap_err();
        assert!(matches!(err, Error::InvalidConfig(_)), "{err}");
    }
}
