//! ITL — the Inverted Trajectory List (§IV).
//!
//! For each leaf cell of the d-Grid and each activity occurring in it,
//! the ITL lists the trajectories that perform the activity inside the
//! cell. It answers the leaf step of candidate retrieval: once the
//! best-first descent reaches a leaf cell, the trajectories listed
//! under the query activities become candidates.

use atsq_grid::CellId;
use atsq_types::{ActivityId, ActivitySet, TrajectoryId};
use std::collections::HashMap;

/// Inverted trajectory lists for all leaf cells.
#[derive(Debug, Clone, Default)]
pub struct Itl {
    cells: HashMap<u64, HashMap<ActivityId, Vec<TrajectoryId>>>,
    leaf_level: u8,
    postings: usize,
}

impl Itl {
    /// Builds the ITL from `(leaf cell, activity, trajectory)` triples;
    /// duplicates are tolerated.
    pub fn build(
        leaf_level: u8,
        occurrences: impl IntoIterator<Item = (CellId, ActivityId, TrajectoryId)>,
    ) -> Self {
        let mut cells: HashMap<u64, HashMap<ActivityId, Vec<TrajectoryId>>> = HashMap::new();
        for (cell, act, tr) in occurrences {
            assert_eq!(cell.level, leaf_level, "ITL keys are leaf cells");
            cells
                .entry(cell.code)
                .or_default()
                .entry(act)
                .or_default()
                .push(tr);
        }
        let mut postings = 0usize;
        for acts in cells.values_mut() {
            for list in acts.values_mut() {
                list.sort_unstable();
                list.dedup();
                postings += list.len();
            }
        }
        Itl {
            cells,
            leaf_level,
            postings,
        }
    }

    /// The leaf grid level these lists are keyed by.
    pub fn leaf_level(&self) -> u8 {
        self.leaf_level
    }

    /// Dynamically records one `(cell, activity, trajectory)` posting.
    /// Idempotent.
    pub fn insert(&mut self, cell: CellId, act: ActivityId, tr: TrajectoryId) {
        assert_eq!(cell.level, self.leaf_level);
        let list = self
            .cells
            .entry(cell.code)
            .or_default()
            .entry(act)
            .or_default();
        if let Err(pos) = list.binary_search(&tr) {
            list.insert(pos, tr);
            self.postings += 1;
        }
    }

    /// Trajectories containing `act` within `cell` (sorted, deduped).
    pub fn trajectories(&self, cell: CellId, act: ActivityId) -> &[TrajectoryId] {
        assert_eq!(cell.level, self.leaf_level);
        self.cells
            .get(&cell.code)
            .and_then(|acts| acts.get(&act))
            .map_or(&[][..], Vec::as_slice)
    }

    /// All activities present in `cell` (unsorted iteration order is
    /// hidden by returning a set).
    pub fn cell_activities(&self, cell: CellId) -> Option<ActivitySet> {
        assert_eq!(cell.level, self.leaf_level);
        self.cells
            .get(&cell.code)
            .map(|acts| ActivitySet::from_ids(acts.keys().copied()))
    }

    /// Number of non-empty leaf cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Total posting count (for memory accounting).
    pub fn posting_count(&self) -> usize {
        self.postings
    }

    /// Approximate heap footprint: 4 bytes per trajectory posting plus
    /// 12 bytes per (cell, activity) key pair.
    pub fn memory_bytes(&self) -> usize {
        let key_pairs: usize = self.cells.values().map(HashMap::len).sum();
        self.postings * 4 + key_pairs * 12
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsq_grid::morton_encode;

    fn cell(x: u32, y: u32) -> CellId {
        CellId {
            level: 3,
            code: morton_encode(x, y),
        }
    }

    #[test]
    fn build_and_lookup() {
        let itl = Itl::build(
            3,
            vec![
                (cell(1, 1), ActivityId(5), TrajectoryId(10)),
                (cell(1, 1), ActivityId(5), TrajectoryId(3)),
                (cell(1, 1), ActivityId(5), TrajectoryId(10)), // dup
                (cell(1, 1), ActivityId(6), TrajectoryId(4)),
                (cell(2, 2), ActivityId(5), TrajectoryId(8)),
            ],
        );
        assert_eq!(
            itl.trajectories(cell(1, 1), ActivityId(5)),
            &[TrajectoryId(3), TrajectoryId(10)]
        );
        assert_eq!(
            itl.trajectories(cell(2, 2), ActivityId(5)),
            &[TrajectoryId(8)]
        );
        assert!(itl.trajectories(cell(1, 1), ActivityId(9)).is_empty());
        assert!(itl.trajectories(cell(7, 7), ActivityId(5)).is_empty());
        assert_eq!(itl.cell_count(), 2);
        assert_eq!(itl.posting_count(), 4);
    }

    #[test]
    fn cell_activities_lists_keys() {
        let itl = Itl::build(
            3,
            vec![
                (cell(0, 0), ActivityId(2), TrajectoryId(0)),
                (cell(0, 0), ActivityId(7), TrajectoryId(1)),
            ],
        );
        assert_eq!(
            itl.cell_activities(cell(0, 0)),
            Some(ActivitySet::from_raw([2, 7]))
        );
        assert_eq!(itl.cell_activities(cell(5, 5)), None);
    }

    #[test]
    fn memory_bytes_tracks_postings() {
        let itl = Itl::build(
            3,
            vec![
                (cell(0, 0), ActivityId(1), TrajectoryId(0)),
                (cell(0, 0), ActivityId(1), TrajectoryId(1)),
            ],
        );
        // 2 postings * 4 + 1 key pair * 12.
        assert_eq!(itl.memory_bytes(), 20);
    }
}
