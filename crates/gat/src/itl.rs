//! ITL — the Inverted Trajectory List (§IV).
//!
//! For each leaf cell of the d-Grid and each activity occurring in it,
//! the ITL lists the trajectories that perform the activity inside the
//! cell. It answers the leaf step of candidate retrieval: once the
//! best-first descent reaches a leaf cell, the trajectories listed
//! under the query activities become candidates.

use atsq_grid::CellId;
use atsq_types::{ActivityId, ActivitySet, TrajectoryId};
use std::collections::HashMap;

/// Inverted trajectory lists for all leaf cells.
#[derive(Debug, Clone, Default)]
pub struct Itl {
    cells: HashMap<u64, HashMap<ActivityId, Vec<TrajectoryId>>>,
    leaf_level: u8,
    postings: usize,
}

impl Itl {
    /// Builds the ITL from `(leaf cell, activity, trajectory)` triples;
    /// duplicates are tolerated.
    pub fn build(
        leaf_level: u8,
        occurrences: impl IntoIterator<Item = (CellId, ActivityId, TrajectoryId)>,
    ) -> Self {
        let mut cells: HashMap<u64, HashMap<ActivityId, Vec<TrajectoryId>>> = HashMap::new();
        for (cell, act, tr) in occurrences {
            assert_eq!(cell.level, leaf_level, "ITL keys are leaf cells");
            cells
                .entry(cell.code)
                .or_default()
                .entry(act)
                .or_default()
                .push(tr);
        }
        let mut postings = 0usize;
        for acts in cells.values_mut() {
            for list in acts.values_mut() {
                list.sort_unstable();
                list.dedup();
                postings += list.len();
            }
        }
        Itl {
            cells,
            leaf_level,
            postings,
        }
    }

    /// The leaf grid level these lists are keyed by.
    pub fn leaf_level(&self) -> u8 {
        self.leaf_level
    }

    /// Dynamically records one `(cell, activity, trajectory)` posting.
    /// Idempotent.
    pub fn insert(&mut self, cell: CellId, act: ActivityId, tr: TrajectoryId) {
        assert_eq!(cell.level, self.leaf_level);
        let list = self
            .cells
            .entry(cell.code)
            .or_default()
            .entry(act)
            .or_default();
        if let Err(pos) = list.binary_search(&tr) {
            list.insert(pos, tr);
            self.postings += 1;
        }
    }

    /// Trajectories containing `act` within `cell` (sorted, deduped).
    pub fn trajectories(&self, cell: CellId, act: ActivityId) -> &[TrajectoryId] {
        assert_eq!(cell.level, self.leaf_level);
        self.cells
            .get(&cell.code)
            .and_then(|acts| acts.get(&act))
            .map_or(&[][..], Vec::as_slice)
    }

    /// All activities present in `cell` (unsorted iteration order is
    /// hidden by returning a set).
    pub fn cell_activities(&self, cell: CellId) -> Option<ActivitySet> {
        assert_eq!(cell.level, self.leaf_level);
        self.cells
            .get(&cell.code)
            .map(|acts| ActivitySet::from_ids(acts.keys().copied()))
    }

    /// Serializes the lists, cells in ascending code order and
    /// activities in ascending id order (deterministic bytes).
    pub fn encode(&self, out: &mut Vec<u8>) {
        use atsq_storage::codec::{put_ascending, put_varint, put_varint_u64};
        out.push(self.leaf_level);
        let mut codes: Vec<u64> = self.cells.keys().copied().collect();
        codes.sort_unstable();
        put_varint(out, codes.len() as u32);
        for code in codes {
            put_varint_u64(out, code);
            let acts_map = &self.cells[&code];
            let mut acts: Vec<ActivityId> = acts_map.keys().copied().collect();
            acts.sort_unstable();
            put_varint(out, acts.len() as u32);
            for a in acts {
                put_varint(out, a.0);
                let ids: Vec<u32> = acts_map[&a].iter().map(|t| t.0).collect();
                put_ascending(out, &ids);
            }
        }
    }

    /// Decodes [`Itl::encode`] output from `buf[*pos..]`, advancing
    /// `pos`. `None` on truncation or any violated invariant
    /// (duplicate keys, non-ascending trajectory lists).
    pub fn decode(buf: &[u8], pos: &mut usize) -> Option<Self> {
        use atsq_storage::codec::{get_ascending, get_varint, get_varint_u64};
        let leaf_level = *buf.get(*pos)?;
        *pos += 1;
        if leaf_level == 0 || leaf_level > atsq_grid::Grid::MAX_SUPPORTED_LEVEL {
            return None;
        }
        let n_cells = get_varint(buf, pos)? as usize;
        let mut cells: HashMap<u64, HashMap<ActivityId, Vec<TrajectoryId>>> =
            HashMap::with_capacity(n_cells.min(1 << 16));
        let mut postings = 0usize;
        for _ in 0..n_cells {
            let code = get_varint_u64(buf, pos)?;
            let n_acts = get_varint(buf, pos)? as usize;
            let mut acts: HashMap<ActivityId, Vec<TrajectoryId>> =
                HashMap::with_capacity(n_acts.min(1 << 16));
            for _ in 0..n_acts {
                let act = ActivityId(get_varint(buf, pos)?);
                let ids = get_ascending(buf, pos)?;
                // Lists are sorted + deduped, i.e. strictly ascending.
                if ids.windows(2).any(|w| w[0] >= w[1]) {
                    return None;
                }
                postings += ids.len();
                let list = ids.into_iter().map(TrajectoryId).collect();
                if acts.insert(act, list).is_some() {
                    return None; // duplicate activity under one cell
                }
            }
            if cells.insert(code, acts).is_some() {
                return None; // duplicate cell entry
            }
        }
        Some(Itl {
            cells,
            leaf_level,
            postings,
        })
    }

    /// The largest trajectory index any posting references, `None`
    /// when the lists are empty. Lists are ascending, so this is one
    /// pass over the last element of each. The snapshot loader uses
    /// it to reject decoded lists pointing outside the dataset.
    pub fn max_trajectory_index(&self) -> Option<usize> {
        self.cells
            .values()
            .flat_map(|acts| acts.values())
            .filter_map(|list| list.last())
            .map(|tr| tr.index())
            .max()
    }

    /// Number of non-empty leaf cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Total posting count (for memory accounting).
    pub fn posting_count(&self) -> usize {
        self.postings
    }

    /// Approximate heap footprint: 4 bytes per trajectory posting plus
    /// 12 bytes per (cell, activity) key pair.
    pub fn memory_bytes(&self) -> usize {
        let key_pairs: usize = self.cells.values().map(HashMap::len).sum();
        self.postings * 4 + key_pairs * 12
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsq_grid::morton_encode;

    fn cell(x: u32, y: u32) -> CellId {
        CellId {
            level: 3,
            code: morton_encode(x, y),
        }
    }

    #[test]
    fn build_and_lookup() {
        let itl = Itl::build(
            3,
            vec![
                (cell(1, 1), ActivityId(5), TrajectoryId(10)),
                (cell(1, 1), ActivityId(5), TrajectoryId(3)),
                (cell(1, 1), ActivityId(5), TrajectoryId(10)), // dup
                (cell(1, 1), ActivityId(6), TrajectoryId(4)),
                (cell(2, 2), ActivityId(5), TrajectoryId(8)),
            ],
        );
        assert_eq!(
            itl.trajectories(cell(1, 1), ActivityId(5)),
            &[TrajectoryId(3), TrajectoryId(10)]
        );
        assert_eq!(
            itl.trajectories(cell(2, 2), ActivityId(5)),
            &[TrajectoryId(8)]
        );
        assert!(itl.trajectories(cell(1, 1), ActivityId(9)).is_empty());
        assert!(itl.trajectories(cell(7, 7), ActivityId(5)).is_empty());
        assert_eq!(itl.cell_count(), 2);
        assert_eq!(itl.posting_count(), 4);
    }

    #[test]
    fn cell_activities_lists_keys() {
        let itl = Itl::build(
            3,
            vec![
                (cell(0, 0), ActivityId(2), TrajectoryId(0)),
                (cell(0, 0), ActivityId(7), TrajectoryId(1)),
            ],
        );
        assert_eq!(
            itl.cell_activities(cell(0, 0)),
            Some(ActivitySet::from_raw([2, 7]))
        );
        assert_eq!(itl.cell_activities(cell(5, 5)), None);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let itl = Itl::build(
            3,
            vec![
                (cell(1, 1), ActivityId(5), TrajectoryId(10)),
                (cell(1, 1), ActivityId(5), TrajectoryId(3)),
                (cell(1, 1), ActivityId(6), TrajectoryId(4)),
                (cell(2, 2), ActivityId(5), TrajectoryId(8)),
            ],
        );
        let mut buf = Vec::new();
        itl.encode(&mut buf);
        let mut pos = 0;
        let q = Itl::decode(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        assert_eq!(q.leaf_level(), 3);
        assert_eq!(q.cell_count(), itl.cell_count());
        assert_eq!(q.posting_count(), itl.posting_count());
        for (c, a) in [
            (cell(1, 1), ActivityId(5)),
            (cell(1, 1), ActivityId(6)),
            (cell(2, 2), ActivityId(5)),
            (cell(7, 7), ActivityId(5)),
        ] {
            assert_eq!(itl.trajectories(c, a), q.trajectories(c, a));
        }
        // Deterministic bytes despite HashMap internals.
        let mut again = Vec::new();
        itl.encode(&mut again);
        assert_eq!(buf, again);
        // Truncation fails cleanly at every prefix.
        for cut in 0..buf.len() {
            assert!(Itl::decode(&buf[..cut], &mut 0).is_none(), "cut={cut}");
        }
    }

    #[test]
    fn memory_bytes_tracks_postings() {
        let itl = Itl::build(
            3,
            vec![
                (cell(0, 0), ActivityId(1), TrajectoryId(0)),
                (cell(0, 0), ActivityId(1), TrajectoryId(1)),
            ],
        );
        // 2 postings * 4 + 1 key pair * 12.
        assert_eq!(itl.memory_bytes(), 20);
    }
}
