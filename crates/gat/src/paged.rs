//! The paged storage backends: posting lists and cold HICL levels on
//! real pages.
//!
//! The paper stores every APL "on disk due to its high space
//! requirement", along with the HICL levels above the memory budget,
//! and fetches both at query time (§IV). [`crate::apl::Apl`] models
//! that with a counter; the backends here do it for real:
//!
//! * [`PagedApl`] — each trajectory's posting lists are one record in
//!   an [`atsq_storage::RecordHeap`] behind an LRU [`BufferPool`],
//! * [`PagedColdHicl`] — each occupied cold cell's activity set is one
//!   record, fetched during the best-first descent below the memory
//!   level,
//!
//! backed by either memory pages or actual page files. Query results
//! are identical either way (the engine-agreement tests assert it);
//! what changes is that the buffer pools' hit/miss counters become
//! *measured* I/O instead of simulated.

use crate::apl::TrajectoryPostings;
use atsq_storage::{
    BufferPool, FilePageStore, MemPageStore, PageStore, PoolStats, RecordHeap, RecordId,
    StorageError, StorageResult, DEFAULT_PAGE_SIZE,
};
use atsq_types::{Error, Trajectory};
use std::borrow::Cow;
use std::fmt;
use std::path::PathBuf;

/// Where the APL pages live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PagedBacking {
    /// Pages in memory — page traffic is still counted by the pool, so
    /// experiments get measured fetch counts without filesystem churn.
    Memory,
    /// Pages in a file created (truncated) at this path.
    File(PathBuf),
}

/// Configuration of the paged APL backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PagedAplConfig {
    /// Page size in bytes (≥ 64).
    pub page_size: usize,
    /// Buffer-pool capacity in frames (≥ 1).
    pub pool_frames: usize,
    /// Backing medium.
    pub backing: PagedBacking,
}

impl Default for PagedAplConfig {
    fn default() -> Self {
        PagedAplConfig {
            page_size: DEFAULT_PAGE_SIZE,
            pool_frames: 64,
            backing: PagedBacking::Memory,
        }
    }
}

/// Converts a storage failure into the workspace error type.
pub(crate) fn storage_err(e: StorageError) -> Error {
    Error::Storage(e.to_string())
}

/// Posting lists stored as heap records behind a buffer pool.
pub struct PagedApl {
    heap: RecordHeap<Box<dyn PageStore>>,
    /// Record id of each trajectory's posting blob, by trajectory index.
    records: Vec<RecordId>,
}

impl fmt::Debug for PagedApl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PagedApl")
            .field("trajectories", &self.records.len())
            .field("pages", &self.heap.pool().page_count())
            .field("pool", &self.heap.pool().stats())
            .finish()
    }
}

impl PagedApl {
    /// Builds the paged APL for every trajectory.
    pub fn build<'a>(
        trajectories: impl IntoIterator<Item = &'a Trajectory>,
        config: &PagedAplConfig,
    ) -> StorageResult<Self> {
        let store: Box<dyn PageStore> = match &config.backing {
            PagedBacking::Memory => Box::new(MemPageStore::new(config.page_size)?),
            PagedBacking::File(path) => Box::new(FilePageStore::create(path, config.page_size)?),
        };
        // build_with_store flushes and zeroes the pool counters, so the
        // build cost is not charged to the first queries (and the file,
        // if any, is complete on disk).
        Self::build_with_store(trajectories, store, config.pool_frames)
    }

    /// Builds over a caller-supplied page store — the hook for
    /// fault-injection tests and exotic backends.
    pub fn build_with_store<'a>(
        trajectories: impl IntoIterator<Item = &'a Trajectory>,
        store: Box<dyn PageStore>,
        pool_frames: usize,
    ) -> StorageResult<Self> {
        let pool = BufferPool::new(store, pool_frames)?;
        let mut apl = PagedApl {
            heap: RecordHeap::new(pool),
            records: Vec::new(),
        };
        for tr in trajectories {
            apl.push(tr)?;
        }
        apl.heap.flush()?;
        apl.heap.pool().reset_stats();
        Ok(apl)
    }

    /// Appends the posting record of a newly indexed trajectory.
    pub fn push(&mut self, tr: &Trajectory) -> StorageResult<()> {
        let bytes = TrajectoryPostings::build(tr).to_bytes();
        let id = self.heap.append(&bytes)?;
        self.records.push(id);
        Ok(())
    }

    /// Fetches and decodes the posting lists of trajectory `idx`.
    pub fn get(&self, idx: usize) -> StorageResult<TrajectoryPostings> {
        let id = self.records[idx];
        let bytes = self.heap.get(id)?;
        TrajectoryPostings::from_bytes(&bytes).ok_or(StorageError::Corrupt {
            page: id.page,
            detail: format!("posting record of trajectory {idx} failed to decode"),
        })
    }

    /// Number of trajectories covered.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the backend is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Real on-page footprint.
    pub fn disk_bytes(&self) -> usize {
        self.heap.pool().page_count() as usize * self.heap.pool().page_size()
    }

    /// Buffer-pool counters (hits, misses, evictions, write-backs).
    pub fn pool_stats(&self) -> PoolStats {
        self.heap.pool().stats()
    }

    /// Resets the buffer-pool counters.
    pub fn reset_pool_stats(&self) {
        self.heap.pool().reset_stats();
    }
}

/// The cold HICL levels (`memory_level+1 ..= d`) on pages.
///
/// The paper keeps HICL levels above `h` on secondary storage (§IV).
/// This structure materialises each occupied cold cell's activity set
/// as one heap record; queries descending below the memory level fetch
/// through the buffer pool, so the "HICL cold read" of the simulated
/// cost model becomes measured page traffic. The in-memory [`Hicl`]
/// remains the build artifact and continues to serve the hot levels.
///
/// [`Hicl`]: crate::hicl::Hicl
pub struct PagedColdHicl {
    heap: RecordHeap<Box<dyn PageStore>>,
    /// `directory[level - first_level][cell code]` → record.
    directory: Vec<std::collections::HashMap<u64, RecordId>>,
    first_level: u8,
}

impl fmt::Debug for PagedColdHicl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PagedColdHicl")
            .field("first_level", &self.first_level)
            .field("levels", &self.directory.len())
            .field("pages", &self.heap.pool().page_count())
            .field("pool", &self.heap.pool().stats())
            .finish()
    }
}

impl PagedColdHicl {
    /// Pages the levels of `hicl` above `memory_level`. Returns `None`
    /// when every level is memory-resident.
    pub fn build(
        hicl: &crate::hicl::Hicl,
        memory_level: u8,
        config: &PagedAplConfig,
    ) -> StorageResult<Option<Self>> {
        let levels = hicl.levels();
        if memory_level >= levels {
            return Ok(None);
        }
        let first_level = memory_level + 1;
        let store: Box<dyn PageStore> = match &config.backing {
            PagedBacking::Memory => Box::new(MemPageStore::new(config.page_size)?),
            PagedBacking::File(path) => {
                let mut cold_path = path.clone();
                cold_path.as_mut_os_string().push(".hicl");
                Box::new(FilePageStore::create(&cold_path, config.page_size)?)
            }
        };
        let pool = BufferPool::new(store, config.pool_frames)?;
        let mut heap = RecordHeap::new(pool);
        let mut directory = Vec::with_capacity((levels - memory_level) as usize);
        let mut buf = Vec::new();
        for level in first_level..=levels {
            let mut map = std::collections::HashMap::new();
            for (code, acts) in hicl.level_entries(level) {
                buf.clear();
                let mut ids: Vec<u32> = acts.iter().map(|a| a.0).collect();
                ids.sort_unstable();
                atsq_storage::codec::put_ascending(&mut buf, &ids);
                map.insert(code, heap.append(&buf)?);
            }
            directory.push(map);
        }
        heap.flush()?;
        heap.pool().reset_stats();
        Ok(Some(PagedColdHicl {
            heap,
            directory,
            first_level,
        }))
    }

    /// First paged level (`memory_level + 1`).
    pub fn first_level(&self) -> u8 {
        self.first_level
    }

    /// Fetches and decodes the activity set of a cold cell; `None` for
    /// unoccupied cells.
    pub fn cell_activities(
        &self,
        cell: atsq_grid::CellId,
    ) -> StorageResult<Option<atsq_types::ActivitySet>> {
        debug_assert!(cell.level >= self.first_level, "cell is memory-resident");
        let Some(map) = self.directory.get((cell.level - self.first_level) as usize) else {
            return Ok(None);
        };
        let Some(&record) = map.get(&cell.code) else {
            return Ok(None);
        };
        let bytes = self.heap.get(record)?;
        let mut pos = 0;
        let ids = atsq_storage::codec::get_ascending(&bytes, &mut pos)
            .filter(|_| pos == bytes.len())
            .ok_or(StorageError::Corrupt {
                page: record.page,
                detail: format!(
                    "cold HICL record of cell {} at level {} failed to decode",
                    cell.code, cell.level
                ),
            })?;
        Ok(Some(atsq_types::ActivitySet::from_raw(ids)))
    }

    /// Buffer-pool counters of the cold store.
    pub fn pool_stats(&self) -> PoolStats {
        self.heap.pool().stats()
    }

    /// Resets the buffer-pool counters.
    pub fn reset_pool_stats(&self) {
        self.heap.pool().reset_stats();
    }

    /// Real on-page footprint of the cold levels.
    pub fn disk_bytes(&self) -> usize {
        self.heap.pool().page_count() as usize * self.heap.pool().page_size()
    }
}

/// The APL behind either backend, presenting one lookup interface.
#[derive(Debug)]
pub enum AplStorage {
    /// Posting lists in plain memory (`Apl`), with simulated I/O.
    Memory(crate::apl::Apl),
    /// Posting lists on pages behind a buffer pool.
    Paged(PagedApl),
}

impl AplStorage {
    /// The posting lists of trajectory `idx`. Borrowed for the memory
    /// backend; fetched, decoded and owned for the paged one.
    pub fn postings(&self, idx: usize) -> StorageResult<Cow<'_, TrajectoryPostings>> {
        match self {
            AplStorage::Memory(apl) => Ok(Cow::Borrowed(apl.trajectory(idx))),
            AplStorage::Paged(p) => Ok(Cow::Owned(p.get(idx)?)),
        }
    }

    /// Appends the posting lists of a newly indexed trajectory.
    pub fn push(&mut self, tr: &Trajectory) -> StorageResult<()> {
        match self {
            AplStorage::Memory(apl) => {
                apl.push(tr);
                Ok(())
            }
            AplStorage::Paged(p) => p.push(tr),
        }
    }

    /// Number of trajectories covered.
    pub fn len(&self) -> usize {
        match self {
            AplStorage::Memory(apl) => apl.len(),
            AplStorage::Paged(p) => p.len(),
        }
    }

    /// Whether no trajectory is covered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// On-disk footprint: simulated byte count for the memory backend,
    /// real page bytes for the paged one.
    pub fn disk_bytes(&self) -> usize {
        match self {
            AplStorage::Memory(apl) => apl.disk_bytes(),
            AplStorage::Paged(p) => p.disk_bytes(),
        }
    }

    /// Buffer-pool counters when paged, `None` for the memory backend.
    pub fn pool_stats(&self) -> Option<PoolStats> {
        match self {
            AplStorage::Memory(_) => None,
            AplStorage::Paged(p) => Some(p.pool_stats()),
        }
    }

    /// Resets the buffer-pool counters (no-op for the memory backend).
    pub fn reset_pool_stats(&self) {
        if let AplStorage::Paged(p) = self {
            p.reset_pool_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atsq_types::{ActivitySet, Point, TrajectoryId, TrajectoryPoint};

    fn tr(id: u32, points: Vec<(f64, Vec<u32>)>) -> Trajectory {
        Trajectory::new(
            TrajectoryId(id),
            points
                .into_iter()
                .map(|(x, acts)| {
                    TrajectoryPoint::new(Point::new(x, 0.0), ActivitySet::from_raw(acts))
                })
                .collect(),
        )
    }

    fn sample() -> Vec<Trajectory> {
        (0..20)
            .map(|i| {
                let pts = (0..(5 + i % 7))
                    .map(|j| (j as f64, vec![j % 4, (i + j) % 6]))
                    .collect();
                tr(i, pts)
            })
            .collect()
    }

    #[test]
    fn paged_matches_in_memory_postings() {
        let trs = sample();
        let cfg = PagedAplConfig {
            page_size: 128, // force chaining & multiple pages
            pool_frames: 2,
            backing: PagedBacking::Memory,
        };
        let paged = PagedApl::build(trs.iter(), &cfg).unwrap();
        for (idx, t) in trs.iter().enumerate() {
            let mem = TrajectoryPostings::build(t);
            let disk = paged.get(idx).unwrap();
            for a in 0..8u32 {
                assert_eq!(
                    mem.postings(atsq_types::ActivityId(a)),
                    disk.postings(atsq_types::ActivityId(a)),
                    "trajectory {idx} activity {a}"
                );
            }
        }
    }

    #[test]
    fn build_resets_pool_stats() {
        let trs = sample();
        let paged = PagedApl::build(trs.iter(), &PagedAplConfig::default()).unwrap();
        assert_eq!(paged.pool_stats(), PoolStats::default());
        // The pool stays warm after the build, so this access is a hit;
        // either way it must now be counted.
        let _ = paged.get(0).unwrap();
        let s = paged.pool_stats();
        assert_eq!(s.hits + s.misses, 1);

        // A one-frame pool cannot stay warm: accesses miss.
        let cold = PagedApl::build(
            trs.iter(),
            &PagedAplConfig {
                page_size: 128,
                pool_frames: 1,
                backing: PagedBacking::Memory,
            },
        )
        .unwrap();
        let _ = cold.get(0).unwrap();
        let _ = cold.get(5).unwrap();
        assert!(cold.pool_stats().misses > 0);
    }

    #[test]
    fn file_backing_roundtrips() {
        let dir = std::env::temp_dir().join("atsq-gat-paged-apl");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("apl.pages");
        let trs = sample();
        let cfg = PagedAplConfig {
            page_size: 256,
            pool_frames: 4,
            backing: PagedBacking::File(path.clone()),
        };
        let paged = PagedApl::build(trs.iter(), &cfg).unwrap();
        let mem = TrajectoryPostings::build(&trs[7]);
        let disk = paged.get(7).unwrap();
        assert_eq!(
            mem.postings(atsq_types::ActivityId(1)),
            disk.postings(atsq_types::ActivityId(1))
        );
        assert!(path.metadata().unwrap().len() > 0);
        drop(paged);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn cold_hicl_roundtrips_cell_activity_sets() {
        use crate::hicl::Hicl;
        use atsq_grid::{CellId, Grid};
        use atsq_types::{ActivityId, Rect};

        let grid = Grid::new(Rect::from_bounds(0.0, 0.0, 16.0, 16.0), 4);
        let mut occurrences = Vec::new();
        for i in 0..40u32 {
            let p = Point::new((i % 16) as f64 + 0.5, (i / 4) as f64 + 0.5);
            occurrences.push((ActivityId(i % 6), grid.leaf_cell_of(&p)));
        }
        let hicl = Hicl::build(4, occurrences.clone());

        let cold = PagedColdHicl::build(
            &hicl,
            2,
            &PagedAplConfig {
                page_size: 128,
                pool_frames: 2,
                backing: PagedBacking::Memory,
            },
        )
        .unwrap()
        .expect("levels 3..=4 are cold");
        assert_eq!(cold.first_level(), 3);
        assert!(cold.disk_bytes() > 0);

        // Every occupied cold cell decodes to the in-memory set.
        for level in 3..=4u8 {
            for (code, acts) in hicl.level_entries(level) {
                let cell = CellId { level, code };
                let got = cold.cell_activities(cell).unwrap().expect("occupied");
                let mut want: Vec<u32> = acts.iter().map(|a| a.0).collect();
                want.sort_unstable();
                let mut have: Vec<u32> = got.iter().map(|a| a.0).collect();
                have.sort_unstable();
                assert_eq!(have, want, "level {level} cell {code}");
            }
        }
        // Unoccupied cells answer None, not an error.
        let empty = CellId {
            level: 4,
            code: u64::MAX >> 8,
        };
        assert!(cold.cell_activities(empty).unwrap().is_none());
    }

    #[test]
    fn cold_hicl_none_when_all_levels_hot() {
        use crate::hicl::Hicl;
        let hicl = Hicl::build(3, Vec::new());
        assert!(PagedColdHicl::build(&hicl, 3, &PagedAplConfig::default())
            .unwrap()
            .is_none());
    }

    #[test]
    fn apl_storage_unifies_backends() {
        let trs = sample();
        let mut mem = AplStorage::Memory(crate::apl::Apl::build(trs.iter()));
        let mut paged =
            AplStorage::Paged(PagedApl::build(trs.iter(), &PagedAplConfig::default()).unwrap());
        assert_eq!(mem.len(), paged.len());
        assert!(mem.pool_stats().is_none());
        assert!(paged.pool_stats().is_some());

        let extra = tr(20, vec![(1.0, vec![3])]);
        mem.push(&extra).unwrap();
        paged.push(&extra).unwrap();
        let a = atsq_types::ActivityId(3);
        assert_eq!(
            mem.postings(20).unwrap().postings(a),
            paged.postings(20).unwrap().postings(a)
        );
        assert!(mem.disk_bytes() > 0);
        assert!(paged.disk_bytes() > 0);
    }
}
