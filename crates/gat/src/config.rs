//! GAT configuration parameters.

use atsq_types::{Error, Result};

/// Tuning knobs of the GAT index and its search loop.
///
/// Defaults follow the paper's experimental settings (§VII-A): a
/// `d = 8` grid (256×256 cells) with HICL levels 1–6 in main memory and
/// the two finest levels "on disk".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatConfig {
    /// Grid depth `d`: the finest level has `2^d × 2^d` cells.
    pub grid_level: u8,
    /// HICL levels `1..=memory_level` are counted as main-memory
    /// resident; deeper levels charge a cold fetch per access (the
    /// paper stores them on hard disk).
    pub memory_level: u8,
    /// Number of intervals `M` in each trajectory activity sketch.
    pub tas_intervals: usize,
    /// Candidate batch size `λ`: each retrieval round gathers at least
    /// this many fresh candidates before re-checking termination.
    pub lambda: usize,
    /// Number of nearest unvisited cells `m` tracked per query point
    /// for the Algorithm-2 lower bound.
    pub lb_cells: usize,
    /// Ablation switch: when false, candidates skip the TAS sketch
    /// check and go straight to the APL (always correct, just slower).
    pub use_tas: bool,
    /// Ablation switch: when false, the search uses the loose lower
    /// bound (the raw `mdist` of the priority queue's top entry, §V-B's
    /// "straightforward approach") instead of Algorithm 2.
    pub tight_lower_bound: bool,
}

impl Default for GatConfig {
    fn default() -> Self {
        GatConfig {
            grid_level: 8,
            memory_level: 6,
            tas_intervals: 4,
            lambda: 32,
            lb_cells: 8,
            use_tas: true,
            tight_lower_bound: true,
        }
    }
}

impl GatConfig {
    /// Validates parameter consistency.
    pub fn validate(&self) -> Result<()> {
        if self.grid_level == 0 || self.grid_level > 16 {
            return Err(Error::InvalidConfig(format!(
                "grid_level {} outside 1..=16",
                self.grid_level
            )));
        }
        if self.memory_level > self.grid_level {
            return Err(Error::InvalidConfig(format!(
                "memory_level {} exceeds grid_level {}",
                self.memory_level, self.grid_level
            )));
        }
        if self.tas_intervals == 0 {
            return Err(Error::InvalidConfig("tas_intervals must be ≥ 1".into()));
        }
        if self.lambda == 0 {
            return Err(Error::InvalidConfig("lambda must be ≥ 1".into()));
        }
        if self.lb_cells == 0 {
            return Err(Error::InvalidConfig("lb_cells must be ≥ 1".into()));
        }
        Ok(())
    }

    /// A copy of this configuration with the grid depth tuned to an
    /// index over `points` trajectory points: the smallest depth `d`
    /// whose finest level has at least as many cells as points
    /// (`4^d ≥ points`), clamped to `[min(3, grid_level), grid_level]`.
    ///
    /// A shard holding 1/S of the data gains nothing from the full
    /// base depth — its leaf cells would be mostly empty while every
    /// traversal still pays the full descent — so per-shard indexes
    /// build with this tuned depth. `memory_level` is clamped along.
    ///
    /// Deliberately pure integer arithmetic: the snapshot loader
    /// recomputes the tuned configuration from the recomputed shard
    /// subset and must land on exactly the same value the build did.
    pub fn tuned_for_points(&self, points: usize) -> GatConfig {
        let floor = self.grid_level.min(3);
        let mut d = floor;
        // 4^16 fits comfortably in u64; grid_level ≤ 16 by validate().
        while d < self.grid_level && (1u64 << (2 * u32::from(d))) < points as u64 {
            d += 1;
        }
        GatConfig {
            grid_level: d,
            memory_level: self.memory_level.min(d),
            ..*self
        }
    }

    /// The paper's estimate of the deepest level that fits a memory
    /// budget of `budget_bytes` given vocabulary cardinality `c`:
    /// `h = log4(3B / 4C + 1)` (§IV, HICL storage discussion).
    pub fn memory_level_for_budget(budget_bytes: usize, c: usize) -> u8 {
        if c == 0 {
            return 1;
        }
        let b = budget_bytes as f64;
        let h = ((3.0 * b) / (4.0 * c as f64) + 1.0).log(4.0).floor();
        (h.max(1.0) as u8).min(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_settings() {
        let c = GatConfig::default();
        assert_eq!(c.grid_level, 8);
        assert_eq!(c.memory_level, 6);
        c.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let bad = [
            GatConfig {
                grid_level: 0,
                ..GatConfig::default()
            },
            GatConfig {
                memory_level: 12,
                ..GatConfig::default()
            },
            GatConfig {
                tas_intervals: 0,
                ..GatConfig::default()
            },
            GatConfig {
                lambda: 0,
                ..GatConfig::default()
            },
            GatConfig {
                lb_cells: 0,
                ..GatConfig::default()
            },
        ];
        for c in bad {
            assert!(c.validate().is_err(), "{c:?} should be invalid");
        }
    }

    #[test]
    fn tuned_depth_tracks_point_volume() {
        let base = GatConfig::default(); // grid_level 8, memory_level 6
                                         // Tiny shards clamp to the floor of 3.
        assert_eq!(base.tuned_for_points(0).grid_level, 3);
        assert_eq!(base.tuned_for_points(64).grid_level, 3);
        // 4^3 = 64 < 65 → depth 4.
        assert_eq!(base.tuned_for_points(65).grid_level, 4);
        // 4^5 = 1024 holds 1000 points.
        assert_eq!(base.tuned_for_points(1000).grid_level, 5);
        // Huge shards cap at the base depth.
        let big = base.tuned_for_points(1 << 30);
        assert_eq!(big.grid_level, 8);
        assert_eq!(big, base, "at the cap the config is unchanged");
        // memory_level never exceeds the tuned depth.
        let tuned = base.tuned_for_points(100);
        assert!(tuned.memory_level <= tuned.grid_level);
        tuned.validate().unwrap();
        // Shallow base configs are preserved (floor = min(3, d)).
        let shallow = GatConfig {
            grid_level: 2,
            memory_level: 2,
            ..base
        };
        assert_eq!(shallow.tuned_for_points(10).grid_level, 2);
        // Determinism: same input, same output.
        assert_eq!(base.tuned_for_points(777), base.tuned_for_points(777));
    }

    #[test]
    fn memory_level_formula() {
        // h = log4(3B/(4C) + 1): with B = 4C, h = log4(4) = 1.
        assert_eq!(GatConfig::memory_level_for_budget(4000, 1000), 1);
        // Larger budgets unlock deeper levels monotonically.
        let a = GatConfig::memory_level_for_budget(1 << 20, 1000);
        let b = GatConfig::memory_level_for_budget(1 << 26, 1000);
        assert!(b >= a);
        assert_eq!(GatConfig::memory_level_for_budget(1000, 0), 1);
    }
}
