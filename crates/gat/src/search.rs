//! The GAT search algorithm (§V, §VI): Algorithm 1's retrieve /
//! validate / refine loop, the §V-A best-first candidate retrieval, the
//! Algorithm-2 lower bound for unseen trajectories, and the ATSQ /
//! OATSQ entry points.

use crate::config::GatConfig;
use crate::index::GatIndex;
use crate::kernel::ScoreScratch;
use atsq_grid::{CellId, Grid};
use atsq_matching::order_match::{min_order_match_distance, order_feasible};
use atsq_matching::point_match::{dmpm_from_sorted, CandidatePoint, QueryMask};
use atsq_model::atomic::{AtomicU64, Ordering as AtomicOrdering};
use atsq_types::{
    rank_top_k, ActivityId, ActivitySet, Dataset, Query, QueryResult, Result, TrajectoryId,
};
use std::borrow::Cow;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What the §V-A candidate retrieval needs from an index: the grid
/// geometry, the HICL descent and the leaf-cell ITL harvest — but
/// *not* the per-trajectory verification structures (TAS/APL).
///
/// Implemented by the full [`GatIndex`] (the single-index search) and
/// by the sharded engine's lightweight router index
/// ([`crate::router::RouterIndex`]), which owns only these components
/// and lets one traversal feed every shard's verification.
pub(crate) trait CandidateSource {
    /// The configuration governing grid depth and retrieval knobs.
    fn config(&self) -> &GatConfig;
    /// The hierarchical grid.
    fn grid(&self) -> &Grid;
    /// Trajectories performing `act` inside leaf cell `cell`.
    fn itl_trajectories(&self, cell: CellId, act: ActivityId) -> &[TrajectoryId];
    /// Activities present in `cell`, with cold-read accounting.
    fn cell_activities(&self, cell: CellId) -> Result<Option<Cow<'_, ActivitySet>>>;
    /// Children of `cell` containing any wanted activity, with
    /// cold-read accounting.
    fn children_with_any(&self, cell: CellId, wanted: &ActivitySet) -> Result<Vec<CellId>>;
}

impl CandidateSource for GatIndex {
    fn config(&self) -> &GatConfig {
        GatIndex::config(self)
    }
    fn grid(&self) -> &Grid {
        GatIndex::grid(self)
    }
    fn itl_trajectories(&self, cell: CellId, act: ActivityId) -> &[TrajectoryId] {
        self.itl().trajectories(cell, act)
    }
    fn cell_activities(&self, cell: CellId) -> Result<Option<Cow<'_, ActivitySet>>> {
        GatIndex::cell_activities(self, cell)
    }
    fn children_with_any(&self, cell: CellId, wanted: &ActivitySet) -> Result<Vec<CellId>> {
        GatIndex::children_with_any(self, cell, wanted)
    }
}

/// A shared, monotonically tightening upper bound on the distance any
/// result still has to beat — the cross-shard generalisation of the
/// `Dkmm` pruning bound of Algorithm 1.
///
/// Injected into [`try_atsq_with_bound`] / [`try_oatsq_with_bound`],
/// the bound carries the best `k`-th-best distance *published by any
/// participant* (shard), so one shard's full top-k heap tightens every
/// other shard's termination test and OATSQ early exit. Soundness: the
/// search loops only use the bound through `min(local kth, shared)`,
/// and every published value is the k-th smallest distance of `k` real
/// trajectories — an upper bound on the final global k-th best — so
/// anything pruned against it is *strictly* worse than the global
/// answer set (the loops prune strictly, which also keeps
/// tie-breaking identical to the single-index path).
///
/// Encoding: distances are non-negative, and IEEE-754 orders
/// non-negative doubles identically to their raw bit patterns, so the
/// bound lives in an `AtomicU64` tightened with lock-free `fetch_min`.
#[derive(Debug)]
pub struct SharedKthBound(AtomicU64);

impl Default for SharedKthBound {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedKthBound {
    /// A fresh bound at `+∞` (prunes nothing until tightened).
    pub fn new() -> Self {
        SharedKthBound(AtomicU64::new(f64::INFINITY.to_bits()))
    }

    /// The tightest distance published so far.
    pub fn get(&self) -> f64 {
        // ordering: Relaxed — the bound's bits are the whole payload
        // (no other memory is published alongside it), and any
        // monotone, possibly-stale value is a *conservative* prune
        // threshold: a late-arriving tighter bound only delays
        // pruning, never causes a wrong result.
        f64::from_bits(self.0.load(AtomicOrdering::Relaxed))
    }

    /// Publishes a candidate bound; the stored value only decreases.
    pub fn tighten(&self, dist: f64) {
        debug_assert!(dist >= 0.0, "distances are non-negative");
        // ordering: Relaxed — fetch_min's read-modify-write atomicity
        // keeps the value monotone non-increasing on its own; readers
        // need no happens-before edge because the value itself is the
        // entire message (see `get`).
        self.0.fetch_min(dist.to_bits(), AtomicOrdering::Relaxed);
    }
}

/// Total-ordering wrapper for f64 priorities (never NaN here).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).unwrap_or(Ordering::Equal)
    }
}

/// Priority-queue entry of the §V-A retrieval: `(mdist, cell, qi)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PqEntry {
    mdist: OrdF64,
    cell: CellId,
    q_idx: usize,
}

impl PartialOrd for PqEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PqEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for a min-heap on mdist.
        other
            .mdist
            .cmp(&self.mdist)
            .then_with(|| other.cell.cmp(&self.cell))
            .then_with(|| other.q_idx.cmp(&self.q_idx))
    }
}

/// Best-first candidate retrieval with the Algorithm-2 lower bound,
/// generic over the [`CandidateSource`] the traversal runs against.
pub(crate) struct Retrieval<'a, S: CandidateSource> {
    source: &'a S,
    query: &'a Query,
    pq: BinaryHeap<PqEntry>,
    /// Per query point: ALL unvisited frontier cells (pushed but not
    /// yet popped), sorted ascending by mdist. The paper's `cellsn(qi)`
    /// is the `lb_cells`-prefix of this list; keeping the full list is
    /// what makes the Theorem-1 argument sound — truncating at insert
    /// time can leave the kept prefix *smaller* than cells discarded
    /// earlier once pops shrink it, silently inflating the bound.
    frontier: Vec<Vec<(f64, CellId)>>,
    seen: Vec<bool>,
}

impl<'a, S: CandidateSource> Retrieval<'a, S> {
    /// Seeds the traversal. `n_trajectories` sizes the dedup bitmap —
    /// the trajectory-id space the source's ITL draws from.
    pub(crate) fn new(source: &'a S, n_trajectories: usize, query: &'a Query) -> Result<Self> {
        let m = query.points.len();
        let mut pq = BinaryHeap::new();
        let mut frontier = vec![Vec::new(); m];

        // Seed: all level-1 cells containing any activity of qi.Φ.
        for (q_idx, q) in query.points.iter().enumerate() {
            let root = CellId::ROOT;
            let mut seeds = source.children_with_any(root, &q.activities)?;
            seeds.sort_unstable();
            for cell in seeds {
                let mdist = source.grid().min_dist(cell, &q.loc);
                pq.push(PqEntry {
                    mdist: OrdF64(mdist),
                    cell,
                    q_idx,
                });
                insert_frontier(&mut frontier[q_idx], mdist, cell);
            }
        }

        Ok(Retrieval {
            source,
            query,
            pq,
            frontier,
            seen: vec![false; n_trajectories],
        })
    }

    /// Dequeues cells until at least `lambda` fresh candidates are
    /// collected (or the queue empties). Returns the new candidates;
    /// the *caller* charges `record_candidate` per returned id, on
    /// whichever index owns the candidate's verification.
    pub(crate) fn retrieve_batch(&mut self, lambda: usize) -> Result<Vec<TrajectoryId>> {
        let mut out = Vec::new();
        let leaf_level = self.source.config().grid_level;
        while out.len() < lambda {
            let Some(entry) = self.pq.pop() else { break };
            let q = &self.query.points[entry.q_idx];
            remove_frontier(&mut self.frontier[entry.q_idx], entry.mdist.0, entry.cell);
            if entry.cell.level < leaf_level {
                // Descend: children containing any query activity.
                for child in self.source.children_with_any(entry.cell, &q.activities)? {
                    let mdist = self.source.grid().min_dist(child, &q.loc);
                    self.pq.push(PqEntry {
                        mdist: OrdF64(mdist),
                        cell: child,
                        q_idx: entry.q_idx,
                    });
                    insert_frontier(&mut self.frontier[entry.q_idx], mdist, child);
                }
            } else {
                // Leaf: harvest the ITL under each query activity.
                for a in q.activities.iter() {
                    for &tr in self.source.itl_trajectories(entry.cell, a) {
                        if !self.seen[tr.index()] {
                            self.seen[tr.index()] = true;
                            out.push(tr);
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    pub(crate) fn exhausted(&self) -> bool {
        self.pq.is_empty()
    }

    /// The loose §V-B bound: the raw `mdist` of the queue's top entry,
    /// which lower-bounds `Dmpm` of *one* query point of any unseen
    /// trajectory and hence `Dmm` as a whole. Used by the ablation
    /// configuration with `tight_lower_bound = false`.
    fn loose_lower_bound(&self) -> f64 {
        self.pq.peek().map_or(f64::INFINITY, |e| e.mdist.0)
    }

    /// Algorithm 2: lower bound on `Dmm(Q, Tr)` over all unseen
    /// trajectories. Per query point, the nearest frontier cells are
    /// materialised as "virtual points" carrying the *entire* activity
    /// set of their cell at `mdist`; the minimum point match over that
    /// virtual trajectory lower-bounds the true `Dmpm` of anything not
    /// yet retrieved, capped by the distance of the last tracked cell
    /// when the frontier list was truncated.
    pub(crate) fn lower_bound(&self) -> Result<f64> {
        if !self.source.config().tight_lower_bound {
            return Ok(self.loose_lower_bound());
        }
        let m = self.source.config().lb_cells;
        let mut total = 0.0f64;
        for (q_idx, q) in self.query.points.iter().enumerate() {
            let cells = &self.frontier[q_idx];
            if cells.is_empty() {
                // The frontier is exact (every pushed cell stays until
                // popped), so emptiness means no unvisited cell can
                // contain qi's activities: no unseen trajectory
                // matches qi at all.
                return Ok(f64::INFINITY);
            }
            // The paper's cellsn(qi): the m nearest unvisited cells.
            let head = &cells[..m.min(cells.len())];
            let qmask = QueryMask::new(&q.activities);
            let mut virtual_points = Vec::with_capacity(head.len());
            for &(mdist, cell) in head {
                if let Some(acts) = self.source.cell_activities(cell)? {
                    let mask = qmask.cover_mask(&acts);
                    if mask != 0 {
                        virtual_points.push(CandidatePoint { dist: mdist, mask });
                    }
                }
            }
            // head is already ascending by mdist.
            let dmpm = dmpm_from_sorted(&qmask, &virtual_points);
            // Cells beyond the m-th are all at least as far as the
            // m-th: any match hiding entirely among them costs at
            // least that much. Only applies when such cells exist.
            let cap = if cells.len() > m {
                cells[m].0
            } else {
                f64::INFINITY
            };
            let dilb = match dmpm {
                Some(v) => v.min(cap),
                None => cap,
            };
            if dilb.is_infinite() {
                return Ok(f64::INFINITY);
            }
            total += dilb;
        }
        Ok(total)
    }
}

fn insert_frontier(list: &mut Vec<(f64, CellId)>, mdist: f64, cell: CellId) {
    let pos = list.partition_point(|&(d, _)| d <= mdist);
    list.insert(pos, (mdist, cell));
}

/// Removes one frontier entry. The popped entry's exact mdist is known
/// to the caller, so locate its distance run by binary search and scan
/// only within it.
fn remove_frontier(list: &mut Vec<(f64, CellId)>, mdist: f64, cell: CellId) {
    let start = list.partition_point(|&(d, _)| d < mdist);
    for pos in start..list.len() {
        if list[pos].1 == cell {
            list.remove(pos);
            return;
        }
        if list[pos].0 > mdist {
            break;
        }
    }
}

/// Bounded max-heap tracking the current k-th best distance.
///
/// The heap's content is a pure function of the *set* of offered
/// `(dist, id)` pairs — the k smallest under the `(dist, id)` order —
/// so any evaluation order, and any extra offers of pairs worse than
/// the final k-th, produce the same results. The sharded engine's
/// shared-traversal path leans on exactly this property.
pub(crate) struct TopK {
    k: usize,
    heap: BinaryHeap<(OrdF64, TrajectoryId)>,
}

impl TopK {
    pub(crate) fn new(k: usize) -> Self {
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    pub(crate) fn offer(&mut self, dist: f64, tr: TrajectoryId) {
        self.heap.push((OrdF64(dist), tr));
        if self.heap.len() > self.k {
            self.heap.pop();
        }
    }

    /// Current k-th smallest distance (`∞` until k results exist).
    pub(crate) fn kth(&self) -> f64 {
        if self.heap.len() == self.k {
            self.heap.peek().map_or(f64::INFINITY, |&(d, _)| d.0)
        } else {
            f64::INFINITY
        }
    }

    pub(crate) fn into_results(self) -> Vec<QueryResult> {
        self.heap
            .into_iter()
            .map(|(d, tr)| QueryResult::new(tr, d.0))
            .collect()
    }
}

/// Validates a candidate and computes `Dmm` through the index's TAS and
/// APL (the §V-C / §V-D pipeline). Returns `Ok(None)` for invalid
/// candidates; `Err` only on a paged-APL storage failure.
///
/// Candidate-point scoring runs through the SoA batch kernel in
/// `scratch` — bit-identical to the scalar reference (see
/// [`crate::kernel`]) but allocation-free and autovectorizable.
pub(crate) fn evaluate_atsq(
    index: &GatIndex,
    dataset: &Dataset,
    query: &Query,
    all_acts: &ActivitySet,
    tr: TrajectoryId,
    scratch: &mut ScoreScratch,
) -> Result<Option<f64>> {
    if index.config().use_tas {
        index.stats().record_tas_check();
        if !index.tas().sketch(tr.index()).covers(all_acts) {
            return Ok(None);
        }
    }
    let postings = index.postings(tr.index())?;
    if !postings.contains_all(all_acts) {
        if index.config().use_tas {
            index.stats().record_tas_false_positive();
        }
        return Ok(None);
    }
    index.stats().record_distance();
    let points = &dataset.trajectory(tr).points;
    let mut total = 0.0;
    for q in &query.points {
        let qmask = QueryMask::new(&q.activities);
        postings.candidate_indexes_into(&q.activities, &mut scratch.indexes);
        let cp = scratch.score(&q.loc, &qmask, points);
        match dmpm_from_sorted(&qmask, cp) {
            Some(d) => total += d,
            None => return Ok(None),
        }
    }
    Ok(Some(total))
}

/// Validates a candidate for OATSQ (TAS → APL → MIB) and computes
/// `Dmom` with the `Dkmom` early exit.
pub(crate) fn evaluate_oatsq(
    index: &GatIndex,
    dataset: &Dataset,
    query: &Query,
    all_acts: &ActivitySet,
    tr: TrajectoryId,
    dk: f64,
) -> Result<Option<f64>> {
    if index.config().use_tas {
        index.stats().record_tas_check();
        if !index.tas().sketch(tr.index()).covers(all_acts) {
            return Ok(None);
        }
    }
    let postings = index.postings(tr.index())?;
    if !postings.contains_all(all_acts) {
        if index.config().use_tas {
            index.stats().record_tas_false_positive();
        }
        return Ok(None);
    }
    let points = &dataset.trajectory(tr).points;
    // MIB filter (§VI-B) before the expensive dynamic program.
    if !order_feasible(query, points) {
        return Ok(None);
    }
    index.stats().record_distance();
    Ok(min_order_match_distance(query, points, dk))
}

/// Runs Algorithm 1 with a pluggable candidate evaluator and an
/// optional externally shared pruning bound.
///
/// When `bound` is present, every pruning decision — the evaluator's
/// `Dkmom` early exit and the Algorithm-1 termination test — uses
/// `min(local k-th best, bound)`, and the local k-th best is published
/// back whenever it improves. With `None` the loop is exactly the
/// paper's single-index Algorithm 1.
fn search_loop(
    index: &GatIndex,
    dataset: &Dataset,
    query: &Query,
    k: usize,
    bound: Option<&SharedKthBound>,
    mut evaluate: impl FnMut(TrajectoryId, f64) -> Result<Option<f64>>,
) -> Result<Vec<QueryResult>> {
    if k == 0 || dataset.is_empty() {
        return Ok(Vec::new());
    }
    let mut retrieval = Retrieval::new(index, dataset.len(), query)?;
    let mut top = TopK::new(k);
    let lambda = index.config().lambda;
    let effective = |local: f64| bound.map_or(local, |b| local.min(b.get()));

    // Entry check: a bound inherited from other shards may already
    // beat everything this index could contribute (its lower bound
    // covers ALL its trajectories before the first retrieval), in
    // which case the whole search is skipped — this is what makes a
    // far shard nearly free once a near shard has published its top-k.
    if let Some(b) = bound {
        if b.get() < retrieval.lower_bound()? {
            return Ok(Vec::new());
        }
    }

    loop {
        let batch = retrieval.retrieve_batch(lambda)?;
        for tr in batch {
            index.stats().record_candidate();
            if let Some(dist) = evaluate(tr, effective(top.kth()))? {
                top.offer(dist, tr);
                if let Some(b) = bound {
                    // kth() is +∞ until the heap fills; tighten is a
                    // no-op then, so publish unconditionally.
                    b.tighten(top.kth());
                }
            }
        }
        if retrieval.exhausted() {
            break;
        }
        // Termination: the k-th best beats anything still unseen.
        let dlb = retrieval.lower_bound()?;
        if effective(top.kth()) < dlb {
            break;
        }
    }
    Ok(rank_top_k(top.into_results(), k))
}

/// Range variant of the search loop: every trajectory within `tau`.
///
/// A present `bound` tightens the cutoff to `min(tau, bound)`; callers
/// injecting one promise that results beyond the bound are not wanted
/// (for a sharded range query `tau` is already global, so the sharded
/// engine passes `None` — the hook exists for callers imposing an
/// extra result-distance budget).
fn range_loop(
    index: &GatIndex,
    dataset: &Dataset,
    query: &Query,
    tau: f64,
    bound: Option<&SharedKthBound>,
    mut evaluate: impl FnMut(TrajectoryId, f64) -> Result<Option<f64>>,
) -> Result<Vec<QueryResult>> {
    let mut out = Vec::new();
    if dataset.is_empty() || tau < 0.0 {
        return Ok(out);
    }
    let mut retrieval = Retrieval::new(index, dataset.len(), query)?;
    let lambda = index.config().lambda;
    let cutoff = || bound.map_or(tau, |b| tau.min(b.get()));
    loop {
        let batch = retrieval.retrieve_batch(lambda)?;
        for tr in batch {
            index.stats().record_candidate();
            if let Some(dist) = evaluate(tr, cutoff())? {
                if dist <= tau {
                    out.push(QueryResult::new(tr, dist));
                }
            }
        }
        if retrieval.exhausted() {
            break;
        }
        // Every unseen trajectory is strictly beyond the radius.
        if retrieval.lower_bound()? > cutoff() {
            break;
        }
    }
    Ok(rank_top_k(out, usize::MAX))
}

/// Fallible form of [`atsq_range`]; errs only on paged-APL failures.
pub fn try_atsq_range(
    index: &GatIndex,
    dataset: &Dataset,
    query: &Query,
    tau: f64,
) -> Result<Vec<QueryResult>> {
    try_atsq_range_with_bound(index, dataset, query, tau, None)
}

/// [`try_atsq_range`] with an optional injected result-distance budget:
/// when present, only trajectories with `Dmm ≤ min(tau, bound)` are
/// guaranteed to be returned — the caller promises results beyond the
/// bound are not wanted. A sharded range query passes `None` (`tau` is
/// already global); the hook serves callers imposing an extra global
/// budget, e.g. "within `tau`, but nothing worse than the `k`-th best
/// found elsewhere".
pub fn try_atsq_range_with_bound(
    index: &GatIndex,
    dataset: &Dataset,
    query: &Query,
    tau: f64,
    bound: Option<&SharedKthBound>,
) -> Result<Vec<QueryResult>> {
    let all_acts = query.all_activities();
    let mut scratch = ScoreScratch::new();
    range_loop(index, dataset, query, tau, bound, |tr, _| {
        evaluate_atsq(index, dataset, query, &all_acts, tr, &mut scratch)
    })
}

/// Range (threshold) ATSQ: every trajectory with `Dmm(Q, Tr) ≤ tau`,
/// ascending by distance. A natural companion of the paper's top-k
/// query: the same index, candidate retrieval and Algorithm-2 bound
/// apply, with the radius replacing `Dkmm` in the termination test.
///
/// # Panics
/// On a paged-APL storage failure (impossible with the in-memory
/// backend); use [`try_atsq_range`] to handle that case.
pub fn atsq_range(
    index: &GatIndex,
    dataset: &Dataset,
    query: &Query,
    tau: f64,
) -> Vec<QueryResult> {
    try_atsq_range(index, dataset, query, tau).expect("APL storage failure during range ATSQ")
}

/// Fallible form of [`oatsq_range`]; errs only on paged-APL failures.
pub fn try_oatsq_range(
    index: &GatIndex,
    dataset: &Dataset,
    query: &Query,
    tau: f64,
) -> Result<Vec<QueryResult>> {
    try_oatsq_range_with_bound(index, dataset, query, tau, None)
}

/// [`try_oatsq_range`] with an optional injected result-distance
/// budget (see [`try_atsq_range_with_bound`] for the contract).
pub fn try_oatsq_range_with_bound(
    index: &GatIndex,
    dataset: &Dataset,
    query: &Query,
    tau: f64,
    bound: Option<&SharedKthBound>,
) -> Result<Vec<QueryResult>> {
    let all_acts = query.all_activities();
    range_loop(index, dataset, query, tau, bound, |tr, cutoff| {
        // Algorithm 4's early exit doubles as the radius filter.
        evaluate_oatsq(index, dataset, query, &all_acts, tr, cutoff)
    })
}

/// Range (threshold) OATSQ: every trajectory with `Dmom(Q, Tr) ≤ tau`.
///
/// # Panics
/// On a paged-APL storage failure; use [`try_oatsq_range`] otherwise.
pub fn oatsq_range(
    index: &GatIndex,
    dataset: &Dataset,
    query: &Query,
    tau: f64,
) -> Vec<QueryResult> {
    try_oatsq_range(index, dataset, query, tau).expect("APL storage failure during range OATSQ")
}

/// Fallible form of [`atsq`]; errs only on paged-APL failures.
pub fn try_atsq(
    index: &GatIndex,
    dataset: &Dataset,
    query: &Query,
    k: usize,
) -> Result<Vec<QueryResult>> {
    try_atsq_with_bound(index, dataset, query, k, None)
}

/// [`try_atsq`] with an optional cross-participant pruning bound; the
/// entry point of the sharded engine. Results are the exact per-index
/// top-k *except* that trajectories strictly worse than the injected
/// bound may be missing — which is precisely what makes merging
/// per-shard answers exact (see [`SharedKthBound`]).
pub fn try_atsq_with_bound(
    index: &GatIndex,
    dataset: &Dataset,
    query: &Query,
    k: usize,
    bound: Option<&SharedKthBound>,
) -> Result<Vec<QueryResult>> {
    let all_acts = query.all_activities();
    let mut scratch = ScoreScratch::new();
    search_loop(index, dataset, query, k, bound, |tr, _dk| {
        evaluate_atsq(index, dataset, query, &all_acts, tr, &mut scratch)
    })
}

/// Activity Trajectory Similarity Query (ATSQ, §II): the `k`
/// trajectories with the smallest minimum match distance `Dmm(Q, ·)`.
///
/// # Panics
/// On a paged-APL storage failure (impossible with the in-memory
/// backend); use [`try_atsq`] to handle that case.
pub fn atsq(index: &GatIndex, dataset: &Dataset, query: &Query, k: usize) -> Vec<QueryResult> {
    try_atsq(index, dataset, query, k).expect("APL storage failure during ATSQ")
}

/// Fallible form of [`oatsq`]; errs only on paged-APL failures.
pub fn try_oatsq(
    index: &GatIndex,
    dataset: &Dataset,
    query: &Query,
    k: usize,
) -> Result<Vec<QueryResult>> {
    try_oatsq_with_bound(index, dataset, query, k, None)
}

/// [`try_oatsq`] with an optional cross-participant pruning bound (see
/// [`try_atsq_with_bound`]); the bound additionally feeds Algorithm 4's
/// `Dkmom` early exit, whose strict comparison keeps equal-distance
/// ties alive across shards.
pub fn try_oatsq_with_bound(
    index: &GatIndex,
    dataset: &Dataset,
    query: &Query,
    k: usize,
    bound: Option<&SharedKthBound>,
) -> Result<Vec<QueryResult>> {
    let all_acts = query.all_activities();
    search_loop(index, dataset, query, k, bound, |tr, dk| {
        evaluate_oatsq(index, dataset, query, &all_acts, tr, dk)
    })
}

/// Order-sensitive ATSQ (OATSQ, §VI): the `k` trajectories with the
/// smallest minimum order-sensitive match distance `Dmom(Q, ·)`.
///
/// Lemma 3 (`Dmm ≤ Dmom`) keeps the Algorithm-2 lower bound valid, so
/// the same retrieval loop applies; only validation and the distance
/// function change.
///
/// # Panics
/// On a paged-APL storage failure; use [`try_oatsq`] otherwise.
pub fn oatsq(index: &GatIndex, dataset: &Dataset, query: &Query, k: usize) -> Vec<QueryResult> {
    try_oatsq(index, dataset, query, k).expect("APL storage failure during OATSQ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GatConfig;
    use atsq_matching::{min_match_distance, min_order_match_distance as dmom_exact};
    use atsq_types::{ActivitySet, DatasetBuilder, Point, QueryPoint, TrajectoryPoint};

    fn tp(x: f64, y: f64, acts: &[u32]) -> TrajectoryPoint {
        TrajectoryPoint::new(
            Point::new(x, y),
            ActivitySet::from_raw(acts.iter().copied()),
        )
    }

    fn qp(x: f64, y: f64, acts: &[u32]) -> QueryPoint {
        QueryPoint::new(
            Point::new(x, y),
            ActivitySet::from_raw(acts.iter().copied()),
        )
    }

    /// A dataset with an exactly-known ranking.
    fn dataset() -> Dataset {
        let mut b = DatasetBuilder::new().without_frequency_ranking();
        for name in ["a", "b", "c", "d"] {
            b.observe_activity(name);
        }
        // Tr0: perfect match at distance 0.
        b.push_trajectory(vec![tp(0.0, 0.0, &[0]), tp(10.0, 0.0, &[1])]);
        // Tr1: match at distance 2.
        b.push_trajectory(vec![tp(1.0, 0.0, &[0]), tp(11.0, 0.0, &[1])]);
        // Tr2: missing activity 1 entirely.
        b.push_trajectory(vec![tp(0.0, 0.0, &[0]), tp(10.0, 0.0, &[2])]);
        // Tr3: match but far away.
        b.push_trajectory(vec![tp(40.0, 40.0, &[0]), tp(50.0, 40.0, &[1])]);
        // Tr4: wrong order (1 before 0).
        b.push_trajectory(vec![tp(10.0, 0.0, &[1]), tp(0.1, 0.0, &[0])]);
        b.finish().unwrap()
    }

    fn config() -> GatConfig {
        GatConfig {
            grid_level: 5,
            memory_level: 3,
            lambda: 2,
            lb_cells: 4,
            ..GatConfig::default()
        }
    }

    fn query() -> Query {
        Query::new(vec![qp(0.0, 0.0, &[0]), qp(10.0, 0.0, &[1])]).unwrap()
    }

    #[test]
    fn atsq_ranks_by_dmm() {
        let d = dataset();
        let idx = GatIndex::build_with(&d, config()).unwrap();
        let res = atsq(&idx, &d, &query(), 3);
        let ids: Vec<u32> = res.iter().map(|r| r.trajectory.0).collect();
        // Tr4 has Dmm = 0.1 (activity 0 at x=0.1, activity 1 at x=10).
        assert_eq!(ids, vec![0, 4, 1]);
        assert_eq!(res[0].distance, 0.0);
        assert!((res[1].distance - 0.1).abs() < 1e-12);
        assert!((res[2].distance - 2.0).abs() < 1e-12);
    }

    #[test]
    fn oatsq_respects_order() {
        let d = dataset();
        let idx = GatIndex::build_with(&d, config()).unwrap();
        let res = oatsq(&idx, &d, &query(), 3);
        let ids: Vec<u32> = res.iter().map(|r| r.trajectory.0).collect();
        // Tr4 is invalid for the ordered query (1 appears before 0).
        assert_eq!(ids, vec![0, 1, 3]);
    }

    #[test]
    fn results_match_exhaustive_scan() {
        let d = dataset();
        let idx = GatIndex::build_with(&d, config()).unwrap();
        let q = query();
        for k in 1..=5 {
            let got = atsq(&idx, &d, &q, k);
            let mut want = Vec::new();
            for tr in d.trajectories() {
                if let Some(dist) = min_match_distance(&q, &tr.points) {
                    want.push(QueryResult::new(tr.id, dist));
                }
            }
            let want = rank_top_k(want, k);
            assert_eq!(got, want, "k={k}");

            let got_o = oatsq(&idx, &d, &q, k);
            let mut want_o = Vec::new();
            for tr in d.trajectories() {
                if let Some(dist) = dmom_exact(&q, &tr.points, f64::INFINITY) {
                    want_o.push(QueryResult::new(tr.id, dist));
                }
            }
            let want_o = rank_top_k(want_o, k);
            assert_eq!(got_o, want_o, "ordered k={k}");
        }
    }

    #[test]
    fn k_zero_and_empty_dataset() {
        let d = dataset();
        let idx = GatIndex::build_with(&d, config()).unwrap();
        assert!(atsq(&idx, &d, &query(), 0).is_empty());
        let empty = DatasetBuilder::new().finish().unwrap();
        let idx2 = GatIndex::build(&empty).unwrap();
        assert!(atsq(&idx2, &empty, &query(), 3).is_empty());
    }

    #[test]
    fn unmatchable_activity_yields_empty() {
        let d = dataset();
        let idx = GatIndex::build_with(&d, config()).unwrap();
        let q = Query::new(vec![qp(0.0, 0.0, &[3])]).unwrap(); // "d" never occurs
        assert!(atsq(&idx, &d, &q, 3).is_empty());
        assert!(oatsq(&idx, &d, &q, 3).is_empty());
    }

    #[test]
    fn shared_bound_tightens_monotonically() {
        let b = SharedKthBound::new();
        assert_eq!(b.get(), f64::INFINITY);
        b.tighten(5.0);
        assert_eq!(b.get(), 5.0);
        b.tighten(7.0); // looser publications are ignored
        assert_eq!(b.get(), 5.0);
        b.tighten(1.25);
        assert_eq!(b.get(), 1.25);
        b.tighten(0.0);
        assert_eq!(b.get(), 0.0);
    }

    /// The injected range budget: everything within `min(tau, bound)`
    /// is still returned; results beyond the bound are best-effort.
    #[test]
    fn bounded_range_keeps_everything_within_the_budget() {
        let d = dataset();
        let idx = GatIndex::build_with(&d, config()).unwrap();
        let q = query();
        for tau in [1.0f64, 3.0, 100.0] {
            let full = atsq_range(&idx, &d, &q, tau);
            let full_o = oatsq_range(&idx, &d, &q, tau);
            for budget in [0.05f64, 0.5, 2.5, 60.0] {
                let bound = SharedKthBound::new();
                bound.tighten(budget);
                let capped = try_atsq_range_with_bound(&idx, &d, &q, tau, Some(&bound)).unwrap();
                let want: Vec<&QueryResult> =
                    full.iter().filter(|r| r.distance <= budget).collect();
                for w in &want {
                    assert!(capped.contains(w), "τ={tau} budget={budget}: lost {w:?}");
                }
                let capped_o = try_oatsq_range_with_bound(&idx, &d, &q, tau, Some(&bound)).unwrap();
                for w in full_o.iter().filter(|r| r.distance <= budget) {
                    assert!(
                        capped_o.contains(w),
                        "ordered τ={tau} budget={budget}: lost {w:?}"
                    );
                }
                // Nothing outside tau ever appears.
                assert!(capped.iter().chain(&capped_o).all(|r| r.distance <= tau));
            }
        }
    }

    #[test]
    fn stats_reflect_pipeline() {
        let d = dataset();
        let idx = GatIndex::build_with(&d, config()).unwrap();
        let _ = atsq(&idx, &d, &query(), 2);
        let s = idx.stats().snapshot();
        assert!(s.candidates_retrieved > 0);
        assert!(s.tas_checks > 0);
        assert!(s.distances_computed > 0);
    }
}
