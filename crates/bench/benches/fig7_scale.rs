//! Fig. 7 — scalability in the dataset size `|D|` (NY samples).

use atsq_bench::{workload, Setting};
use atsq_core::QueryEngine;
use atsq_datagen::{generate, CityConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let full = generate(&CityConfig::ny_like(0.006)).unwrap();
    let mut group = c.benchmark_group("fig7_scale_NY");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for frac in [2usize, 6, 10] {
        let sample = full.sample_prefix(full.len() * frac / 10);
        let engines = atsq_core::Engine::build_all(&sample).unwrap();
        let setting = Setting::default();
        let queries = workload(&sample, &setting, 3, 0x7a);
        for e in &engines {
            group.bench_with_input(
                BenchmarkId::new(format!("atsq/{}", e.name()), sample.len()),
                &frac,
                |b, _| {
                    b.iter(|| {
                        for q in &queries {
                            std::hint::black_box(e.atsq(&sample, q, setting.k));
                        }
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
