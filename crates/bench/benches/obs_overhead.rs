//! Tracing-overhead budget: QPS with per-request tracing on vs. off.
//!
//! The observability layer (ISSUE 6) promises that request tracing —
//! stage clocks, per-query counter scopes, slow-log recording — costs
//! under 5% of serving throughput. This self-driving harness
//! (`harness = false`) measures exactly that on the real wire path:
//! a TCP server driven by the closed-loop load generator, with the
//! slow log at threshold zero so *every* request pays the full
//! recording cost (the worst case). Trials interleave the two modes so
//! thermal / cache drift hits both equally, and each mode keeps its
//! best trial (closed-loop QPS is noise-bounded from above).
//!
//! Prints a table, writes `BENCH_obs_overhead.json` (`BENCH_OUT`
//! overrides), and **fails** when best-on/best-off falls below
//! `OBS_MIN_RATIO` (default 0.95).
//!
//! Environment knobs: `OBS_BENCH_SCALE` (dataset scale, default
//! 0.002), `OBS_BENCH_REQUESTS` (per trial, default 2000),
//! `OBS_BENCH_TRIALS` (default 3), `OBS_MIN_RATIO` (default 0.95).

use atsq_core::{Engine, GatEngine};
use atsq_datagen::{generate, CityConfig};
use atsq_service::{run_loadgen, LoadgenConfig, Server, Service, ServiceConfig};
use std::sync::Arc;
use std::time::Duration;

fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let scale: f64 = env_or("OBS_BENCH_SCALE", 0.002);
    let requests: usize = env_or("OBS_BENCH_REQUESTS", 2000);
    let trials: usize = env_or("OBS_BENCH_TRIALS", 3);
    let min_ratio: f64 = env_or("OBS_MIN_RATIO", 0.95);

    let dataset = generate(&CityConfig::la_like(scale)).expect("dataset");
    let engine = Arc::new(Engine::Gat(GatEngine::build(&dataset).expect("engine")));
    let dataset = Arc::new(dataset);

    println!(
        "obs_overhead: {requests} requests/trial, {trials} interleaved trial pairs, \
         slowlog threshold 0 (every request recorded when tracing)"
    );
    println!(
        "{:>8}{:>10}{:>12}{:>10}{:>10}",
        "trial", "tracing", "qps", "p50 ms", "p99 ms"
    );

    let mut qps_off: Vec<f64> = Vec::new();
    let mut qps_on: Vec<f64> = Vec::new();
    for trial in 0..trials {
        for tracing in [false, true] {
            let (qps, p50, p99) = run_trial(&dataset, &engine, tracing, requests);
            println!(
                "{:>8}{:>10}{:>12.1}{:>10.2}{:>10.2}",
                trial,
                if tracing { "on" } else { "off" },
                qps,
                p50,
                p99
            );
            if tracing {
                qps_on.push(qps);
            } else {
                qps_off.push(qps);
            }
        }
    }

    let best = |v: &[f64]| v.iter().copied().fold(f64::MIN, f64::max);
    let (best_off, best_on) = (best(&qps_off), best(&qps_on));
    let ratio = best_on / best_off;
    println!(
        "best tracing-off {best_off:.1} qps, tracing-on {best_on:.1} qps — ratio {ratio:.3} \
         (floor {min_ratio})"
    );

    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_obs_overhead.json".into());
    let fmt = |v: &[f64]| {
        v.iter()
            .map(|q| format!("{q:.2}"))
            .collect::<Vec<_>>()
            .join(",")
    };
    let json = format!(
        r#"{{"bench":"obs_overhead","requests":{requests},"trials":{trials},"qps_off":[{}],"qps_on":[{}],"best_off":{best_off:.2},"best_on":{best_on:.2},"ratio":{ratio:.4},"min_ratio":{min_ratio}}}"#,
        fmt(&qps_off),
        fmt(&qps_on),
    );
    std::fs::write(&out, json).expect("write bench json");
    println!("wrote {out}");

    assert!(
        ratio >= min_ratio,
        "tracing overhead exceeds budget: on/off QPS ratio {ratio:.3} < {min_ratio}"
    );
}

fn run_trial(
    dataset: &Arc<atsq_types::Dataset>,
    engine: &Arc<Engine>,
    tracing: bool,
    requests: usize,
) -> (f64, f64, f64) {
    let service = Service::start(
        dataset.clone(),
        engine.clone(),
        ServiceConfig {
            workers: 4,
            queue_capacity: 4096,
            tracing,
            slowlog_capacity: 128,
            slowlog_threshold: Duration::ZERO,
            ..ServiceConfig::default()
        },
    );
    let server = Server::bind(service.handle(), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr().to_string();
    let report = run_loadgen(
        &addr,
        dataset,
        &LoadgenConfig {
            concurrency: 8,
            requests,
            pool: 64,
            k: 9,
            ..LoadgenConfig::default()
        },
    )
    .expect("loadgen");
    assert_eq!(report.ok, requests as u64, "every request must succeed");
    server.stop();
    service.shutdown();
    (report.qps, report.p50_ms, report.p99_ms)
}
