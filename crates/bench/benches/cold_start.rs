//! Cold start: building the GAT index from the dataset vs loading a
//! persisted snapshot.
//!
//! A self-driving harness (`harness = false`, no criterion): builds
//! the NY-like city, then for each shard count measures (a) the
//! from-scratch index build a cache-less `atsq serve` start pays, and
//! (b) the snapshot save + validated load that `--index-cache` pays
//! instead. Every loaded engine is verified to answer a sample of
//! queries exactly like the built one before its timing counts.
//! Prints a table and emits `BENCH_cold_start.json` (path overridable
//! via `BENCH_OUT`).
//!
//! Environment knobs: `COLD_START_SCALE` (dataset scale, default
//! 0.006 — the Fig. 7 full-size city), `COLD_START_SHARDS`
//! (comma-separated, default `1,4`), `COLD_START_QUERIES` (default 8).

use atsq_bench::{workload, Setting};
use atsq_core::{GatConfig, GatEngine, IndexCache, Partition, QueryEngine, ShardedEngine};
use atsq_datagen::{generate, CityConfig};
use atsq_types::{Dataset, Query};
use std::time::Instant;

struct Sweep {
    shards: usize,
    build_ms: f64,
    save_ms: f64,
    load_ms: f64,
    snapshot_bytes: u64,
}

fn main() {
    let scale: f64 = env_or("COLD_START_SCALE", 0.006);
    let n_queries: usize = env_or("COLD_START_QUERIES", 8);
    let shard_counts: Vec<usize> = std::env::var("COLD_START_SHARDS")
        .unwrap_or_else(|_| "1,4".into())
        .split(',')
        .map(|s| s.trim().parse().expect("COLD_START_SHARDS"))
        .collect();

    let config = CityConfig::ny_like(scale);
    let dataset = generate(&config).expect("dataset");
    let setting = Setting::default();
    let queries = workload(&dataset, &setting, n_queries, 0xC01D);
    let dir = std::env::temp_dir().join(format!("atsq-cold-start-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cache = IndexCache::new(&dir);

    println!(
        "cold_start: {} ({} trajectories), {} verify queries, k={}",
        config.name,
        dataset.len(),
        queries.len(),
        setting.k
    );
    println!(
        "{:>8}{:>12}{:>12}{:>12}{:>12}{:>10}",
        "shards", "build ms", "save ms", "load ms", "snap KiB", "speedup"
    );

    let mut sweeps = Vec::new();
    for &shards in &shard_counts {
        let sweep = if shards <= 1 {
            single(&cache, &dataset, &queries, setting.k)
        } else {
            sharded(&cache, &dataset, shards, &queries, setting.k)
        };
        println!(
            "{:>8}{:>12.1}{:>12.1}{:>12.1}{:>12.1}{:>9.1}x",
            sweep.shards,
            sweep.build_ms,
            sweep.save_ms,
            sweep.load_ms,
            sweep.snapshot_bytes as f64 / 1024.0,
            sweep.build_ms / sweep.load_ms.max(1e-9)
        );
        // The headline claim — loading beats building — is only a
        // meaningful assertion when the build is long enough to
        // measure; at CI-smoke scales both sides are microseconds and
        // one slow filesystem access would fail the run spuriously.
        if sweep.build_ms >= 20.0 {
            assert!(
                sweep.load_ms < sweep.build_ms,
                "snapshot load ({:.1} ms) must beat the index build ({:.1} ms) at S={}",
                sweep.load_ms,
                sweep.build_ms,
                sweep.shards
            );
        } else if sweep.load_ms >= sweep.build_ms {
            println!(
                "note: load ({:.2} ms) did not beat build ({:.2} ms) at S={} — \
                 dataset too small for the comparison to be meaningful",
                sweep.load_ms, sweep.build_ms, sweep.shards
            );
        }
        sweeps.push(sweep);
    }

    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_cold_start.json".into());
    let json = to_json(&config.name, scale, &dataset, &sweeps);
    std::fs::write(&out, json).expect("write json");
    println!("wrote {out}");
    std::fs::remove_dir_all(&dir).ok();
}

fn single(cache: &IndexCache, dataset: &Dataset, queries: &[Query], k: usize) -> Sweep {
    let t0 = Instant::now();
    let built = GatEngine::build(dataset).expect("build");
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    let path = cache.save_index(dataset, built.index()).expect("save");
    let save_ms = t0.elapsed().as_secs_f64() * 1e3;
    let snapshot_bytes = path.metadata().expect("snapshot metadata").len();

    let t0 = Instant::now();
    let loaded = cache
        .load_index(dataset, &GatConfig::default())
        .expect("load");
    let load_ms = t0.elapsed().as_secs_f64() * 1e3;
    let loaded = GatEngine::from_index(loaded);

    for q in queries {
        assert_eq!(
            built.atsq(dataset, q, k),
            loaded.atsq(dataset, q, k),
            "loaded single index diverged"
        );
        assert_eq!(
            built.oatsq(dataset, q, k),
            loaded.oatsq(dataset, q, k),
            "loaded single index diverged (ordered)"
        );
    }
    Sweep {
        shards: 1,
        build_ms,
        save_ms,
        load_ms,
        snapshot_bytes,
    }
}

fn sharded(
    cache: &IndexCache,
    dataset: &Dataset,
    shards: usize,
    queries: &[Query],
    k: usize,
) -> Sweep {
    let partition = Partition::Hash;
    let t0 = Instant::now();
    let built = ShardedEngine::build(dataset, shards, partition).expect("build sharded");
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    let paths = cache.save_sharded(dataset, &built).expect("save sharded");
    let save_ms = t0.elapsed().as_secs_f64() * 1e3;
    let snapshot_bytes = paths
        .iter()
        .map(|p| p.metadata().expect("snapshot metadata").len())
        .sum();

    let t0 = Instant::now();
    let loaded = cache
        .load_sharded(dataset, shards, partition, &GatConfig::default())
        .expect("load sharded");
    let load_ms = t0.elapsed().as_secs_f64() * 1e3;

    for q in queries {
        assert_eq!(
            built.atsq(q, k),
            loaded.atsq(q, k),
            "loaded sharded engine diverged at S={shards}"
        );
        assert_eq!(
            built.oatsq(q, k),
            loaded.oatsq(q, k),
            "loaded sharded engine diverged at S={shards} (ordered)"
        );
    }
    Sweep {
        shards,
        build_ms,
        save_ms,
        load_ms,
        snapshot_bytes,
    }
}

fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn to_json(city: &str, scale: f64, dataset: &Dataset, sweeps: &[Sweep]) -> String {
    let rows: Vec<String> = sweeps
        .iter()
        .map(|s| {
            format!(
                concat!(
                    r#"{{"shards":{},"build_ms":{:.3},"save_ms":{:.3},"#,
                    r#""load_ms":{:.3},"snapshot_bytes":{},"speedup":{:.2}}}"#
                ),
                s.shards,
                s.build_ms,
                s.save_ms,
                s.load_ms,
                s.snapshot_bytes,
                s.build_ms / s.load_ms.max(1e-9)
            )
        })
        .collect();
    format!(
        concat!(
            r#"{{"bench":"cold_start","city":"{}","scale":{},"trajectories":{},"#,
            r#""dataset_hash":"{:016x}","sweeps":[{}]}}"#
        ),
        city,
        scale,
        dataset.len(),
        dataset.content_hash(),
        rows.join(",")
    )
}
