//! Fig. 8 — effect of the grid partition granularity on GAT.

use atsq_bench::{cities, workload, Setting};
use atsq_core::{GatEngine, QueryEngine};
use atsq_gat::GatConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let (name, dataset) = cities(0.004).remove(0);
    let mut group = c.benchmark_group(format!("fig8_grid_{name}"));
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let setting = Setting::default();
    let queries = workload(&dataset, &setting, 3, 0x8a);
    for depth in [5u8, 6, 7, 8] {
        let engine = GatEngine::build_with(
            &dataset,
            GatConfig {
                grid_level: depth,
                memory_level: depth.min(6),
                ..GatConfig::default()
            },
        )
        .unwrap();
        let partitions = 1u32 << depth;
        group.bench_with_input(BenchmarkId::new("atsq/GAT", partitions), &depth, |b, _| {
            b.iter(|| {
                for q in &queries {
                    std::hint::black_box(engine.atsq(&dataset, q, setting.k));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("oatsq/GAT", partitions), &depth, |b, _| {
            b.iter(|| {
                for q in &queries {
                    std::hint::black_box(engine.oatsq(&dataset, q, setting.k));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
