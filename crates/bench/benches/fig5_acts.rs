//! Fig. 5 — effect of the number of activities per location `|q.Φ|`.

use atsq_bench::{cities, workload, Setting};
use atsq_core::QueryEngine;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let (name, dataset) = cities(0.004).remove(0);
    let engines = atsq_core::Engine::build_all(&dataset).unwrap();
    let mut group = c.benchmark_group(format!("fig5_acts_{name}"));
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for acts in [1usize, 3, 5] {
        let setting = Setting {
            acts_per_point: acts,
            ..Setting::default()
        };
        let queries = workload(&dataset, &setting, 3, 0x5a);
        for e in &engines {
            group.bench_with_input(
                BenchmarkId::new(format!("atsq/{}", e.name()), acts),
                &acts,
                |b, _| {
                    b.iter(|| {
                        for q in &queries {
                            std::hint::black_box(e.atsq(&dataset, q, setting.k));
                        }
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
