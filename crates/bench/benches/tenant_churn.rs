//! Tenant churn: multi-city serving under a memory budget that only
//! fits a fraction of the fleet.
//!
//! A self-driving harness (`harness = false`, no criterion): writes N
//! tiny city snapshots to disk, opens them through
//! `atsq_tenant::registry_from_dir` with a budget sized for k < N
//! resident tenants, then round-robins resolve+query across all
//! cities. Every resolve of an evicted city pays a cold load (snapshot
//! read + index build) and usually evicts the least-recently-queried
//! tenant; resident cities answer warm. The harness separates the two
//! populations and reports p50/p99 for each plus the eviction totals,
//! and emits `BENCH_tenant_churn.json` (path overridable via
//! `BENCH_OUT`).
//!
//! Environment knobs: `TENANT_CHURN_CITIES` (default 6),
//! `TENANT_CHURN_RESIDENT` (budget in city-sizes, default 2),
//! `TENANT_CHURN_QUERIES` (default 120), `TENANT_CHURN_SCALE`
//! (dataset scale for `ny_like`, 0 = the tiny city, default 0).

use atsq_bench::{workload, Setting};
use atsq_core::QueryEngine;
use atsq_datagen::{generate, CityConfig};
use atsq_service::percentile_sorted;
use atsq_tenant::{CityId, DiskRegistryOptions, CITY_DATASET_FILE};
use atsq_types::Query;
use std::io::BufWriter;
use std::time::Instant;

fn main() {
    let n_cities: usize = env_or("TENANT_CHURN_CITIES", 6);
    let resident: u64 = env_or("TENANT_CHURN_RESIDENT", 2);
    let n_queries: usize = env_or("TENANT_CHURN_QUERIES", 120);
    let scale: f64 = env_or("TENANT_CHURN_SCALE", 0.0);
    assert!(n_cities >= 2, "need at least two cities to churn");
    assert!(
        (resident as usize) < n_cities,
        "budget must fit fewer cities than the fleet for churn"
    );

    let setting = Setting::default();
    let dir = std::env::temp_dir().join(format!("atsq-tenant-churn-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // One snapshot per city, plus a per-city query workload drawn from
    // that city's own activity vocabulary.
    let mut queries: Vec<Vec<Query>> = Vec::new();
    for i in 0..n_cities {
        let config = if scale > 0.0 {
            CityConfig::ny_like(scale)
        } else {
            CityConfig::tiny(0xC17 + i as u64)
        };
        let dataset = generate(&config).expect("dataset");
        queries.push(workload(&dataset, &setting, 8, 0xC17 + i as u64));
        let city_dir = dir.join(format!("city{i}"));
        std::fs::create_dir_all(&city_dir).expect("city dir");
        let file = std::fs::File::create(city_dir.join(CITY_DATASET_FILE)).expect("snapshot");
        atsq_io::write_dataset(&dataset, BufWriter::new(file)).expect("write snapshot");
    }

    // Measure one city's resident footprint with an unbudgeted
    // registry, then budget the real one for `resident` of those.
    let probe =
        atsq_tenant::registry_from_dir(&dir, &DiskRegistryOptions::default()).expect("probe");
    drop(
        probe
            .resolve(&CityId::new("city0").unwrap())
            .expect("probe load"),
    );
    let city_bytes = probe.cities()[0].resident_bytes;
    drop(probe);
    let budget = city_bytes * resident + city_bytes / 2;

    let registry = atsq_tenant::registry_from_dir(
        &dir,
        &DiskRegistryOptions {
            memory_budget: Some(budget),
            ..DiskRegistryOptions::default()
        },
    )
    .expect("registry");

    println!(
        "tenant_churn: {n_cities} cities, budget {budget} B (~{resident} resident), \
         {n_queries} round-robin queries, k={}",
        setting.k
    );

    // Visit cities round-robin but in bursts: cycling N cities through
    // a k-city budget makes the first query of each visit a cold load
    // (the LRU worst case), while the rest of the burst answers warm —
    // giving both populations in one run.
    const BURST: usize = 3;
    let mut cold_ms: Vec<f64> = Vec::new();
    let mut warm_ms: Vec<f64> = Vec::new();
    for i in 0..n_queries {
        let visit = i / BURST;
        let city_ix = visit % n_cities;
        let city = CityId::new(format!("city{city_ix}")).unwrap();
        let query = &queries[city_ix][i % queries[city_ix].len()];
        let t0 = Instant::now();
        let lease = registry.resolve(&city).expect("resolve");
        let results = lease.engine().atsq(lease.dataset(), query, setting.k);
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        assert!(results.len() <= setting.k, "engine returned more than k");
        if lease.cold() {
            cold_ms.push(dt);
        } else {
            warm_ms.push(dt);
        }
    }
    cold_ms.sort_by(|a, b| a.total_cmp(b));
    warm_ms.sort_by(|a, b| a.total_cmp(b));

    let infos = registry.cities();
    let evictions: u64 = infos.iter().map(|i| i.evictions).sum();
    let loads: u64 = infos.iter().map(|i| i.loads).sum();
    let ready = infos
        .iter()
        .filter(|i| i.state == atsq_tenant::TenantState::Ready)
        .count();

    println!(
        "{:>8}{:>8}{:>12}{:>12}{:>8}{:>10}",
        "kind", "n", "p50 ms", "p99 ms", "loads", "evictions"
    );
    println!(
        "{:>8}{:>8}{:>12.3}{:>12.3}{:>8}{:>10}",
        "cold",
        cold_ms.len(),
        percentile_sorted(&cold_ms, 0.50),
        percentile_sorted(&cold_ms, 0.99),
        loads,
        evictions
    );
    println!(
        "{:>8}{:>8}{:>12.3}{:>12.3}{:>8}{:>10}",
        "warm",
        warm_ms.len(),
        percentile_sorted(&warm_ms, 0.50),
        percentile_sorted(&warm_ms, 0.99),
        "-",
        "-"
    );

    // Sanity: churn actually happened, the budget held, and a cold
    // resolve (snapshot read + index build) costs more than a warm one.
    assert!(
        evictions >= 1,
        "no eviction with {n_cities} cities and a {resident}-city budget"
    );
    assert!(
        ready <= resident as usize + 1,
        "{ready} cities resident under a {resident}-city budget"
    );
    assert!(
        !cold_ms.is_empty() && !warm_ms.is_empty(),
        "need both cold and warm samples"
    );
    if percentile_sorted(&cold_ms, 0.50) >= 1.0 {
        assert!(
            percentile_sorted(&cold_ms, 0.50) > percentile_sorted(&warm_ms, 0.50),
            "cold resolves should be slower than warm ones"
        );
    }

    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_tenant_churn.json".into());
    let json = to_json(
        n_cities, resident, budget, n_queries, setting.k, &cold_ms, &warm_ms, loads, evictions,
    );
    std::fs::write(&out, json).expect("write json");
    println!("wrote {out}");
    std::fs::remove_dir_all(&dir).ok();
}

fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[allow(clippy::too_many_arguments)]
fn to_json(
    cities: usize,
    resident: u64,
    budget: u64,
    queries: usize,
    k: usize,
    cold_ms: &[f64],
    warm_ms: &[f64],
    loads: u64,
    evictions: u64,
) -> String {
    format!(
        concat!(
            r#"{{"bench":"tenant_churn","cities":{},"resident_budget_cities":{},"#,
            r#""budget_bytes":{},"queries":{},"k":{},"#,
            r#""cold":{{"n":{},"p50_ms":{:.3},"p99_ms":{:.3}}},"#,
            r#""warm":{{"n":{},"p50_ms":{:.3},"p99_ms":{:.3}}},"#,
            r#""loads":{},"evictions":{}}}"#
        ),
        cities,
        resident,
        budget,
        queries,
        k,
        cold_ms.len(),
        percentile_sorted(cold_ms, 0.50),
        percentile_sorted(cold_ms, 0.99),
        warm_ms.len(),
        percentile_sorted(warm_ms, 0.50),
        percentile_sorted(warm_ms, 0.99),
        loads,
        evictions
    )
}
