//! Activity-mining benches: tokenizer, stemmer and the full extractor
//! fit/extract path on a synthetic tip corpus.

use atsq_text::{stem, tokenize, ActivityExtractor, ExtractorConfig};
use criterion::{criterion_group, criterion_main, Criterion};

/// A deterministic fake tip corpus with realistic redundancy.
fn corpus(n: usize) -> Vec<String> {
    let venues = [
        "coffee shop",
        "art gallery",
        "ramen bar",
        "jazz club",
        "book store",
        "taco truck",
        "wine bar",
        "climbing gym",
    ];
    let verbs = [
        "loved the",
        "great",
        "try the",
        "amazing",
        "best",
        "skip the",
    ];
    let extras = [
        "espresso",
        "paintings",
        "noodles",
        "live music",
        "novels",
        "al pastor",
        "riesling",
        "bouldering",
    ];
    (0..n)
        .map(|i| {
            format!(
                "{} {} at this {}, really {}!",
                verbs[i % verbs.len()],
                extras[i % extras.len()],
                venues[i % venues.len()],
                extras[(i * 3 + 1) % extras.len()],
            )
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let tips = corpus(2000);

    c.bench_function("tokenize_2k_tips", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for t in &tips {
                total += tokenize(std::hint::black_box(t)).len();
            }
            std::hint::black_box(total)
        })
    });

    let tokens: Vec<String> = tips.iter().flat_map(|t| tokenize(t)).collect();
    c.bench_function("stem_corpus_tokens", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for t in &tokens {
                total += stem(std::hint::black_box(t)).len();
            }
            std::hint::black_box(total)
        })
    });

    c.bench_function("extractor_fit_2k", |b| {
        b.iter(|| {
            std::hint::black_box(ActivityExtractor::fit(
                tips.iter().map(String::as_str),
                &ExtractorConfig::default(),
            ))
        })
    });

    let extractor =
        ActivityExtractor::fit(tips.iter().map(String::as_str), &ExtractorConfig::default());
    c.bench_function("extractor_extract_2k", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for t in &tips {
                total += extractor.extract(std::hint::black_box(t)).len();
            }
            std::hint::black_box(total)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
