//! Service throughput: QPS and cache hit rate vs. worker count.
//!
//! Unlike the figure benches this is a self-driving harness
//! (`harness = false`, no criterion): it runs a closed-loop in-process
//! workload against `atsq-service` at several worker counts and two
//! cache settings, prints a table, and emits `BENCH_service_throughput.json`
//! (path overridable via `BENCH_OUT`) for the benchmark trajectory.
//!
//! Environment knobs: `SERVICE_BENCH_SCALE` (dataset scale, default
//! 0.002), `SERVICE_BENCH_REQUESTS` (default 2000).

use atsq_core::{Engine, GatEngine};
use atsq_datagen::{generate, generate_queries, CityConfig, QueryGenConfig, Zipf};
use atsq_service::{Request, Service, ServiceConfig};
use atsq_types::Query;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

struct Sweep {
    workers: usize,
    cache: usize,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    hit_rate: f64,
}

fn main() {
    let scale: f64 = std::env::var("SERVICE_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.002);
    let requests: usize = std::env::var("SERVICE_BENCH_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000);

    let dataset = generate(&CityConfig::la_like(scale)).expect("dataset");
    let engine = Arc::new(Engine::Gat(GatEngine::build(&dataset).expect("engine")));
    let dataset = Arc::new(dataset);
    let pool = generate_queries(
        &dataset,
        &QueryGenConfig {
            query_points: 3,
            acts_per_point: 2,
            ..QueryGenConfig::default()
        },
        64,
    );

    // Worker counts beyond the core count are still meaningful (they
    // are plain threads), so the sweep is fixed rather than derived
    // from `available_parallelism`.
    let worker_counts: [usize; 4] = [1, 2, 4, 8];

    println!(
        "service_throughput: {} requests over {} pooled queries, Zipf(1.0) reuse",
        requests,
        pool.len()
    );
    println!(
        "{:>8}{:>8}{:>12}{:>10}{:>10}{:>10}",
        "workers", "cache", "qps", "p50 ms", "p99 ms", "hit rate"
    );

    let mut sweeps = Vec::new();
    for &workers in &worker_counts {
        for cache in [0usize, 4096] {
            let s = run_sweep(&dataset, &engine, &pool, workers, cache, requests);
            println!(
                "{:>8}{:>8}{:>12.1}{:>10.2}{:>10.2}{:>10.2}",
                s.workers, s.cache, s.qps, s.p50_ms, s.p99_ms, s.hit_rate
            );
            sweeps.push(s);
        }
    }

    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_service_throughput.json".into());
    let json = to_json(&sweeps, requests, pool.len());
    std::fs::write(&out, json).expect("write bench json");
    println!("wrote {out}");
}

fn run_sweep(
    dataset: &Arc<atsq_types::Dataset>,
    engine: &Arc<Engine>,
    pool: &[Query],
    workers: usize,
    cache: usize,
    requests: usize,
) -> Sweep {
    let service = Service::start(
        dataset.clone(),
        engine.clone(),
        ServiceConfig {
            workers,
            cache_capacity: cache,
            queue_capacity: 4096,
            batch_size: 16,
            ..ServiceConfig::default()
        },
    );
    let handle = service.handle();
    let zipf = Zipf::new(pool.len(), 1.0);
    let issued = AtomicUsize::new(0);
    // Closed loop: one in-flight request per submitter thread, enough
    // submitters to keep every worker busy.
    let submitters = (workers * 2).clamp(2, 32);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for tid in 0..submitters {
            let handle = handle.clone();
            let zipf = &zipf;
            let issued = &issued;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xBEEF ^ ((tid as u64) << 17));
                loop {
                    if issued.fetch_add(1, Ordering::Relaxed) >= requests {
                        break;
                    }
                    let q = pool[zipf.sample(&mut rng)].clone();
                    match handle.call(Request::Atsq { query: q, k: 9 }) {
                        Ok(_) => {}
                        Err(e) => panic!("submit failed: {e}"),
                    }
                }
            });
        }
    });
    let wall = t0.elapsed();
    let snap = handle.stats();
    let sweep = Sweep {
        workers,
        cache,
        qps: snap.completed as f64 / wall.as_secs_f64().max(1e-9),
        p50_ms: snap.p50_ms,
        p99_ms: snap.p99_ms,
        hit_rate: snap.cache_hit_rate(),
    };
    service.shutdown();
    sweep
}

fn to_json(sweeps: &[Sweep], requests: usize, pool: usize) -> String {
    let mut rows = String::new();
    for (i, s) in sweeps.iter().enumerate() {
        if i > 0 {
            rows.push(',');
        }
        rows.push_str(&format!(
            r#"{{"workers":{},"cache":{},"qps":{:.2},"p50_ms":{:.4},"p99_ms":{:.4},"cache_hit_rate":{:.4}}}"#,
            s.workers, s.cache, s.qps, s.p50_ms, s.p99_ms, s.hit_rate
        ));
    }
    format!(
        r#"{{"bench":"service_throughput","requests":{requests},"pool":{pool},"sweeps":[{rows}]}}"#
    )
}
